#ifndef DEEPAQP_SERVER_REGISTRY_H_
#define DEEPAQP_SERVER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/kernels_quant.h"
#include "util/status.h"
#include "vae/vae_model.h"

namespace deepaqp::server {

/// One immutable, refcounted model version. Sessions hold the shared_ptr,
/// so a hot swap never invalidates a snapshot mid-use: the old version
/// stays alive until its last session lets go, the registry only stops
/// handing it out.
struct ModelSnapshot {
  std::string name;
  /// Monotonic per-name version, starting at 1. A session compares its
  /// snapshot's version against ModelRegistry::VersionOf to detect a swap
  /// (and then resets its client-side caches — stale bitmaps and group
  /// moments from the old generator must never answer new queries).
  uint64_t version = 0;
  std::shared_ptr<const vae::VaeAqpModel> model;
  /// Serialized size (0 when installed from an in-memory model).
  size_t snapshot_bytes = 0;
  /// Decoder quantization plan the model carried at install time
  /// (nn::QuantMode::kOff for plain fp32). Provenance only — whether
  /// generation actually runs quantized is still gated by the process-wide
  /// nn::ActiveQuantMode() matching the prepared mode.
  nn::QuantMode quant_mode = nn::QuantMode::kOff;
};

/// Registry of shared read-only models, keyed by name. Loading happens once
/// per Register call (via the checksummed snapshot container); every session
/// of that model shares the result. Thread-safe; lookups are a mutex-guarded
/// map access plus a shared_ptr copy.
class ModelRegistry {
 public:
  /// Parses and installs a model snapshot under `name`. Re-registering an
  /// existing name installs the bytes as the next version (hot swap);
  /// sessions pick the new version up at their next scheduling step.
  /// Returns the installed version. Instrumented with the
  /// `server/registry_load` fail point: an injected (or real) load fault
  /// leaves any previous version untouched and serving.
  util::Result<uint64_t> Register(const std::string& name,
                                  const std::vector<uint8_t>& bytes);

  /// Installs an already-loaded model (tests, in-process embedding).
  uint64_t Install(const std::string& name,
                   std::shared_ptr<const vae::VaeAqpModel> model);

  /// Current snapshot of `name`, or NotFound.
  util::Result<std::shared_ptr<const ModelSnapshot>> Get(
      const std::string& name) const;

  /// Current version of `name` (0 when absent). Cheap staleness probe for
  /// sessions.
  uint64_t VersionOf(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  uint64_t InstallLocked(const std::string& name,
                         std::shared_ptr<const vae::VaeAqpModel> model,
                         size_t snapshot_bytes);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ModelSnapshot>> models_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_REGISTRY_H_
