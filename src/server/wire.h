#ifndef DEEPAQP_SERVER_WIRE_H_
#define DEEPAQP_SERVER_WIRE_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "aqp/query.h"
#include "server/channel.h"
#include "util/status.h"

namespace deepaqp::server {

/// The AQP serving protocol: a small closed set of client->server requests
/// and server->client responses. Both directions have one binary encoding
/// (ByteWriter/ByteReader, little-endian, length fields bounds-checked on
/// decode) used verbatim by every transport that needs bytes; the
/// in-process pipe transport passes the structs through untouched.

// ---------------------------------------------------------------------------
// Client -> server.

enum class ClientMessageKind : uint8_t {
  kOpenSession = 1,
  kQuery = 2,
  kAck = 3,
  kCloseSession = 4,
  /// Re-attach to an existing session after a connection loss. Carries the
  /// resumption token issued by kSessionOpened; on success the server swaps
  /// the session onto the new connection and replays every unacked DATA
  /// frame (the consumer side dedups, so the stream stays exactly-once).
  kResumeSession = 5,
  /// Connection heartbeat. Any inbound traffic refreshes the server's
  /// per-connection liveness deadline; a PING additionally earns a PONG so
  /// the client can tell a live-but-quiet server from a dead one.
  kPing = 6,
};

struct ClientMessage {
  ClientMessageKind kind = ClientMessageKind::kOpenSession;

  /// kOpenSession: model to bind the session to, plus client knobs
  /// (0 = server default).
  std::string model_name;
  uint64_t initial_samples = 0;
  uint64_t max_samples = 0;
  uint64_t population_rows = 0;
  uint64_t seed = 0;

  /// kQuery / kAck / kCloseSession / kResumeSession / kPing.
  uint64_t session = 0;

  /// kQuery: precision-on-demand request — estimates stream on a channel
  /// until every group's relative CI reaches `max_relative_ci`. `channel`
  /// 0 lets the server allocate the stream id (legacy behavior); a nonzero
  /// client-chosen id (unique within the session) makes the request
  /// idempotent across reconnects — re-sending the same channel id never
  /// starts a second stream.
  std::string sql;
  double max_relative_ci = 0.0;
  uint64_t channel = 0;

  /// kAck.
  AckFrame ack;

  /// kResumeSession: token issued at open.
  uint64_t resume_token = 0;

  /// kPing: echoed back in the PONG.
  uint64_t nonce = 0;
};

// ---------------------------------------------------------------------------
// Server -> client.

enum class ServerMessageKind : uint8_t {
  kSessionOpened = 1,
  kQueryStarted = 2,
  kData = 3,
  kError = 4,
  kSessionClosed = 5,
  kPong = 6,
  /// Session re-attached after kResumeSession; unacked frames follow.
  kSessionResumed = 7,
};

struct ServerMessage {
  ServerMessageKind kind = ServerMessageKind::kError;
  uint64_t session = 0;

  /// kQueryStarted / kData / kError (0 = not channel-scoped).
  uint64_t channel = 0;

  /// kData: one refining estimate.
  DataFrame data;

  /// kError: a util::Status projected onto the wire. The session survives
  /// an error — only the failed request/stream is dead. Overload shedding
  /// (SERVER_BUSY) and shutdown refusals (SHUTTING_DOWN) arrive as code
  /// kUnavailable: the request was shed, retry with backoff.
  int32_t code = 0;
  std::string message;

  /// kSessionOpened: secret the client presents to resume this session on
  /// a fresh connection after the original one died.
  uint64_t resume_token = 0;

  /// kPong: the PING's nonce, echoed.
  uint64_t nonce = 0;
};

/// Convenience constructor for error responses.
ServerMessage MakeError(uint64_t session, uint64_t channel,
                        const util::Status& status);

// ---------------------------------------------------------------------------
// Estimate payload: what a DATA frame carries. `pool_rows` is the synthetic
// sample size the estimate was computed on (monotonically growing across a
// stream — the client watches precision rise with it).

struct Estimate {
  uint64_t pool_rows = 0;
  aqp::QueryResult result;
};

/// Bit-exact encoding (doubles as raw bits): two encodes of equal estimates
/// are byte-identical, which is what the multi-session identity tests
/// compare.
std::vector<uint8_t> EncodeEstimate(const Estimate& estimate);
util::Result<Estimate> DecodeEstimate(const std::vector<uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Binary codec.

std::vector<uint8_t> EncodeClientMessage(const ClientMessage& msg);
util::Result<ClientMessage> DecodeClientMessage(
    const std::vector<uint8_t>& bytes);

std::vector<uint8_t> EncodeServerMessage(const ServerMessage& msg);
util::Result<ServerMessage> DecodeServerMessage(
    const std::vector<uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Length-prefixed stream framing (socket/stdio transports): each message is
// a u32 little-endian byte count followed by the encoded body.

/// Hard bound on a framed message body; a larger prefix means a corrupt or
/// hostile stream and is rejected before any allocation.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Appends the length-prefixed encoding of `body` to `out`. Rejects bodies
/// over kMaxFrameBytes (out is untouched).
util::Status AppendFramed(const std::vector<uint8_t>& body,
                          std::vector<uint8_t>* out);

/// Writes one length-prefixed message to `f` and flushes, looping over
/// short writes and retrying EINTR (a signal must never desynchronize the
/// frame stream by dropping a suffix).
util::Status WriteFramed(std::FILE* f, const std::vector<uint8_t>& body);

/// Marker embedded in the Status message when a write failed because the
/// peer vanished (EPIPE/ECONNRESET); IsPeerClosed tests for it. A server
/// treats this as "that connection is gone", never as a daemon-fatal error.
inline constexpr const char* kPeerClosedMarker = "peer closed";
bool IsPeerClosed(const util::Status& status);

/// Reads one length-prefixed message from `f`. Returns nullopt on clean EOF
/// (stream ended between messages) and a Status error on truncation inside
/// a message or an oversized prefix.
util::Result<std::optional<std::vector<uint8_t>>> ReadFramed(std::FILE* f);

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_WIRE_H_
