#ifndef DEEPAQP_SERVER_SERVER_H_
#define DEEPAQP_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "server/channel.h"
#include "server/registry.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vae/client.h"

namespace deepaqp::server {

/// The transport-agnostic AQP serving daemon: model registry (shared
/// read-only snapshots) + per-session AqpClient state + a strand scheduler
/// multiplexing sessions over the shared thread pool + one reliable ordered
/// channel per query stream.
///
/// A transport is anything that decodes ClientMessages, calls Handle, and
/// owns a MessageSink for the responses — the in-process PipeTransport, the
/// length-prefixed stdio framing, and the TCP socket transport all reduce
/// to exactly that.
///
/// Handle is cheap and non-blocking: session work (estimate computation,
/// frame transmission, retransmits) happens on the session's scheduler
/// strand, and responses can reach the sink from those threads at any time
/// after Handle returns.
///
/// Connection supervision contract: sessions are decoupled from
/// connections. kSessionOpened carries a resumption token; when a
/// connection dies the transport calls DetachSink (the session keeps
/// refining until its channel windows fill, then stalls bounded), and a
/// reconnecting client presents the token via kResumeSession to re-attach
/// and have every unacked frame replayed. Admission control (max_sessions,
/// max_queued_per_session) sheds overload with explicit kUnavailable
/// SERVER_BUSY errors instead of queueing unboundedly, and the
/// BeginShutdown/Drain pair refuses new work while in-flight streams finish
/// (or, past the drain deadline, die with a clean SHUTTING_DOWN error —
/// never a silent truncation).
class AqpServer {
 public:
  struct Options {
    /// Per-session client defaults; non-zero OpenSession fields override
    /// individual knobs. Sessions that do not pin a seed share `client.seed`
    /// and therefore produce identical sample pools — the determinism the
    /// multi-session bit-identity tests pin down.
    vae::AqpClient::Options client;
    ChannelProducer::Options channel;
    /// Admission bounds. max_sessions caps live sessions (including
    /// detached ones awaiting resumption); max_queued_per_session caps one
    /// strand's queued client requests. 0 = unbounded.
    size_t max_sessions = 256;
    size_t max_queued_per_session = 256;
  };

  /// `pool` = nullptr uses the process-global thread pool (--threads).
  explicit AqpServer(const Options& options,
                     util::ThreadPool* pool = nullptr);

  /// Drains all in-flight session work.
  ~AqpServer();

  AqpServer(const AqpServer&) = delete;
  AqpServer& operator=(const AqpServer&) = delete;

  /// Models are registered/hot-swapped directly on the registry.
  ModelRegistry& registry() { return registry_; }

  /// Dispatches one client request. Responses — including the whole
  /// asynchronous estimate stream triggered by a query — are delivered
  /// through `sink`. Errors are responses too (kError): a malformed or
  /// failed request never kills the session, let alone the server.
  void Handle(const ClientMessage& message,
              const std::shared_ptr<MessageSink>& sink);

  /// Connection-death notification from a transport: every session whose
  /// current sink is `sink` is detached — deliveries are dropped (the
  /// reliable channel keeps unacked frames buffered) until the client
  /// resumes with its token or the session is closed. Never destroys
  /// session state.
  void DetachSink(const std::shared_ptr<MessageSink>& sink);

  /// Graceful shutdown, phase 1: refuse new sessions and new queries with
  /// kUnavailable (SHUTTING_DOWN); already-open streams keep refining and
  /// acks keep flowing. Idempotent.
  void BeginShutdown();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Graceful shutdown, phase 2 (blocking): waits up to `deadline_ms` for
  /// every open stream to retire, then force-aborts the stragglers with a
  /// clean SHUTTING_DOWN error per stream. Returns true when the drain
  /// completed without aborts. Calls BeginShutdown itself.
  bool Drain(int deadline_ms);

  /// Streams currently open across all sessions (admission/drain probe;
  /// pair with scheduler_pending()==0 for a quiescence check).
  size_t ActiveStreams() const;
  size_t scheduler_pending() const { return scheduler_.pending(); }

  /// Blocks until no session has scheduled work. Quiescence, not
  /// completion: a stream stalled on missing acks is idle, not busy.
  void WaitIdle();

  size_t num_sessions() const;

  /// Cache statistics of a session's AqpClient, read on the session's
  /// strand (tests assert suffix-only evaluation through this).
  util::Result<vae::AqpClient::CacheStats> SessionCacheStats(
      uint64_t session_id);

  /// Model hot-swaps a session has performed (registry-version bumps it
  /// observed), read on the session's strand.
  util::Result<uint64_t> SessionModelSwaps(uint64_t session_id);

 private:
  struct SessionState {
    std::unique_ptr<Session> session;
    uint64_t resume_token = 0;
    /// Open-stream count mirrored out of the strand after every step so
    /// drain/admission probes never have to block on a strand.
    std::atomic<size_t> open_streams{0};

    /// The delivery target, swapped on resume/detach. Guarded by its own
    /// mutex because transports detach from their own threads while strand
    /// tasks deliver.
    std::shared_ptr<MessageSink> Sink() const;
    void SetSink(std::shared_ptr<MessageSink> sink);
    util::Status Send(const ServerMessage& message) const;

   private:
    mutable std::mutex sink_mu_;
    std::shared_ptr<MessageSink> sink_;
  };

  std::shared_ptr<SessionState> FindSession(uint64_t session_id) const;

  /// Posts a strand task that steps `state`'s session and delivers whatever
  /// it produced. No self-repost: Step() pumps until every stream is
  /// window-full, waiting for acks, or finished — states only an incoming
  /// event (ack, next query) can change, and each event schedules the next
  /// step. Exempt from the per-strand admission bound (internal progress
  /// must never be shed).
  void ScheduleStep(uint64_t session_id,
                    const std::shared_ptr<SessionState>& state);

  void HandleOpenSession(const ClientMessage& message,
                         const std::shared_ptr<MessageSink>& sink);
  void HandleQuery(const ClientMessage& message,
                   const std::shared_ptr<MessageSink>& sink);
  void HandleAck(const ClientMessage& message,
                 const std::shared_ptr<MessageSink>& sink);
  void HandleCloseSession(const ClientMessage& message,
                          const std::shared_ptr<MessageSink>& sink);
  void HandleResumeSession(const ClientMessage& message,
                           const std::shared_ptr<MessageSink>& sink);

  Options options_;
  ModelRegistry registry_;
  RequestScheduler scheduler_;
  std::atomic<bool> draining_{false};
  mutable std::mutex mu_;
  uint64_t next_session_id_ = 1;
  /// Server-assigned stream ids live above 2^32 so they can never collide
  /// with client-chosen ids (which reconnect-safe clients pick small).
  uint64_t next_channel_id_ = (1ull << 32) + 1;
  util::Rng token_rng_;  ///< resume-token stream, entropy-seeded; under mu_
  std::map<uint64_t, std::shared_ptr<SessionState>> sessions_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SERVER_H_
