#ifndef DEEPAQP_SERVER_SERVER_H_
#define DEEPAQP_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "server/channel.h"
#include "server/registry.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vae/client.h"

namespace deepaqp::server {

/// The transport-agnostic AQP serving daemon: model registry (shared
/// read-only snapshots) + per-session AqpClient state + a strand scheduler
/// multiplexing sessions over the shared thread pool + one reliable ordered
/// channel per query stream.
///
/// A transport is anything that decodes ClientMessages, calls Handle, and
/// owns a MessageSink for the responses — the in-process PipeTransport and
/// the length-prefixed stdio framing of `deepaqp_cli serve` both reduce to
/// exactly that.
///
/// Handle is cheap and non-blocking: session work (estimate computation,
/// frame transmission, retransmits) happens on the session's scheduler
/// strand, and responses can reach the sink from those threads at any time
/// after Handle returns.
class AqpServer {
 public:
  struct Options {
    /// Per-session client defaults; non-zero OpenSession fields override
    /// individual knobs. Sessions that do not pin a seed share `client.seed`
    /// and therefore produce identical sample pools — the determinism the
    /// multi-session bit-identity tests pin down.
    vae::AqpClient::Options client;
    ChannelProducer::Options channel;
  };

  /// `pool` = nullptr uses the process-global thread pool (--threads).
  explicit AqpServer(const Options& options,
                     util::ThreadPool* pool = nullptr);

  /// Drains all in-flight session work.
  ~AqpServer();

  AqpServer(const AqpServer&) = delete;
  AqpServer& operator=(const AqpServer&) = delete;

  /// Models are registered/hot-swapped directly on the registry.
  ModelRegistry& registry() { return registry_; }

  /// Dispatches one client request. Responses — including the whole
  /// asynchronous estimate stream triggered by a query — are delivered
  /// through `sink`. Errors are responses too (kError): a malformed or
  /// failed request never kills the session, let alone the server.
  void Handle(const ClientMessage& message,
              const std::shared_ptr<MessageSink>& sink);

  /// Blocks until no session has scheduled work. Quiescence, not
  /// completion: a stream stalled on missing acks is idle, not busy.
  void WaitIdle();

  size_t num_sessions() const;

  /// Cache statistics of a session's AqpClient, read on the session's
  /// strand (tests assert suffix-only evaluation through this).
  util::Result<vae::AqpClient::CacheStats> SessionCacheStats(
      uint64_t session_id);

  /// Model hot-swaps a session has performed (registry-version bumps it
  /// observed), read on the session's strand.
  util::Result<uint64_t> SessionModelSwaps(uint64_t session_id);

 private:
  struct SessionState {
    std::unique_ptr<Session> session;
    std::shared_ptr<MessageSink> sink;
  };

  std::shared_ptr<SessionState> FindSession(uint64_t session_id) const;

  /// Posts a strand task that steps `state`'s session and delivers whatever
  /// it produced. No self-repost: Step() pumps until every stream is
  /// window-full, waiting for acks, or finished — states only an incoming
  /// event (ack, next query) can change, and each event schedules the next
  /// step.
  void ScheduleStep(uint64_t session_id,
                    const std::shared_ptr<SessionState>& state);

  void HandleOpenSession(const ClientMessage& message,
                         const std::shared_ptr<MessageSink>& sink);
  void HandleQuery(const ClientMessage& message,
                   const std::shared_ptr<MessageSink>& sink);
  void HandleAck(const ClientMessage& message,
                 const std::shared_ptr<MessageSink>& sink);
  void HandleCloseSession(const ClientMessage& message,
                          const std::shared_ptr<MessageSink>& sink);

  Options options_;
  ModelRegistry registry_;
  RequestScheduler scheduler_;
  mutable std::mutex mu_;
  uint64_t next_session_id_ = 1;
  uint64_t next_channel_id_ = 1;
  std::map<uint64_t, std::shared_ptr<SessionState>> sessions_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SERVER_H_
