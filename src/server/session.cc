#include "server/session.h"

#include <utility>

#include "aqp/sql_parser.h"

namespace deepaqp::server {

Session::Session(uint64_t id, std::string model_name,
                 std::shared_ptr<const ModelSnapshot> snapshot,
                 const vae::AqpClient::Options& client_options,
                 const ChannelProducer::Options& channel_options)
    : id_(id),
      model_name_(std::move(model_name)),
      snapshot_(std::move(snapshot)),
      client_options_(client_options),
      channel_options_(channel_options),
      client_(vae::AqpClient::Share(snapshot_->model, client_options)) {}

util::Status Session::StartQuery(uint64_t channel, const std::string& sql,
                                 double max_relative_ci) {
  if (!(max_relative_ci > 0.0)) {
    return util::Status::InvalidArgument(
        "max_relative_ci must be positive, got " +
        std::to_string(max_relative_ci));
  }
  for (const QueryStream& s : streams_) {
    // Duplicate client-chosen channel id: the query already has a stream
    // (the client re-sent it after a reconnect, unsure whether the first
    // copy arrived). Starting a second stream would refine the pool twice.
    if (s.channel == channel) return util::Status::OK();
  }
  DEEPAQP_ASSIGN_OR_RETURN(aqp::AggregateQuery query,
                           aqp::ParseSql(sql, client_->pool()));
  QueryStream stream(channel, channel_options_);
  stream.query = query;
  stream.max_relative_ci = max_relative_ci;
  streams_.push_back(std::move(stream));
  return util::Status::OK();
}

bool Session::HasWork() const {
  for (const QueryStream& s : streams_) {
    if (!s.exhausted || s.producer.in_flight() > 0) return true;
  }
  return false;
}

std::vector<DataFrame> Session::Step(const ModelRegistry& registry,
                                     std::vector<ServerMessage>* errors) {
  std::vector<DataFrame> out;
  for (;;) {
    // Hot-swap probe: the registry may have installed a newer version of
    // our model. Only act on it at a stream boundary — no open stream has
    // emitted an estimate yet — because the swap resets the pool and caches
    // and would otherwise break the monotonic pool_rows/precision
    // trajectory of an in-flight stream. Mid-stream, the old refcounted
    // snapshot keeps serving until the front stream retires.
    const bool at_stream_boundary =
        streams_.empty() || streams_.front().producer.next_seq() == 0;
    if (at_stream_boundary &&
        registry.VersionOf(model_name_) != snapshot_->version) {
      auto snap = registry.Get(model_name_);
      if (snap.ok()) {
        snapshot_ = std::move(*snap);
        client_->SwapModel(snapshot_->model);
        ++model_swaps_;
      }
      // A NotFound (model deleted mid-flight) keeps the old refcounted
      // snapshot serving — that is the point of refcounting.
    }

    // Only the front stream refines (per-session query serialization); it
    // pushes estimates until its window is full, the stream completes, or
    // the channel fails.
    while (!streams_.empty()) {
      QueryStream& front = streams_.front();
      bool dropped = false;
      while (!front.exhausted && front.producer.CanPush()) {
        bool final = false;
        auto result = client_->QueryRefineStep(front.query,
                                               front.max_relative_ci, &final);
        util::Status push_status;
        if (result.ok()) {
          Estimate estimate;
          estimate.pool_rows = client_->pool_size();
          estimate.result = std::move(*result);
          push_status = front.producer.Push(EncodeEstimate(estimate), final);
          front.exhausted = final && push_status.ok();
        } else {
          push_status = result.status();
        }
        if (!push_status.ok()) {
          if (errors != nullptr) {
            errors->push_back(MakeError(id_, front.channel, push_status));
          }
          streams_.pop_front();
          dropped = true;
          break;
        }
      }
      // A live front stream (window-full, or exhausted and waiting for acks)
      // blocks later streams — per-session queries refine strictly in order.
      // Only a dropped front lets the next stream take over within this step.
      if (!dropped) break;
    }

    // Collect due transmissions (new frames and retransmits) from every open
    // stream, and retire streams whose final frame is fully acknowledged.
    for (auto it = streams_.begin(); it != streams_.end();) {
      if (it->producer.failed()) {
        if (errors != nullptr) {
          errors->push_back(MakeError(id_, it->channel, it->producer.error()));
        }
        it = streams_.erase(it);
        continue;
      }
      std::vector<DataFrame> frames = it->producer.PollSend();
      out.insert(out.end(), std::make_move_iterator(frames.begin()),
                 std::make_move_iterator(frames.end()));
      if (it->producer.complete()) {
        it = streams_.erase(it);
      } else {
        ++it;
      }
    }

    // Retiring the front may have promoted a queued stream that has not
    // refined yet. Pump again now: the client is waiting for that stream's
    // first frames and will send no further event to trigger another step,
    // so breaking here would stall pipelined queries forever. Terminates:
    // a promoted front just pushed frames that cannot already be acked, so
    // each extra pass needs a retirement and streams_ is finite.
    if (streams_.empty()) break;
    const QueryStream& front = streams_.front();
    if (front.exhausted || !front.producer.CanPush()) break;
  }
  return out;
}

void Session::ReplayUnacked() {
  for (QueryStream& s : streams_) s.producer.ReplayUnacked();
}

void Session::AbortOpenStreams(const util::Status& reason,
                               std::vector<ServerMessage>* errors) {
  for (const QueryStream& s : streams_) {
    if (errors != nullptr) errors->push_back(MakeError(id_, s.channel, reason));
  }
  streams_.clear();
}

void Session::HandleAck(const AckFrame& ack) {
  for (QueryStream& s : streams_) {
    if (s.channel != ack.channel) continue;
    s.producer.OnAck(ack);
    s.producer.Tick();
    return;
  }
}

}  // namespace deepaqp::server
