#ifndef DEEPAQP_SERVER_SOCKET_CLIENT_H_
#define DEEPAQP_SERVER_SOCKET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/socket_transport.h"
#include "server/wire.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::server {

/// Blocking framed TCP client socket: dials, sends encoded ClientMessages,
/// receives ServerMessages with a poll deadline. One connection, no retry
/// policy — RetryingConnection layers supervision on top.
class SocketConnection {
 public:
  SocketConnection() = default;
  ~SocketConnection();

  SocketConnection(const SocketConnection&) = delete;
  SocketConnection& operator=(const SocketConnection&) = delete;

  /// Dials host:port with a connect deadline (nonblocking connect + poll).
  util::Status Connect(const std::string& host, uint16_t port,
                       int timeout_ms);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Encodes + writes one frame, looping over short writes and EINTR.
  /// EPIPE/ECONNRESET map to a peer-closed IOError (see IsPeerClosed).
  util::Status Send(const ClientMessage& message);

  /// Blocks up to `timeout_ms` for the next server frame. nullopt = deadline
  /// expired with the connection still healthy; a peer-closed IOError means
  /// the server hung up (reconnect + resume territory).
  util::Result<std::optional<ServerMessage>> Receive(int timeout_ms);

 private:
  util::Status WriteAll(const uint8_t* data, size_t n);

  int fd_ = -1;
  FrameParser parser_;
};

/// Supervised client connection: exponential backoff with deterministic
/// jitter on (re)connect, session resumption by token after a connection
/// loss, and idempotent query re-send (client-chosen channel ids), so one
/// RunQuery call survives any number of mid-stream connection drops and
/// still returns the exact estimate sequence of an uninterrupted run.
///
/// SERVER_BUSY / SHUTTING_DOWN rejections (kUnavailable) are surfaced to
/// the caller, not retried blindly: shedding only works if shed clients
/// actually slow down, so the caller owns that retry decision.
class RetryingConnection {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Dial attempts per (re)connect before giving up.
    int max_attempts = 10;
    /// Backoff schedule: attempt k sleeps ~initial_backoff_ms * 2^k,
    /// capped, with deterministic jitter in [0.5, 1.0) of the nominal
    /// delay (seeded, so tests replay the exact schedule).
    int initial_backoff_ms = 5;
    int max_backoff_ms = 1000;
    uint64_t backoff_seed = 0x5eedULL;
    int connect_timeout_ms = 2000;
    /// Per-frame receive deadline inside RunQuery/handshakes. A healthy
    /// stream refines continuously, so a long silence is an error, not
    /// patience.
    int io_timeout_ms = 30000;
  };

  explicit RetryingConnection(const Options& options);

  /// Dials with backoff. Idempotent if already connected.
  util::Status Connect();
  void Close();

  /// Opens a session on `model` (0 knobs = server defaults) and records the
  /// resumption token. Connection-loss failures during the handshake are
  /// redialed with backoff (up to max_attempts); typed server rejections
  /// (SERVER_BUSY, SHUTTING_DOWN, unknown model) are surfaced immediately.
  util::Status OpenSession(const std::string& model,
                           uint64_t initial_samples = 0,
                           uint64_t max_samples = 0,
                           uint64_t population_rows = 0, uint64_t seed = 0);

  struct StreamResult {
    uint64_t channel = 0;
    std::vector<Estimate> estimates;  ///< in refinement order
    uint64_t resumes = 0;     ///< reconnect+resume cycles survived mid-stream
    uint64_t duplicates = 0;  ///< replayed frames dropped by the dedup
  };

  /// Runs one precision-on-demand query to completion, acking frames and
  /// transparently reconnecting + resuming on connection loss.
  util::Result<StreamResult> RunQuery(const std::string& sql,
                                      double max_relative_ci);

  /// PING/PONG round trip (liveness probe; use between streams).
  util::Status Ping();

  /// Closes the session server-side (waits for the confirmation), then the
  /// socket.
  util::Status CloseSession();

  uint64_t session() const { return session_; }
  uint64_t resume_token() const { return resume_token_; }
  uint64_t reconnects() const { return reconnects_; }

 private:
  /// Dial loop with backoff+jitter; plain connect, no handshake.
  util::Status Dial();
  /// One open-session exchange on the current connection.
  util::Status TryOpenOnce(const ClientMessage& open);
  /// Dial + kResumeSession handshake (when a session exists).
  util::Status Reconnect();
  int BackoffDelayMs(int attempt);

  Options options_;
  util::Rng jitter_;
  SocketConnection conn_;
  uint64_t session_ = 0;
  uint64_t resume_token_ = 0;
  uint64_t next_channel_ = 1;  ///< client-chosen stream ids (idempotency)
  uint64_t next_nonce_ = 1;
  uint64_t reconnects_ = 0;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SOCKET_CLIENT_H_
