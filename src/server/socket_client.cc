#include "server/socket_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "server/channel.h"

namespace deepaqp::server {

namespace {

util::Status Errno(const char* what) {
  const int err = errno;
  if (err == EPIPE || err == ECONNRESET) {
    return util::Status::IOError(std::string(what) + ": " + kPeerClosedMarker +
                                 " (" + std::strerror(err) + ")");
  }
  return util::Status::IOError(std::string(what) + ": " + std::strerror(err));
}

util::Status PeerClosed(const char* what) {
  return util::Status::IOError(std::string(what) + ": " + kPeerClosedMarker);
}

/// Reconstructs the util::Status a kError message projected onto the wire.
util::Status FromWire(const ServerMessage& error) {
  return util::Status(static_cast<util::StatusCode>(error.code),
                      error.message);
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketConnection

SocketConnection::~SocketConnection() { Close(); }

void SocketConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = FrameParser();
}

util::Status SocketConnection::Connect(const std::string& host, uint16_t port,
                                       int timeout_ms) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad host address: " + host);
  }

  // Nonblocking connect + poll gives a real deadline; the socket goes back
  // to blocking afterwards (sends block briefly, receives poll explicitly).
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    util::Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return util::Status::IOError("connect timed out to " + host + ":" +
                                   std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      errno = err;
      return Errno("connect");
    }
  }
  fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return util::Status::OK();
}

util::Status SocketConnection::WriteAll(const uint8_t* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    ssize_t rc = ::send(fd_, data + written, n - written, MSG_NOSIGNAL);
    if (rc > 0) {
      written += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return util::Status::OK();
}

util::Status SocketConnection::Send(const ClientMessage& message) {
  if (fd_ < 0) return PeerClosed("send");
  std::vector<uint8_t> framed;
  DEEPAQP_RETURN_IF_ERROR(
      AppendFramed(EncodeClientMessage(message), &framed));
  return WriteAll(framed.data(), framed.size());
}

util::Result<std::optional<ServerMessage>> SocketConnection::Receive(
    int timeout_ms) {
  if (fd_ < 0) return PeerClosed("recv");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    std::vector<uint8_t> frame;
    if (parser_.Next(&frame)) {
      DEEPAQP_ASSIGN_OR_RETURN(ServerMessage msg, DecodeServerMessage(frame));
      return std::optional<ServerMessage>(std::move(msg));
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::optional<ServerMessage>();
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, std::max(1, remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return std::optional<ServerMessage>();  // timeout
    uint8_t buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      DEEPAQP_RETURN_IF_ERROR(parser_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return PeerClosed("recv");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

// ---------------------------------------------------------------------------
// RetryingConnection

RetryingConnection::RetryingConnection(const Options& options)
    : options_(options), jitter_(options.backoff_seed) {}

int RetryingConnection::BackoffDelayMs(int attempt) {
  double nominal = static_cast<double>(options_.initial_backoff_ms);
  for (int i = 0; i < attempt; ++i) nominal *= 2.0;
  nominal = std::min(nominal, static_cast<double>(options_.max_backoff_ms));
  // Jitter in [0.5, 1.0) of nominal: desynchronizes a thundering herd of
  // clients all backing off from the same SERVER_BUSY moment.
  const double jittered = nominal * (0.5 + 0.5 * jitter_.NextDouble());
  return std::max(1, static_cast<int>(jittered));
}

util::Status RetryingConnection::Dial() {
  util::Status last = util::Status::IOError("no connect attempt made");
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffDelayMs(attempt - 1)));
    }
    last = conn_.Connect(options_.host, options_.port,
                         options_.connect_timeout_ms);
    if (last.ok()) return last;
  }
  return util::Status::IOError(
      "connect to " + options_.host + ":" + std::to_string(options_.port) +
      " failed after " + std::to_string(options_.max_attempts) +
      " attempts: " + last.message());
}

util::Status RetryingConnection::Connect() {
  if (conn_.connected()) return util::Status::OK();
  return Dial();
}

void RetryingConnection::Close() { conn_.Close(); }

util::Status RetryingConnection::Reconnect() {
  conn_.Close();
  DEEPAQP_RETURN_IF_ERROR(Dial());
  ++reconnects_;
  if (session_ == 0) return util::Status::OK();
  // Re-attach: the server swaps our fresh connection in as the session's
  // sink and replays every unacked frame.
  ClientMessage resume;
  resume.kind = ClientMessageKind::kResumeSession;
  resume.session = session_;
  resume.resume_token = resume_token_;
  DEEPAQP_RETURN_IF_ERROR(conn_.Send(resume));
  while (true) {
    DEEPAQP_ASSIGN_OR_RETURN(std::optional<ServerMessage> msg,
                             conn_.Receive(options_.io_timeout_ms));
    if (!msg.has_value()) {
      return util::Status::IOError("resume handshake timed out");
    }
    if (msg->kind == ServerMessageKind::kSessionResumed &&
        msg->session == session_) {
      return util::Status::OK();
    }
    if (msg->kind == ServerMessageKind::kError && msg->channel == 0) {
      return FromWire(*msg);
    }
    // Anything else (stale pong, late frame from the old incarnation) is
    // skipped; replayed frames proper arrive after kSessionResumed.
  }
}

util::Status RetryingConnection::TryOpenOnce(const ClientMessage& open) {
  DEEPAQP_RETURN_IF_ERROR(conn_.Send(open));
  while (true) {
    DEEPAQP_ASSIGN_OR_RETURN(std::optional<ServerMessage> msg,
                             conn_.Receive(options_.io_timeout_ms));
    if (!msg.has_value()) {
      return util::Status::IOError("open-session handshake timed out");
    }
    if (msg->kind == ServerMessageKind::kSessionOpened) {
      session_ = msg->session;
      resume_token_ = msg->resume_token;
      return util::Status::OK();
    }
    if (msg->kind == ServerMessageKind::kError) return FromWire(*msg);
  }
}

util::Status RetryingConnection::OpenSession(const std::string& model,
                                             uint64_t initial_samples,
                                             uint64_t max_samples,
                                             uint64_t population_rows,
                                             uint64_t seed) {
  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = model;
  open.initial_samples = initial_samples;
  open.max_samples = max_samples;
  open.population_rows = population_rows;
  open.seed = seed;
  // A connection that dies under the handshake (dropped accept, reaped or
  // faulted socket) is redialed with backoff; typed server rejections
  // (SERVER_BUSY, SHUTTING_DOWN, unknown model) surface immediately —
  // shedding only works if shed clients actually back off, so the caller
  // owns that retry decision. Caveat: if the server opened the session but
  // its reply was lost, the retry opens a fresh session and the orphan
  // stays idle server-side (no token ever reached us to close it with).
  util::Status last = util::Status::OK();
  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      conn_.Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffDelayMs(attempt - 1)));
      ++reconnects_;
    }
    last = Connect();
    if (!last.ok()) continue;
    last = TryOpenOnce(open);
    if (last.ok() || last.code() != util::StatusCode::kIOError) return last;
  }
  return util::Status::IOError("open-session failed after " +
                               std::to_string(attempts) +
                               " attempts: " + last.message());
}

util::Result<RetryingConnection::StreamResult> RetryingConnection::RunQuery(
    const std::string& sql, double max_relative_ci) {
  if (session_ == 0) {
    return util::Status::FailedPrecondition("RunQuery before OpenSession");
  }
  StreamResult result;
  result.channel = next_channel_++;
  ChannelConsumer consumer(result.channel);

  ClientMessage query;
  query.kind = ClientMessageKind::kQuery;
  query.session = session_;
  query.sql = sql;
  query.max_relative_ci = max_relative_ci;
  query.channel = result.channel;

  // (Re)connect-and-resend loop: a connection loss at ANY point below comes
  // back here. The query send is idempotent (client-chosen channel id) and
  // the consumer dedups replayed frames, so re-entering is always safe.
  util::Status io = conn_.connected() ? util::Status::OK()
                                      : util::Status::IOError("not connected");
  if (io.ok()) io = conn_.Send(query);
  while (true) {
    if (!io.ok()) {
      if (!IsPeerClosed(io) &&
          io.code() != util::StatusCode::kIOError) {
        return io;  // protocol/decode error, not a connection problem
      }
      if (result.resumes >= 64) {
        return util::Status::IOError(
            "stream abandoned after 64 resume cycles: " + io.message());
      }
      DEEPAQP_RETURN_IF_ERROR(Reconnect());
      ++result.resumes;
      // Idempotent re-send (the original may never have arrived), then our
      // current ack state so the server drops what we already hold.
      io = conn_.Send(query);
      if (io.ok()) {
        ClientMessage ackmsg;
        ackmsg.kind = ClientMessageKind::kAck;
        ackmsg.session = session_;
        ackmsg.ack = consumer.MakeAck();
        io = conn_.Send(ackmsg);
      }
      continue;
    }
    if (consumer.finished()) break;

    util::Result<std::optional<ServerMessage>> received =
        conn_.Receive(options_.io_timeout_ms);
    if (!received.ok()) {
      io = received.status();
      continue;
    }
    if (!received->has_value()) {
      return util::Status::IOError("stream receive timed out (channel " +
                                   std::to_string(result.channel) + ")");
    }
    const ServerMessage& msg = **received;
    switch (msg.kind) {
      case ServerMessageKind::kData: {
        if (msg.channel != result.channel) break;  // stale stream
        consumer.OnData(msg.data);
        ClientMessage ackmsg;
        ackmsg.kind = ClientMessageKind::kAck;
        ackmsg.session = session_;
        ackmsg.ack = consumer.MakeAck();
        io = conn_.Send(ackmsg);
        break;
      }
      case ServerMessageKind::kError:
        if (msg.channel == result.channel || msg.channel == 0) {
          return FromWire(msg);
        }
        break;
      default:
        break;  // kQueryStarted, stale pongs, resumed notices
    }
  }

  for (std::vector<uint8_t>& payload : consumer.TakeDelivered()) {
    DEEPAQP_ASSIGN_OR_RETURN(Estimate est, DecodeEstimate(payload));
    result.estimates.push_back(std::move(est));
  }
  result.duplicates = consumer.stats().duplicates;
  return result;
}

util::Status RetryingConnection::Ping() {
  DEEPAQP_RETURN_IF_ERROR(Connect());
  ClientMessage ping;
  ping.kind = ClientMessageKind::kPing;
  ping.session = session_;
  ping.nonce = next_nonce_++;
  DEEPAQP_RETURN_IF_ERROR(conn_.Send(ping));
  while (true) {
    DEEPAQP_ASSIGN_OR_RETURN(std::optional<ServerMessage> msg,
                             conn_.Receive(options_.io_timeout_ms));
    if (!msg.has_value()) return util::Status::IOError("ping timed out");
    if (msg->kind == ServerMessageKind::kPong && msg->nonce == ping.nonce) {
      return util::Status::OK();
    }
    // Skip unrelated traffic; pings are for idle connections.
  }
}

util::Status RetryingConnection::CloseSession() {
  if (session_ == 0) return util::Status::OK();
  ClientMessage close;
  close.kind = ClientMessageKind::kCloseSession;
  close.session = session_;
  util::Status io = conn_.Send(close);
  if (io.ok()) {
    while (true) {
      util::Result<std::optional<ServerMessage>> msg =
          conn_.Receive(options_.io_timeout_ms);
      if (!msg.ok() || !msg->has_value()) break;  // close is best-effort
      if ((*msg)->kind == ServerMessageKind::kSessionClosed) break;
      if ((*msg)->kind == ServerMessageKind::kError) break;
    }
  }
  session_ = 0;
  resume_token_ = 0;
  conn_.Close();
  return util::Status::OK();
}

}  // namespace deepaqp::server
