#include "server/wire.h"

#include <cerrno>
#include <cstring>

#include "util/serialize.h"

namespace deepaqp::server {

namespace {

void WriteU64Vector(util::ByteWriter* w, const std::vector<uint64_t>& v) {
  w->WriteU64(v.size());
  for (uint64_t x : v) w->WriteU64(x);
}

util::Result<std::vector<uint64_t>> ReadU64Vector(util::ByteReader* r) {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(uint64_t)) {
    return util::Status::InvalidArgument("u64 vector length exceeds buffer");
  }
  std::vector<uint64_t> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t x, r->ReadU64());
    v.push_back(x);
  }
  return v;
}

void WriteAck(util::ByteWriter* w, const AckFrame& ack) {
  w->WriteU64(ack.channel);
  w->WriteU64(ack.cumulative);
  WriteU64Vector(w, ack.selective);
}

util::Result<AckFrame> ReadAck(util::ByteReader* r) {
  AckFrame ack;
  DEEPAQP_ASSIGN_OR_RETURN(ack.channel, r->ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(ack.cumulative, r->ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(ack.selective, ReadU64Vector(r));
  return ack;
}

void WriteData(util::ByteWriter* w, const DataFrame& frame) {
  w->WriteU64(frame.channel);
  w->WriteU64(frame.seq);
  w->WriteU8(frame.final ? 1 : 0);
  w->WriteU64(frame.payload.size());
  w->WriteRaw(frame.payload.data(), frame.payload.size());
}

util::Result<DataFrame> ReadData(util::ByteReader* r) {
  DataFrame frame;
  DEEPAQP_ASSIGN_OR_RETURN(frame.channel, r->ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(frame.seq, r->ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(uint8_t final_flag, r->ReadU8());
  frame.final = final_flag != 0;
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining()) {
    return util::Status::InvalidArgument("data payload length exceeds buffer");
  }
  DEEPAQP_ASSIGN_OR_RETURN(frame.payload, r->ReadBytes(n));
  return frame;
}

}  // namespace

ServerMessage MakeError(uint64_t session, uint64_t channel,
                        const util::Status& status) {
  ServerMessage msg;
  msg.kind = ServerMessageKind::kError;
  msg.session = session;
  msg.channel = channel;
  msg.code = static_cast<int32_t>(status.code());
  msg.message = status.ToString();
  return msg;
}

std::vector<uint8_t> EncodeEstimate(const Estimate& estimate) {
  util::ByteWriter w;
  w.WriteU64(estimate.pool_rows);
  w.WriteU32(static_cast<uint32_t>(estimate.result.groups.size()));
  for (const aqp::GroupValue& g : estimate.result.groups) {
    w.WriteI32(g.group);
    w.WriteF64(g.value);
    w.WriteU64(g.support);
    w.WriteF64(g.ci_half_width);
  }
  return w.bytes();
}

util::Result<Estimate> DecodeEstimate(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  Estimate e;
  DEEPAQP_ASSIGN_OR_RETURN(e.pool_rows, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(uint32_t groups, r.ReadU32());
  if (groups > r.remaining() / (sizeof(int32_t) + 2 * sizeof(double) +
                                sizeof(uint64_t))) {
    return util::Status::InvalidArgument("estimate group count exceeds buffer");
  }
  e.result.groups.resize(groups);
  for (aqp::GroupValue& g : e.result.groups) {
    DEEPAQP_ASSIGN_OR_RETURN(g.group, r.ReadI32());
    DEEPAQP_ASSIGN_OR_RETURN(g.value, r.ReadF64());
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t support, r.ReadU64());
    g.support = support;
    DEEPAQP_ASSIGN_OR_RETURN(g.ci_half_width, r.ReadF64());
  }
  if (!r.AtEnd()) {
    return util::Status::InvalidArgument("trailing bytes after estimate");
  }
  return e;
}

std::vector<uint8_t> EncodeClientMessage(const ClientMessage& msg) {
  util::ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(msg.kind));
  switch (msg.kind) {
    case ClientMessageKind::kOpenSession:
      w.WriteString(msg.model_name);
      w.WriteU64(msg.initial_samples);
      w.WriteU64(msg.max_samples);
      w.WriteU64(msg.population_rows);
      w.WriteU64(msg.seed);
      break;
    case ClientMessageKind::kQuery:
      w.WriteU64(msg.session);
      w.WriteString(msg.sql);
      w.WriteF64(msg.max_relative_ci);
      w.WriteU64(msg.channel);
      break;
    case ClientMessageKind::kAck:
      w.WriteU64(msg.session);
      WriteAck(&w, msg.ack);
      break;
    case ClientMessageKind::kCloseSession:
      w.WriteU64(msg.session);
      break;
    case ClientMessageKind::kResumeSession:
      w.WriteU64(msg.session);
      w.WriteU64(msg.resume_token);
      break;
    case ClientMessageKind::kPing:
      w.WriteU64(msg.session);
      w.WriteU64(msg.nonce);
      break;
  }
  return w.bytes();
}

util::Result<ClientMessage> DecodeClientMessage(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  ClientMessage msg;
  DEEPAQP_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  switch (static_cast<ClientMessageKind>(kind)) {
    case ClientMessageKind::kOpenSession: {
      msg.kind = ClientMessageKind::kOpenSession;
      DEEPAQP_ASSIGN_OR_RETURN(msg.model_name, r.ReadString());
      DEEPAQP_ASSIGN_OR_RETURN(msg.initial_samples, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.max_samples, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.population_rows, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.seed, r.ReadU64());
      break;
    }
    case ClientMessageKind::kQuery: {
      msg.kind = ClientMessageKind::kQuery;
      DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.sql, r.ReadString());
      DEEPAQP_ASSIGN_OR_RETURN(msg.max_relative_ci, r.ReadF64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.channel, r.ReadU64());
      break;
    }
    case ClientMessageKind::kAck: {
      msg.kind = ClientMessageKind::kAck;
      DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.ack, ReadAck(&r));
      break;
    }
    case ClientMessageKind::kCloseSession: {
      msg.kind = ClientMessageKind::kCloseSession;
      DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
      break;
    }
    case ClientMessageKind::kResumeSession: {
      msg.kind = ClientMessageKind::kResumeSession;
      DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.resume_token, r.ReadU64());
      break;
    }
    case ClientMessageKind::kPing: {
      msg.kind = ClientMessageKind::kPing;
      DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.nonce, r.ReadU64());
      break;
    }
    default:
      return util::Status::InvalidArgument(
          "unknown client message kind " + std::to_string(kind));
  }
  if (!r.AtEnd()) {
    return util::Status::InvalidArgument(
        "trailing bytes after client message");
  }
  return msg;
}

std::vector<uint8_t> EncodeServerMessage(const ServerMessage& msg) {
  util::ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(msg.kind));
  w.WriteU64(msg.session);
  switch (msg.kind) {
    case ServerMessageKind::kSessionOpened:
      w.WriteU64(msg.resume_token);
      break;
    case ServerMessageKind::kSessionClosed:
    case ServerMessageKind::kSessionResumed:
      break;
    case ServerMessageKind::kPong:
      w.WriteU64(msg.nonce);
      break;
    case ServerMessageKind::kQueryStarted:
      w.WriteU64(msg.channel);
      break;
    case ServerMessageKind::kData:
      WriteData(&w, msg.data);
      break;
    case ServerMessageKind::kError:
      w.WriteU64(msg.channel);
      w.WriteI32(msg.code);
      w.WriteString(msg.message);
      break;
  }
  return w.bytes();
}

util::Result<ServerMessage> DecodeServerMessage(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  ServerMessage msg;
  DEEPAQP_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  DEEPAQP_ASSIGN_OR_RETURN(msg.session, r.ReadU64());
  switch (static_cast<ServerMessageKind>(kind)) {
    case ServerMessageKind::kSessionOpened: {
      msg.kind = ServerMessageKind::kSessionOpened;
      DEEPAQP_ASSIGN_OR_RETURN(msg.resume_token, r.ReadU64());
      break;
    }
    case ServerMessageKind::kSessionClosed:
      msg.kind = ServerMessageKind::kSessionClosed;
      break;
    case ServerMessageKind::kSessionResumed:
      msg.kind = ServerMessageKind::kSessionResumed;
      break;
    case ServerMessageKind::kPong: {
      msg.kind = ServerMessageKind::kPong;
      DEEPAQP_ASSIGN_OR_RETURN(msg.nonce, r.ReadU64());
      break;
    }
    case ServerMessageKind::kQueryStarted: {
      msg.kind = ServerMessageKind::kQueryStarted;
      DEEPAQP_ASSIGN_OR_RETURN(msg.channel, r.ReadU64());
      break;
    }
    case ServerMessageKind::kData: {
      msg.kind = ServerMessageKind::kData;
      DEEPAQP_ASSIGN_OR_RETURN(msg.data, ReadData(&r));
      msg.channel = msg.data.channel;
      break;
    }
    case ServerMessageKind::kError: {
      msg.kind = ServerMessageKind::kError;
      DEEPAQP_ASSIGN_OR_RETURN(msg.channel, r.ReadU64());
      DEEPAQP_ASSIGN_OR_RETURN(msg.code, r.ReadI32());
      DEEPAQP_ASSIGN_OR_RETURN(msg.message, r.ReadString());
      break;
    }
    default:
      return util::Status::InvalidArgument(
          "unknown server message kind " + std::to_string(kind));
  }
  if (!r.AtEnd()) {
    return util::Status::InvalidArgument(
        "trailing bytes after server message");
  }
  return msg;
}

namespace {

// The length prefix is serialized explicitly little-endian (the documented
// wire order) instead of through raw native memory, so the framing is
// byte-identical across host endianness.
void EncodePrefix(uint32_t n, uint8_t out[4]) {
  out[0] = static_cast<uint8_t>(n);
  out[1] = static_cast<uint8_t>(n >> 8);
  out[2] = static_cast<uint8_t>(n >> 16);
  out[3] = static_cast<uint8_t>(n >> 24);
}

uint32_t DecodePrefix(const uint8_t in[4]) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

}  // namespace

util::Status AppendFramed(const std::vector<uint8_t>& body,
                          std::vector<uint8_t>* out) {
  if (body.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  uint8_t prefix[4];
  EncodePrefix(static_cast<uint32_t>(body.size()), prefix);
  out->insert(out->end(), prefix, prefix + sizeof(prefix));
  out->insert(out->end(), body.begin(), body.end());
  return util::Status::OK();
}

namespace {

/// Writes all of [data, data+n) to `f`, looping over short writes and
/// retrying EINTR — stdio gives no partial-write guarantee on signals, and
/// silently dropping a frame suffix desynchronizes the length-prefixed
/// stream forever. A dead peer surfaces as EPIPE/ECONNRESET, which is
/// reported with the kPeerClosedMarker so callers can treat it as a
/// connection-close rather than a daemon-fatal error.
util::Status WriteAllStdio(std::FILE* f, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    errno = 0;
    const size_t wrote = std::fwrite(data + off, 1, n - off, f);
    off += wrote;
    if (off == n) break;
    if (errno == EINTR) {
      std::clearerr(f);
      continue;
    }
    if (wrote > 0 && !std::ferror(f)) continue;  // plain short write
    if (errno == EPIPE || errno == ECONNRESET) {
      return util::Status::IOError(std::string(kPeerClosedMarker) +
                                   ": " + std::strerror(errno));
    }
    return util::Status::IOError(
        std::string("write failed on framed stream: ") +
        (errno != 0 ? std::strerror(errno) : "short write"));
  }
  return util::Status::OK();
}

}  // namespace

bool IsPeerClosed(const util::Status& status) {
  return status.code() == util::StatusCode::kIOError &&
         status.message().find(kPeerClosedMarker) != std::string::npos;
}

util::Status WriteFramed(std::FILE* f, const std::vector<uint8_t>& body) {
  if (body.size() > kMaxFrameBytes) {
    return util::Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  const auto n = static_cast<uint32_t>(body.size());
  uint8_t prefix[4];
  EncodePrefix(n, prefix);
  DEEPAQP_RETURN_IF_ERROR(WriteAllStdio(f, prefix, sizeof(prefix)));
  if (n > 0) DEEPAQP_RETURN_IF_ERROR(WriteAllStdio(f, body.data(), n));
  while (std::fflush(f) != 0) {
    if (errno == EINTR) {
      std::clearerr(f);
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return util::Status::IOError(std::string(kPeerClosedMarker) +
                                   ": " + std::strerror(errno));
    }
    return util::Status::IOError(
        std::string("flush failed on framed stream: ") +
        std::strerror(errno));
  }
  return util::Status::OK();
}

util::Result<std::optional<std::vector<uint8_t>>> ReadFramed(std::FILE* f) {
  uint8_t prefix[4];
  const size_t got = std::fread(prefix, 1, sizeof(prefix), f);
  if (got == 0) return std::optional<std::vector<uint8_t>>();  // clean EOF
  if (got != sizeof(prefix)) {
    return util::Status::IOError("truncated frame length prefix");
  }
  const uint32_t n = DecodePrefix(prefix);
  if (n > kMaxFrameBytes) {
    return util::Status::InvalidArgument(
        "frame length " + std::to_string(n) + " exceeds limit");
  }
  std::vector<uint8_t> body(n);
  if (n > 0 && std::fread(body.data(), 1, n, f) != n) {
    return util::Status::IOError("truncated frame body");
  }
  return std::optional<std::vector<uint8_t>>(std::move(body));
}

}  // namespace deepaqp::server
