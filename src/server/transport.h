#ifndef DEEPAQP_SERVER_TRANSPORT_H_
#define DEEPAQP_SERVER_TRANSPORT_H_

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "server/wire.h"
#include "util/status.h"

namespace deepaqp::server {

/// Server -> client delivery interface. The server pushes every response
/// (session lifecycle, estimate DATA frames, errors) through one of these;
/// implementations may be called from any scheduler thread and must be
/// internally synchronized. The client -> server direction is uniform
/// already: every transport ends up calling AqpServer::Handle with a
/// decoded ClientMessage.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  /// Delivery outcome: a non-OK status means the bytes did not reach the
  /// peer (dead connection, I/O error). Callers on the server side may
  /// ignore it for frames the reliable channel will retransmit anyway, but
  /// a sink must never silently drop bytes and report success.
  virtual util::Status Deliver(const ServerMessage& message) = 0;
};

/// In-process pipe: a thread-safe FIFO the client side drains. This is the
/// transport of every test and of bench_server — structs pass through
/// unserialized, delivery is reliable and ordered, and the only
/// nondeterminism is scheduling (which the protocol already tolerates).
class PipeTransport : public MessageSink {
 public:
  util::Status Deliver(const ServerMessage& message) override;

  /// Blocks until a message is available and pops it.
  ServerMessage Pop();

  /// Non-blocking pop; false when the pipe is empty.
  bool TryPop(ServerMessage* out);

  size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ServerMessage> queue_;
};

/// Length-prefixed binary framing over a stdio stream pair — the transport
/// behind `deepaqp_cli serve`. Each ServerMessage is encoded and written as
/// one frame (u32 length + body); writes are mutex-serialized so scheduler
/// threads can deliver concurrently.
class StdioTransport : public MessageSink {
 public:
  explicit StdioTransport(std::FILE* out) : out_(out) {}

  util::Status Deliver(const ServerMessage& message) override;

  /// Reads and decodes the next client frame from `in`. nullopt = clean EOF.
  static util::Result<std::optional<ClientMessage>> ReadRequest(std::FILE* in);

  /// I/O errors observed by Deliver (a sink cannot return Status upward).
  util::Status last_error() const;

 private:
  std::FILE* out_;
  mutable std::mutex mu_;
  util::Status last_error_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_TRANSPORT_H_
