#ifndef DEEPAQP_SERVER_SESSION_H_
#define DEEPAQP_SERVER_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "server/channel.h"
#include "server/registry.h"
#include "server/wire.h"
#include "util/status.h"
#include "vae/client.h"

namespace deepaqp::server {

/// Per-session serving state: one vae::AqpClient (own sample pool, own
/// suffix-incremental query cache, own deterministic rng stream) bound to a
/// registry model by name. NOT thread-safe — the scheduler serializes all
/// access on the session's strand.
///
/// Queries are precision-on-demand streams: StartQuery opens a channel and
/// Step() pushes one refining estimate per call while the channel window
/// has room, so a slow consumer (unacked frames) pauses estimate generation
/// instead of buffering unboundedly. Streams of one session execute
/// strictly in submission order — a later query starts refining only after
/// the earlier stream pushed its final estimate, which keeps the pool
/// growth trajectory (and therefore every estimate) bit-identical to a
/// direct AqpClient::QueryRefineStep loop issuing the same sequence.
class Session {
 public:
  /// Binds to `snapshot` (current registry version of `model_name`).
  Session(uint64_t id, std::string model_name,
          std::shared_ptr<const ModelSnapshot> snapshot,
          const vae::AqpClient::Options& client_options,
          const ChannelProducer::Options& channel_options);

  uint64_t id() const { return id_; }
  const std::string& model_name() const { return model_name_; }
  uint64_t model_version() const { return snapshot_->version; }

  /// Opens a stream for `sql` on channel id `channel`. The query is parsed
  /// against the session pool's schema immediately; a parse/validation
  /// error fails the request, not the session. Re-submitting a channel id
  /// that already has an open stream is an idempotent no-op (a reconnecting
  /// client may not know whether its query survived the old connection).
  util::Status StartQuery(uint64_t channel, const std::string& sql,
                          double max_relative_ci);

  /// True when any stream still has estimates to compute or frames to
  /// (re)transmit — i.e. another Step is worth scheduling.
  bool HasWork() const;

  /// One cooperative scheduling step:
  ///  1. Registry staleness probe: at a stream boundary (no open stream has
  ///     emitted an estimate yet) a version bump hot-swaps the session's
  ///     model and resets the client (pool + caches) — the stale-cache
  ///     invalidation hook. Mid-stream the swap is deferred so the
  ///     in-flight stream keeps its generator and its monotonic
  ///     pool_rows/precision trajectory; the old refcounted snapshot serves
  ///     until the stream retires.
  ///  2. The front stream computes refinements while its window has room.
  ///  3. Due frames of every open stream are collected for transmission.
  /// Steps repeat while retirement promotes a fresh front stream, so a
  /// pipelined query starts refining in the same step that completed its
  /// predecessor (no client event would arrive to trigger another step).
  /// Returns the frames to send; failed streams are reported through
  /// `errors` (one ServerMessage::kError each) and dropped.
  std::vector<DataFrame> Step(const ModelRegistry& registry,
                              std::vector<ServerMessage>* errors);

  /// Routes an acknowledgment to its stream (advancing the logical clock;
  /// retransmission timeouts are measured in received-ack events, not wall
  /// time). Unknown channel ids are ignored (late acks of completed
  /// streams are legal).
  void HandleAck(const AckFrame& ack);

  /// Session-resumption replay: every stream re-offers its sent-but-unacked
  /// frames at the next Step (the reconnecting consumer dedups). Estimates
  /// are NOT recomputed — the retransmit buffers carry the original bytes,
  /// which is what keeps a resumed stream bit-identical to an uninterrupted
  /// one.
  void ReplayUnacked();

  /// Forced drain (shutdown deadline exceeded): every open stream dies with
  /// `reason` reported through `errors`, never a silent truncation.
  void AbortOpenStreams(const util::Status& reason,
                        std::vector<ServerMessage>* errors);

  /// Model hot-swaps observed by this session.
  uint64_t model_swaps() const { return model_swaps_; }

  /// Streams not yet fully delivered+acked.
  size_t open_streams() const { return streams_.size(); }

  const vae::AqpClient& client() const { return *client_; }

 private:
  struct QueryStream {
    uint64_t channel = 0;
    aqp::AggregateQuery query;
    double max_relative_ci = 0.0;
    ChannelProducer producer;
    bool exhausted = false;  ///< final estimate pushed

    QueryStream(uint64_t channel_id, const ChannelProducer::Options& options)
        : channel(channel_id), producer(channel_id, options) {}
  };

  uint64_t id_;
  std::string model_name_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  vae::AqpClient::Options client_options_;
  ChannelProducer::Options channel_options_;
  std::unique_ptr<vae::AqpClient> client_;
  std::deque<QueryStream> streams_;  ///< FIFO; front refines first
  uint64_t model_swaps_ = 0;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SESSION_H_
