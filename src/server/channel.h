#ifndef DEEPAQP_SERVER_CHANNEL_H_
#define DEEPAQP_SERVER_CHANNEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/status.h"

namespace deepaqp::server {

/// Single-producer reliable ordered-delivery channel: the wire protocol of
/// precision-on-demand streaming. Each query opens one channel; every
/// refining estimate is one DATA frame carrying a sequence number, the
/// consumer answers with cumulative + selective ACKs, and the producer
/// observes a bounded in-flight window (backpressure) and retransmits on
/// NACK or timeout.
///
/// Both endpoints are pure deterministic state machines: no threads, no
/// wall-clock — time is a logical tick the owner advances explicitly
/// (ChannelProducer::Tick). Every loss/reorder/duplication schedule is
/// therefore replayable byte-for-byte, which is what lets
/// tests/server_channel_test.cc sweep hundreds of seeded adversarial
/// schedules and assert exact in-order delivery on each.

/// One refinement estimate in flight. `seq` starts at 0 per channel;
/// `final` marks the stream's last frame (the estimate that met the
/// requested precision or exhausted the sample budget).
struct DataFrame {
  uint64_t channel = 0;
  uint64_t seq = 0;
  bool final = false;
  std::vector<uint8_t> payload;
};

/// Consumer -> producer acknowledgment. `cumulative` is the next expected
/// sequence number: every seq < cumulative has been delivered in order.
/// `selective` lists delivered-but-buffered seqs >= cumulative (ascending);
/// gaps below its maximum are implicit NACKs the producer answers with a
/// fast retransmit. An empty `selective` degrades the protocol to plain
/// cumulative ACKs (timeout-only recovery) — delivery is unaffected, only
/// recovery latency (the equivalence is pinned by the test suite).
struct AckFrame {
  uint64_t channel = 0;
  uint64_t cumulative = 0;
  std::vector<uint64_t> selective;
};

/// Producer endpoint. Owned by the server session generating a query's
/// estimate stream.
///
///   while (!done) {
///     if (producer.CanPush()) producer.Push(NextEstimate(), final);
///     for (frame : producer.PollSend()) transport.Send(frame);
///     ... on ack arrival: producer.OnAck(ack); producer.Tick();
///   }
class ChannelProducer {
 public:
  struct Options {
    /// Max unacknowledged frames in flight; CanPush() is false (and Push
    /// refuses) at the bound. This is the backpressure contract: a slow or
    /// absent consumer halts estimate generation instead of ballooning the
    /// retransmit buffer.
    size_t window = 8;
    /// Logical ticks without an ACK before an in-flight frame is
    /// re-offered by PollSend.
    uint64_t retransmit_ticks = 4;
    /// Retransmissions a single frame may consume before the channel gives
    /// up with a descriptive error (dead-peer bound).
    uint64_t max_retransmits_per_frame = 64;
    /// Memory bound on the retransmit buffer: CanPush() is false while the
    /// unacked payload bytes reach this, independent of the frame-count
    /// window. A stalled consumer therefore caps this stream's server-side
    /// memory at roughly max_buffered_bytes + one frame. 0 = unbounded.
    size_t max_buffered_bytes = 8u << 20;
  };

  struct Stats {
    uint64_t pushed = 0;            ///< estimates accepted by Push
    uint64_t transmissions = 0;     ///< DATA frames handed to PollSend callers
    uint64_t timeout_retransmits = 0;
    uint64_t nack_retransmits = 0;  ///< fast retransmits from SACK gaps
    uint64_t resume_replays = 0;    ///< frames re-offered by ReplayUnacked
    uint64_t acks = 0;
    uint64_t stale_acks = 0;        ///< acks that acknowledged nothing new
    size_t buffered_bytes = 0;      ///< payload bytes currently unacked
    size_t peak_buffered_bytes = 0; ///< high-water mark of buffered_bytes
  };

  ChannelProducer(uint64_t channel_id, const Options& options);

  /// True when the in-flight window has room for another estimate.
  bool CanPush() const;

  /// Queues `payload` as the next sequence number. Refuses when the window
  /// is full (backpressure; state unchanged), after `final` has been pushed,
  /// or after the channel failed.
  util::Status Push(std::vector<uint8_t> payload, bool final);

  /// Frames to transmit now: never-sent frames plus retransmissions that
  /// came due via Tick (timeout) or OnAck (NACK gap). Each returned frame
  /// is marked sent at the current tick; calling PollSend twice in a row
  /// returns nothing new the second time.
  std::vector<DataFrame> PollSend();

  /// Applies an acknowledgment: drops every acked frame from the retransmit
  /// buffer and schedules fast retransmits for SACK gaps. Fast retransmits
  /// draw on the same max_retransmits_per_frame budget as timeout
  /// retransmits and fail the channel when it is exhausted.
  void OnAck(const AckFrame& ack);

  /// Advances the logical clock one step; in-flight frames whose last
  /// transmission is `retransmit_ticks` old become due for retransmission.
  /// A frame exceeding max_retransmits_per_frame fails the channel.
  void Tick();

  /// Marks every sent-but-unacked frame due for retransmission — the
  /// session-resumption replay. A reconnecting consumer may have lost any
  /// suffix of the in-flight window, so everything unacked is re-offered at
  /// the next PollSend; duplicates are dropped by the consumer. Replays do
  /// not spend the per-frame retransmit budget (each one is triggered by an
  /// authenticated re-attach, not by a silent peer).
  void ReplayUnacked();

  /// True once the final frame was pushed and every frame is acknowledged.
  bool complete() const { return final_pushed_ && in_flight_.empty(); }

  /// True when the channel gave up (retransmit budget exhausted or an
  /// injected fault); error() carries the reason.
  bool failed() const { return !error_.ok(); }
  const util::Status& error() const { return error_; }

  uint64_t channel_id() const { return channel_; }
  uint64_t next_seq() const { return next_seq_; }
  size_t in_flight() const { return in_flight_.size(); }
  bool final_pushed() const { return final_pushed_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<uint8_t> payload;
    bool final = false;
    bool sent = false;          ///< transmitted at least once
    bool resend_due = false;    ///< timeout or NACK asked for retransmission
    uint64_t last_sent_tick = 0;
    uint64_t retransmits = 0;
  };

  uint64_t channel_;
  Options options_;
  uint64_t next_seq_ = 0;
  uint64_t now_ = 0;
  uint64_t cumulative_acked_ = 0;  ///< highest cumulative ack seen
  bool final_pushed_ = false;
  std::map<uint64_t, Pending> in_flight_;  ///< seq -> unacked frame
  util::Status error_;
  Stats stats_;
};

/// Consumer endpoint. Tolerates loss (gaps are NACKed via MakeAck),
/// reordering (out-of-order frames are buffered and released in sequence)
/// and duplication (frames at an already-delivered or already-buffered seq
/// are dropped and counted) — TakeDelivered() yields each payload exactly
/// once, in sequence order, no matter the schedule.
class ChannelConsumer {
 public:
  struct Stats {
    uint64_t frames = 0;      ///< DATA frames observed
    uint64_t duplicates = 0;  ///< dropped as already delivered/buffered
    uint64_t buffered = 0;    ///< arrived ahead of sequence, parked
    uint64_t delivered = 0;   ///< payloads released in order
  };

  explicit ChannelConsumer(uint64_t channel_id) : channel_(channel_id) {}

  /// Accepts one frame (any order, any multiplicity).
  void OnData(const DataFrame& frame);

  /// Drains every payload that is deliverable in order; each is returned
  /// exactly once across the consumer's lifetime.
  std::vector<std::vector<uint8_t>> TakeDelivered();

  /// True once the final frame and all its predecessors were delivered.
  bool finished() const { return finished_; }

  /// Builds the acknowledgment describing the current receive state. With
  /// `selective` false the SACK list is omitted (cumulative-only mode).
  AckFrame MakeAck(bool selective = true) const;

  uint64_t channel_id() const { return channel_; }
  uint64_t next_expected() const { return next_expected_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Parked {
    std::vector<uint8_t> payload;
    bool final = false;
  };

  uint64_t channel_;
  uint64_t next_expected_ = 0;
  bool finished_ = false;
  std::map<uint64_t, Parked> parked_;  ///< out-of-order buffer, seq -> frame
  std::vector<std::vector<uint8_t>> ready_;
  Stats stats_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_CHANNEL_H_
