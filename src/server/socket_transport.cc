#include "server/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace deepaqp::server {

namespace {

util::Status Errno(const char* what) {
  const int err = errno;
  if (err == EPIPE || err == ECONNRESET) {
    return util::Status::IOError(std::string(what) + ": " + kPeerClosedMarker +
                                 " (" + std::strerror(err) + ")");
  }
  return util::Status::IOError(std::string(what) + ": " + std::strerror(err));
}

util::Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return util::Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameParser

util::Status FrameParser::Feed(const uint8_t* data, size_t n) {
  if (poisoned_) {
    return util::Status::InvalidArgument("frame stream poisoned");
  }
  // Compact lazily: only when the already-consumed prefix dominates the
  // buffer, so steady-state feeding is amortized O(bytes).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
  // Validate the pending length prefix eagerly so an oversized frame is
  // rejected before its body is ever buffered.
  if (buffer_.size() - consumed_ >= 4) {
    uint32_t len = 0;
    std::memcpy(&len, buffer_.data() + consumed_, 4);
    if (len > kMaxFrameBytes) {
      poisoned_ = true;
      return util::Status::InvalidArgument(
          "frame length " + std::to_string(len) + " exceeds limit " +
          std::to_string(kMaxFrameBytes) + " (corrupt stream)");
    }
  }
  return util::Status::OK();
}

bool FrameParser::Next(std::vector<uint8_t>* frame) {
  if (poisoned_) return false;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + consumed_, 4);
  if (avail < 4 + static_cast<size_t>(len)) return false;
  frame->assign(buffer_.begin() + static_cast<ptrdiff_t>(consumed_ + 4),
                buffer_.begin() + static_cast<ptrdiff_t>(consumed_ + 4 + len));
  consumed_ += 4 + len;
  return true;
}

// ---------------------------------------------------------------------------
// Connection + its sink

class SocketServer::Connection {
 public:
  Connection(uint64_t id_in, int fd_in) : id(id_in), fd(fd_in) {
    last_read = std::chrono::steady_clock::now();
  }

  const uint64_t id;
  const int fd;
  FrameParser parser;
  std::shared_ptr<ConnectionSink> sink;
  std::atomic<bool> open{true};
  std::chrono::steady_clock::time_point last_read;  ///< loop thread only

  // Outbox: encoded frames queued for the socket, appended by scheduler
  // threads (via the sink) and drained by the poll loop on POLLOUT.
  std::mutex out_mu;
  std::deque<std::vector<uint8_t>> outbox;
  size_t out_offset = 0;  ///< bytes of outbox.front() already written

  bool HasOutput() {
    std::lock_guard<std::mutex> lock(out_mu);
    return !outbox.empty();
  }
};

class SocketServer::ConnectionSink : public MessageSink {
 public:
  ConnectionSink(SocketServer* server, std::weak_ptr<Connection> conn)
      : server_(server), conn_(std::move(conn)) {}

  util::Status Deliver(const ServerMessage& message) override {
    std::shared_ptr<Connection> conn = conn_.lock();
    if (conn == nullptr || !conn->open.load(std::memory_order_acquire)) {
      return util::Status::IOError(std::string(kPeerClosedMarker) +
                                   ": connection gone");
    }
    std::vector<uint8_t> framed;
    util::Status status = AppendFramed(EncodeServerMessage(message), &framed);
    if (!status.ok()) return status;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->outbox.push_back(std::move(framed));
    }
    server_->Wake();
    return util::Status::OK();
  }

 private:
  SocketServer* server_;
  std::weak_ptr<Connection> conn_;
};

// ---------------------------------------------------------------------------
// SocketServer

SocketServer::SocketServer(AqpServer* server, const Options& options)
    : server_(server), options_(options) {}

SocketServer::~SocketServer() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

util::Status SocketServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return util::Status::InvalidArgument("bad bind address: " +
                                         options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");
  DEEPAQP_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe(pipefd) < 0) return Errno("pipe");
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  DEEPAQP_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  DEEPAQP_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));
  return util::Status::OK();
}

util::Status SocketServer::Start() {
  if (listen_fd_ < 0 || wake_read_fd_ < 0) {
    return util::Status::FailedPrecondition("Start before successful Listen");
  }
  if (running_.exchange(true)) {
    return util::Status::FailedPrecondition("already started");
  }
  loop_ = std::thread([this] { Loop(); });
  return util::Status::OK();
}

void SocketServer::Wake() {
  if (wake_write_fd_ < 0) return;
  const uint8_t byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

size_t SocketServer::num_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void SocketServer::AcceptOne() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: retry at next poll
    }
    if (util::FailpointTriggered("socket/accept")) {
      // Injected accept fault: this one client is refused (it sees EOF and
      // retries with backoff); the listener and every live connection are
      // untouched.
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (options_.max_connections > 0 &&
          conns_.size() >= options_.max_connections) {
        ::close(fd);
        continue;
      }
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      const uint64_t id = next_conn_id_++;
      conn = std::make_shared<Connection>(id, fd);
      conn->sink = std::make_shared<ConnectionSink>(this, conn);
      conns_[id] = conn;
    }
  }
}

bool SocketServer::ReadReady(Connection* conn) {
  if (util::FailpointTriggered("socket/read", conn->id)) return false;
  bool saw_bytes = false;
  while (true) {
    uint8_t buf[64 * 1024];
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      saw_bytes = true;
      if (!conn->parser.Feed(buf, static_cast<size_t>(n)).ok()) return false;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  if (saw_bytes) conn->last_read = std::chrono::steady_clock::now();

  std::vector<uint8_t> frame;
  while (conn->parser.Next(&frame)) {
    util::Result<ClientMessage> decoded = DecodeClientMessage(frame);
    if (!decoded.ok()) {
      // Framing is still synchronized (the length prefix was honored), so a
      // malformed body is a per-request error, not a connection killer.
      conn->sink->Deliver(MakeError(0, 0, decoded.status()));
      continue;
    }
    server_->Handle(*decoded, conn->sink);
  }
  return true;
}

bool SocketServer::WriteReady(Connection* conn) {
  if (util::FailpointTriggered("socket/write", conn->id)) return false;
  std::lock_guard<std::mutex> lock(conn->out_mu);
  while (!conn->outbox.empty()) {
    const std::vector<uint8_t>& front = conn->outbox.front();
    const size_t remaining = front.size() - conn->out_offset;
    ssize_t n = ::send(conn->fd, front.data() + conn->out_offset, remaining,
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      if (conn->out_offset == front.size()) {
        conn->outbox.pop_front();
        conn->out_offset = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // EPIPE/ECONNRESET/...: connection is gone
  }
  return true;
}

void SocketServer::CloseConnection(uint64_t conn_id, const char* why) {
  (void)why;
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  conn->open.store(false, std::memory_order_release);
  // Detach before closing the fd: sessions on this connection park (frames
  // stay in their retransmit buffers) and stay resumable by token.
  server_->DetachSink(conn->sink);
  ::close(conn->fd);
}

void SocketServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    const bool accepting = !shutdown_requested_.load(std::memory_order_relaxed);
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        short events = POLLIN;
        if (conn->HasOutput()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }
    }
    // Timeout doubles as the heartbeat tick; capped so reaping (and
    // injected heartbeat faults) stay responsive even on idle servers.
    int timeout = 250;
    if (options_.heartbeat_ms > 0) {
      timeout = std::clamp(options_.heartbeat_ms / 4, 10, 100);
    }
    int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;

    // Drain the wake pipe.
    if (rc > 0 && (fds[0].revents & POLLIN)) {
      uint8_t buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (rc > 0 && accepting && (fds[1].revents & (POLLIN | POLLERR))) {
      AcceptOne();
    }
    if (rc > 0) {
      for (size_t i = 0; i < fds.size(); ++i) {
        const uint64_t id = fd_conn[i];
        if (id == 0 || fds[i].revents == 0) continue;
        std::shared_ptr<Connection> conn;
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          auto it = conns_.find(id);
          if (it == conns_.end()) continue;
          conn = it->second;
        }
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          if (!ReadReady(conn.get())) {
            CloseConnection(id, "read");
            continue;
          }
        }
        if (fds[i].revents & POLLOUT) {
          if (!WriteReady(conn.get())) CloseConnection(id, "write");
        }
      }
    }
    // Opportunistic flush: Deliver calls between polls only set the wake
    // pipe; try writing now instead of waiting for the next POLLOUT round.
    {
      std::vector<std::pair<uint64_t, std::shared_ptr<Connection>>> snapshot;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, conn] : conns_) {
          if (conn->HasOutput()) snapshot.emplace_back(id, conn);
        }
      }
      for (auto& [id, conn] : snapshot) {
        if (!WriteReady(conn.get())) CloseConnection(id, "write");
      }
    }
    // Heartbeat tick: reap connections silent past the liveness deadline.
    if (options_.heartbeat_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const auto budget = std::chrono::milliseconds(
          static_cast<int64_t>(options_.heartbeat_ms) *
          std::max(1, options_.heartbeat_misses));
      std::vector<std::pair<uint64_t, std::shared_ptr<Connection>>> snapshot;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, conn] : conns_) snapshot.emplace_back(id, conn);
      }
      for (auto& [id, conn] : snapshot) {
        const bool expired = now - conn->last_read > budget;
        if (expired || util::FailpointTriggered("server/heartbeat_miss", id)) {
          reaped_.fetch_add(1, std::memory_order_relaxed);
          CloseConnection(id, "heartbeat");
        }
      }
    }
  }
}

bool SocketServer::Shutdown() {
  if (shut_down_.exchange(true)) return drain_clean_;
  // Phase 1: refuse new connections and new server work, but KEEP the poll
  // loop pumping — the drain below completes only if acks keep arriving,
  // and acks arrive through this loop.
  shutdown_requested_.store(true, std::memory_order_relaxed);
  server_->BeginShutdown();
  Wake();
  // Phase 2 (blocking, caller's thread): in-flight streams finish or are
  // force-aborted with SHUTTING_DOWN at the deadline.
  drain_clean_ = server_->Drain(options_.drain_deadline_ms);
  // Phase 3: grace window for the loop to flush remaining outboxes (final
  // frames, abort errors) to clients that are still reading.
  const auto flush_deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < flush_deadline) {
    bool dirty = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        if (conn->HasOutput()) {
          dirty = true;
          break;
        }
      }
    }
    if (!dirty) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 4: stop the loop and close everything. The listener closes here
  // (not just in the destructor) so post-shutdown dials get ECONNREFUSED
  // instead of parking in the kernel backlog forever.
  running_.store(false, std::memory_order_relaxed);
  Wake();
  if (loop_.joinable()) loop_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) ids.push_back(id);
  }
  for (uint64_t id : ids) CloseConnection(id, "shutdown");
  return drain_clean_;
}

}  // namespace deepaqp::server
