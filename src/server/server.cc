#include "server/server.h"

#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <utility>

#include "util/failpoint.h"

namespace deepaqp::server {

namespace {

/// Resume-token entropy: tokens are secrets tied to a server instance, so
/// unlike everything else in the library they must NOT be reproducible from
/// a configured seed.
uint64_t TokenSeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

util::Status SessionMissing(uint64_t session_id) {
  return util::Status::FailedPrecondition(
      "session " + std::to_string(session_id) + " failed to initialize");
}

util::Status ShuttingDown() {
  return util::Status::Unavailable(
      "SHUTTING_DOWN: server is draining; no new work accepted");
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionState: the sink is the only field touched off-strand (transports
// detach/resume from their own threads), so it gets its own lock.

std::shared_ptr<MessageSink> AqpServer::SessionState::Sink() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return sink_;
}

void AqpServer::SessionState::SetSink(std::shared_ptr<MessageSink> sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

util::Status AqpServer::SessionState::Send(const ServerMessage& message) const {
  std::shared_ptr<MessageSink> sink = Sink();
  if (sink == nullptr) {
    // Detached: the connection died and nobody resumed yet. Dropping is
    // correct — channel frames sit in the retransmit buffer until the
    // resumed client replays them, and unreliable messages (errors, pongs)
    // have no one to hear them anyway.
    return util::Status::IOError(std::string(kPeerClosedMarker) +
                                 ": session detached");
  }
  return sink->Deliver(message);
}

// ---------------------------------------------------------------------------

AqpServer::AqpServer(const Options& options, util::ThreadPool* pool)
    : options_(options),
      scheduler_(pool, options.max_queued_per_session),
      token_rng_(TokenSeed()) {}

AqpServer::~AqpServer() {
  // Drain before members go away: strand tasks hold their own SessionState
  // refs, but they also touch the registry and scheduler internals.
  scheduler_.WaitIdle();
}

void AqpServer::Handle(const ClientMessage& message,
                       const std::shared_ptr<MessageSink>& sink) {
  switch (message.kind) {
    case ClientMessageKind::kOpenSession:
      HandleOpenSession(message, sink);
      return;
    case ClientMessageKind::kQuery:
      HandleQuery(message, sink);
      return;
    case ClientMessageKind::kAck:
      HandleAck(message, sink);
      return;
    case ClientMessageKind::kCloseSession:
      HandleCloseSession(message, sink);
      return;
    case ClientMessageKind::kResumeSession:
      HandleResumeSession(message, sink);
      return;
    case ClientMessageKind::kPing: {
      // Liveness probe; answered inline (no strand hop) so a PONG proves the
      // server process is responsive even when every session is busy.
      ServerMessage pong;
      pong.kind = ServerMessageKind::kPong;
      pong.session = message.session;
      pong.nonce = message.nonce;
      sink->Deliver(pong);
      return;
    }
  }
  sink->Deliver(MakeError(
      0, 0,
      util::Status::InvalidArgument("unhandled client message kind")));
}

void AqpServer::HandleOpenSession(const ClientMessage& message,
                                  const std::shared_ptr<MessageSink>& sink) {
  // Admission control: shed before any session state is allocated. The
  // failpoint simulates the table-full path deterministically.
  if (draining_.load(std::memory_order_relaxed)) {
    sink->Deliver(MakeError(0, 0, ShuttingDown()));
    return;
  }
  if (util::FailpointTriggered("server/admission")) {
    sink->Deliver(MakeError(
        0, 0,
        util::Status::Unavailable(
            "SERVER_BUSY: admission rejected (injected fault); "
            "retry with backoff")));
    return;
  }
  auto snapshot = registry_.Get(message.model_name);
  if (!snapshot.ok()) {
    sink->Deliver(MakeError(0, 0, snapshot.status()));
    return;
  }
  vae::AqpClient::Options copts = options_.client;
  if (message.initial_samples > 0) copts.initial_samples = message.initial_samples;
  if (message.max_samples > 0) copts.max_samples = message.max_samples;
  if (message.population_rows > 0) copts.population_rows = message.population_rows;
  if (message.seed > 0) copts.seed = message.seed;

  auto state = std::make_shared<SessionState>();
  state->SetSink(sink);
  uint64_t session_id = 0;
  bool table_full = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      table_full = true;
    } else {
      session_id = next_session_id_++;
      state->resume_token = token_rng_.NextUint64() | 1;  // nonzero
      sessions_[session_id] = state;
    }
  }
  if (table_full) {
    sink->Deliver(MakeError(
        0, 0,
        util::Status::Unavailable(
            "SERVER_BUSY: session table full (" +
            std::to_string(options_.max_sessions) +
            " sessions); retry with backoff")));
    return;
  }
  // Building the session generates the initial pool — do it on the strand
  // so Handle stays non-blocking and open requests pipeline with queries.
  const std::string model_name = message.model_name;
  auto snap = std::move(*snapshot);
  util::Status posted = scheduler_.Post(
      session_id, [this, state, session_id, model_name, snap, copts] {
        state->session = std::make_unique<Session>(
            session_id, model_name, snap, copts, options_.channel);
        ServerMessage opened;
        opened.kind = ServerMessageKind::kSessionOpened;
        opened.session = session_id;
        opened.resume_token = state->resume_token;
        state->Send(opened);
      });
  if (!posted.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(session_id);
    }
    sink->Deliver(MakeError(session_id, 0, posted));
  }
}

std::shared_ptr<AqpServer::SessionState> AqpServer::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

void AqpServer::ScheduleStep(uint64_t session_id,
                             const std::shared_ptr<SessionState>& state) {
  util::Status posted = scheduler_.PostInternal(session_id, [this, state,
                                                             session_id] {
    // The state is published before the creation task is posted; if that
    // Post failed (server/enqueue fault) a concurrently enqueued task can
    // run against a never-built session.
    if (state->session == nullptr) {
      state->Send(MakeError(session_id, 0, SessionMissing(session_id)));
      return;
    }
    std::vector<ServerMessage> errors;
    std::vector<DataFrame> frames = state->session->Step(registry_, &errors);
    for (const ServerMessage& e : errors) state->Send(e);
    for (DataFrame& frame : frames) {
      ServerMessage msg;
      msg.kind = ServerMessageKind::kData;
      msg.session = state->session->id();
      msg.channel = frame.channel;
      msg.data = std::move(frame);
      state->Send(msg);
    }
    state->open_streams.store(state->session->open_streams(),
                              std::memory_order_relaxed);
    // No self-repost: after one step every stream is either window-full,
    // waiting for acks, or finished — all states only an incoming event
    // (ack, next query) can change, and each incoming event schedules the
    // next step.
  });
  if (!posted.ok()) {
    state->Send(MakeError(session_id, 0, posted));
  }
}

void AqpServer::HandleQuery(const ClientMessage& message,
                            const std::shared_ptr<MessageSink>& sink) {
  if (draining_.load(std::memory_order_relaxed)) {
    sink->Deliver(MakeError(message.session, message.channel, ShuttingDown()));
    return;
  }
  auto state = FindSession(message.session);
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  // A nonzero client-chosen channel id makes the query idempotent across
  // reconnects (Session::StartQuery dedups); server-assigned ids live in a
  // disjoint range so the two schemes can mix within one session.
  uint64_t channel = message.channel;
  if (channel == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    channel = next_channel_id_++;
  }
  const std::string sql = message.sql;
  const double max_relative_ci = message.max_relative_ci;
  const uint64_t session_id = message.session;
  util::Status posted =
      scheduler_.Post(message.session, [state, session_id, channel, sql,
                                        max_relative_ci] {
        if (state->session == nullptr) {
          state->Send(
              MakeError(session_id, channel, SessionMissing(session_id)));
          return;
        }
        util::Status status =
            state->session->StartQuery(channel, sql, max_relative_ci);
        if (!status.ok()) {
          state->Send(MakeError(state->session->id(), channel, status));
          return;
        }
        state->open_streams.store(state->session->open_streams(),
                                  std::memory_order_relaxed);
        ServerMessage started;
        started.kind = ServerMessageKind::kQueryStarted;
        started.session = state->session->id();
        started.channel = channel;
        state->Send(started);
      });
  if (!posted.ok()) {
    sink->Deliver(MakeError(message.session, channel, posted));
    return;
  }
  ScheduleStep(message.session, state);
}

void AqpServer::HandleAck(const ClientMessage& message,
                          const std::shared_ptr<MessageSink>& sink) {
  auto state = FindSession(message.session);
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, message.ack.channel,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  const AckFrame ack = message.ack;
  const uint64_t session_id = message.session;
  util::Status posted =
      scheduler_.Post(message.session, [state, session_id, ack] {
        if (state->session == nullptr) {
          state->Send(
              MakeError(session_id, ack.channel, SessionMissing(session_id)));
          return;
        }
        state->session->HandleAck(ack);
      });
  if (!posted.ok()) {
    sink->Deliver(MakeError(message.session, ack.channel, posted));
    return;
  }
  ScheduleStep(message.session, state);
}

void AqpServer::HandleCloseSession(const ClientMessage& message,
                                   const std::shared_ptr<MessageSink>& sink) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(message.session);
    if (it != sessions_.end()) {
      state = it->second;
      sessions_.erase(it);
    }
  }
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  ServerMessage closed;
  closed.kind = ServerMessageKind::kSessionClosed;
  closed.session = message.session;
  // Deliver from the strand so the close trails any in-flight responses.
  // The explicit close may arrive over a fresh connection while the session
  // is detached; answer on the closer's sink so the confirmation is heard.
  const uint64_t session_id = message.session;
  util::Status posted =
      scheduler_.PostInternal(session_id, [state, sink, closed] {
        state->SetSink(sink);
        state->open_streams.store(0, std::memory_order_relaxed);
        state->Send(closed);
      });
  if (!posted.ok()) sink->Deliver(closed);
}

void AqpServer::HandleResumeSession(const ClientMessage& message,
                                    const std::shared_ptr<MessageSink>& sink) {
  // Resumption is allowed while draining: the whole point of the drain is
  // to let in-flight streams finish, and a reconnected client is how a
  // detached stream finishes.
  auto state = FindSession(message.session);
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  if (message.resume_token != state->resume_token) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::FailedPrecondition(
            "resume rejected: bad token for session " +
            std::to_string(message.session))));
    return;
  }
  const uint64_t session_id = message.session;
  // Attach + replay on the strand so the swap serializes against in-flight
  // deliveries to the old sink. Exempt from the admission bound: a resume
  // is recovery, not new load.
  util::Status posted =
      scheduler_.PostInternal(session_id, [state, sink, session_id] {
        state->SetSink(sink);
        ServerMessage resumed;
        resumed.kind = ServerMessageKind::kSessionResumed;
        resumed.session = session_id;
        state->Send(resumed);
        if (state->session == nullptr) {
          state->Send(MakeError(session_id, 0, SessionMissing(session_id)));
          return;
        }
        state->session->ReplayUnacked();
      });
  if (!posted.ok()) {
    sink->Deliver(MakeError(session_id, 0, posted));
    return;
  }
  // The replay marked frames resend-due; a step transmits them.
  ScheduleStep(session_id, state);
}

void AqpServer::DetachSink(const std::shared_ptr<MessageSink>& sink) {
  std::vector<std::shared_ptr<SessionState>> affected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : sessions_) {
      if (state->Sink() == sink) affected.push_back(state);
    }
  }
  // Swap immediately (off-strand is fine: SetSink has its own lock, and a
  // strand task mid-delivery holds its own shared_ptr copy). Frames the old
  // sink loses are replayed on resume.
  for (auto& state : affected) state->SetSink(nullptr);
}

void AqpServer::BeginShutdown() {
  draining_.store(true, std::memory_order_relaxed);
}

size_t AqpServer::ActiveStreams() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [id, state] : sessions_) {
    total += state->open_streams.load(std::memory_order_relaxed);
  }
  return total;
}

bool AqpServer::Drain(int deadline_ms) {
  BeginShutdown();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ActiveStreams() == 0 && scheduler_.pending() == 0) {
      scheduler_.WaitIdle();
      // Re-check: a task that ran between the probes may have opened
      // nothing new (queries are refused while draining), but an accepted
      // pre-drain query could still have materialized a stream.
      if (ActiveStreams() == 0 && scheduler_.pending() == 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Deadline exceeded: force-abort the stragglers, each with an explicit
  // SHUTTING_DOWN stream error — never a silent truncation.
  std::vector<std::pair<uint64_t, std::shared_ptr<SessionState>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : sessions_) snapshot.emplace_back(id, state);
  }
  for (auto& [id, state] : snapshot) {
    scheduler_.PostInternal(id, [state] {
      if (state->session == nullptr) return;
      std::vector<ServerMessage> errors;
      state->session->AbortOpenStreams(
          util::Status::Unavailable(
              "SHUTTING_DOWN: drain deadline exceeded, stream aborted"),
          &errors);
      for (const ServerMessage& e : errors) state->Send(e);
      state->open_streams.store(0, std::memory_order_relaxed);
    });
  }
  scheduler_.WaitIdle();
  return false;
}

void AqpServer::WaitIdle() { scheduler_.WaitIdle(); }

size_t AqpServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

util::Result<vae::AqpClient::CacheStats> AqpServer::SessionCacheStats(
    uint64_t session_id) {
  auto state = FindSession(session_id);
  if (state == nullptr) {
    return util::Status::NotFound("unknown session " +
                                  std::to_string(session_id));
  }
  std::promise<util::Result<vae::AqpClient::CacheStats>> promise;
  auto future = promise.get_future();
  DEEPAQP_RETURN_IF_ERROR(
      scheduler_.PostInternal(session_id, [&state, &promise, session_id] {
        if (state->session == nullptr) {
          promise.set_value(SessionMissing(session_id));
          return;
        }
        promise.set_value(state->session->client().cache_stats());
      }));
  return future.get();
}

util::Result<uint64_t> AqpServer::SessionModelSwaps(uint64_t session_id) {
  auto state = FindSession(session_id);
  if (state == nullptr) {
    return util::Status::NotFound("unknown session " +
                                  std::to_string(session_id));
  }
  std::promise<util::Result<uint64_t>> promise;
  auto future = promise.get_future();
  DEEPAQP_RETURN_IF_ERROR(
      scheduler_.PostInternal(session_id, [&state, &promise, session_id] {
        if (state->session == nullptr) {
          promise.set_value(SessionMissing(session_id));
          return;
        }
        promise.set_value(state->session->model_swaps());
      }));
  return future.get();
}

}  // namespace deepaqp::server
