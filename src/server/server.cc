#include "server/server.h"

#include <future>
#include <utility>

namespace deepaqp::server {

AqpServer::AqpServer(const Options& options, util::ThreadPool* pool)
    : options_(options), scheduler_(pool) {}

AqpServer::~AqpServer() {
  // Drain before members go away: strand tasks hold their own SessionState
  // refs, but they also touch the registry and scheduler internals.
  scheduler_.WaitIdle();
}

void AqpServer::Handle(const ClientMessage& message,
                       const std::shared_ptr<MessageSink>& sink) {
  switch (message.kind) {
    case ClientMessageKind::kOpenSession:
      HandleOpenSession(message, sink);
      return;
    case ClientMessageKind::kQuery:
      HandleQuery(message, sink);
      return;
    case ClientMessageKind::kAck:
      HandleAck(message, sink);
      return;
    case ClientMessageKind::kCloseSession:
      HandleCloseSession(message, sink);
      return;
  }
  sink->Deliver(MakeError(
      0, 0,
      util::Status::InvalidArgument("unhandled client message kind")));
}

void AqpServer::HandleOpenSession(const ClientMessage& message,
                                  const std::shared_ptr<MessageSink>& sink) {
  auto snapshot = registry_.Get(message.model_name);
  if (!snapshot.ok()) {
    sink->Deliver(MakeError(0, 0, snapshot.status()));
    return;
  }
  vae::AqpClient::Options copts = options_.client;
  if (message.initial_samples > 0) copts.initial_samples = message.initial_samples;
  if (message.max_samples > 0) copts.max_samples = message.max_samples;
  if (message.population_rows > 0) copts.population_rows = message.population_rows;
  if (message.seed > 0) copts.seed = message.seed;

  auto state = std::make_shared<SessionState>();
  uint64_t session_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session_id = next_session_id_++;
  }
  // Building the session generates the initial pool — do it on the strand
  // so Handle stays non-blocking and open requests pipeline with queries.
  state->sink = sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[session_id] = state;
  }
  const std::string model_name = message.model_name;
  auto snap = std::move(*snapshot);
  util::Status posted = scheduler_.Post(
      session_id, [this, state, session_id, model_name, snap, copts] {
        state->session = std::make_unique<Session>(
            session_id, model_name, snap, copts, options_.channel);
        ServerMessage opened;
        opened.kind = ServerMessageKind::kSessionOpened;
        opened.session = session_id;
        state->sink->Deliver(opened);
      });
  if (!posted.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(session_id);
    }
    sink->Deliver(MakeError(session_id, 0, posted));
  }
}

std::shared_ptr<AqpServer::SessionState> AqpServer::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

namespace {

util::Status SessionMissing(uint64_t session_id) {
  return util::Status::FailedPrecondition(
      "session " + std::to_string(session_id) + " failed to initialize");
}

}  // namespace

void AqpServer::ScheduleStep(uint64_t session_id,
                             const std::shared_ptr<SessionState>& state) {
  util::Status posted = scheduler_.Post(session_id, [this, state,
                                                     session_id] {
    // The state is published before the creation task is posted; if that
    // Post failed (server/enqueue fault) a concurrently enqueued task can
    // run against a never-built session.
    if (state->session == nullptr) {
      state->sink->Deliver(MakeError(session_id, 0, SessionMissing(session_id)));
      return;
    }
    std::vector<ServerMessage> errors;
    std::vector<DataFrame> frames = state->session->Step(registry_, &errors);
    for (const ServerMessage& e : errors) state->sink->Deliver(e);
    for (DataFrame& frame : frames) {
      ServerMessage msg;
      msg.kind = ServerMessageKind::kData;
      msg.session = state->session->id();
      msg.channel = frame.channel;
      msg.data = std::move(frame);
      state->sink->Deliver(msg);
    }
    // No self-repost: after one step every stream is either window-full,
    // waiting for acks, or finished — all states only an incoming event
    // (ack, next query) can change, and each incoming event schedules the
    // next step.
  });
  if (!posted.ok()) {
    state->sink->Deliver(
        MakeError(session_id, 0, posted));
  }
}

void AqpServer::HandleQuery(const ClientMessage& message,
                            const std::shared_ptr<MessageSink>& sink) {
  auto state = FindSession(message.session);
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  uint64_t channel = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channel = next_channel_id_++;
  }
  const std::string sql = message.sql;
  const double max_relative_ci = message.max_relative_ci;
  const uint64_t session_id = message.session;
  util::Status posted =
      scheduler_.Post(message.session, [state, session_id, channel, sql,
                                        max_relative_ci] {
        if (state->session == nullptr) {
          state->sink->Deliver(
              MakeError(session_id, channel, SessionMissing(session_id)));
          return;
        }
        util::Status status =
            state->session->StartQuery(channel, sql, max_relative_ci);
        if (!status.ok()) {
          state->sink->Deliver(
              MakeError(state->session->id(), channel, status));
          return;
        }
        ServerMessage started;
        started.kind = ServerMessageKind::kQueryStarted;
        started.session = state->session->id();
        started.channel = channel;
        state->sink->Deliver(started);
      });
  if (!posted.ok()) {
    sink->Deliver(MakeError(message.session, channel, posted));
    return;
  }
  ScheduleStep(message.session, state);
}

void AqpServer::HandleAck(const ClientMessage& message,
                          const std::shared_ptr<MessageSink>& sink) {
  auto state = FindSession(message.session);
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, message.ack.channel,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  const AckFrame ack = message.ack;
  const uint64_t session_id = message.session;
  util::Status posted =
      scheduler_.Post(message.session, [state, session_id, ack] {
        if (state->session == nullptr) {
          state->sink->Deliver(
              MakeError(session_id, ack.channel, SessionMissing(session_id)));
          return;
        }
        state->session->HandleAck(ack);
      });
  if (!posted.ok()) {
    sink->Deliver(MakeError(message.session, ack.channel, posted));
    return;
  }
  ScheduleStep(message.session, state);
}

void AqpServer::HandleCloseSession(const ClientMessage& message,
                                   const std::shared_ptr<MessageSink>& sink) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(message.session);
    if (it != sessions_.end()) {
      state = it->second;
      sessions_.erase(it);
    }
  }
  if (state == nullptr) {
    sink->Deliver(MakeError(
        message.session, 0,
        util::Status::NotFound("unknown session " +
                               std::to_string(message.session))));
    return;
  }
  ServerMessage closed;
  closed.kind = ServerMessageKind::kSessionClosed;
  closed.session = message.session;
  // Deliver from the strand so the close trails any in-flight responses.
  const uint64_t session_id = message.session;
  util::Status posted = scheduler_.Post(
      session_id, [state, closed] { state->sink->Deliver(closed); });
  if (!posted.ok()) sink->Deliver(closed);
}

void AqpServer::WaitIdle() { scheduler_.WaitIdle(); }

size_t AqpServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

util::Result<vae::AqpClient::CacheStats> AqpServer::SessionCacheStats(
    uint64_t session_id) {
  auto state = FindSession(session_id);
  if (state == nullptr) {
    return util::Status::NotFound("unknown session " +
                                  std::to_string(session_id));
  }
  std::promise<util::Result<vae::AqpClient::CacheStats>> promise;
  auto future = promise.get_future();
  DEEPAQP_RETURN_IF_ERROR(
      scheduler_.Post(session_id, [&state, &promise, session_id] {
        if (state->session == nullptr) {
          promise.set_value(SessionMissing(session_id));
          return;
        }
        promise.set_value(state->session->client().cache_stats());
      }));
  return future.get();
}

util::Result<uint64_t> AqpServer::SessionModelSwaps(uint64_t session_id) {
  auto state = FindSession(session_id);
  if (state == nullptr) {
    return util::Status::NotFound("unknown session " +
                                  std::to_string(session_id));
  }
  std::promise<util::Result<uint64_t>> promise;
  auto future = promise.get_future();
  DEEPAQP_RETURN_IF_ERROR(
      scheduler_.Post(session_id, [&state, &promise, session_id] {
        if (state->session == nullptr) {
          promise.set_value(SessionMissing(session_id));
          return;
        }
        promise.set_value(state->session->model_swaps());
      }));
  return future.get();
}

}  // namespace deepaqp::server
