#ifndef DEEPAQP_SERVER_SCHEDULER_H_
#define DEEPAQP_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "util/status.h"
#include "util/thread_pool.h"

namespace deepaqp::server {

/// Multiplexes per-session work over the shared util::ThreadPool. Each key
/// (session id) is a strand: its tasks run one at a time, in submission
/// order, but different keys run concurrently on whatever pool threads are
/// free. Sessions therefore need no internal locking — every touch of a
/// Session object is posted to its strand.
///
/// A strand never occupies a pool thread while idle: the runner task drains
/// the strand's queue and exits, and the next Post re-submits. Tasks must
/// not block on other strands' work (the underlying pool requirement).
class RequestScheduler {
 public:
  /// Uses `pool` for execution; with nullptr the process-global pool is
  /// used, so `--threads` sizes the server like every other parallel path.
  /// `max_queue_per_strand` bounds how many tasks one strand may hold
  /// queued (admission control for a session that floods requests faster
  /// than it executes them); 0 = unbounded.
  explicit RequestScheduler(util::ThreadPool* pool = nullptr,
                            size_t max_queue_per_strand = 0);

  /// Waits for all in-flight and queued tasks, then returns. Outstanding
  /// work is completed, never dropped.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Enqueues `task` on `key`'s strand. Instrumented with the
  /// `server/enqueue` fail point (arg = key): an injected fault rejects
  /// this one task with a Status and leaves the strand intact. When the
  /// strand already holds max_queue_per_strand queued tasks the post is
  /// shed with Unavailable (SERVER_BUSY) instead of queueing unboundedly.
  util::Status Post(uint64_t key, std::function<void()> task);

  /// Like Post but exempt from the per-strand queue bound: internal
  /// progress work (session steps, drain probes) must never be shed by
  /// admission control, or a backlogged session could not drain itself.
  util::Status PostInternal(uint64_t key, std::function<void()> task);

  /// Blocks until no task is queued or running anywhere.
  void WaitIdle();

  /// Tasks currently queued or running (observability).
  size_t pending() const;

 private:
  struct Strand {
    std::deque<std::function<void()>> queue;
    bool running = false;
  };

  void RunStrand(uint64_t key);
  util::Status PostImpl(uint64_t key, std::function<void()> task,
                        bool bounded);

  util::ThreadPool* pool_;
  size_t max_queue_per_strand_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::map<uint64_t, Strand> strands_;
  size_t pending_ = 0;
  /// Strand runner tasks currently on the pool. WaitIdle waits for these
  /// too: a runner that just drained its queue still touches this object on
  /// its way out, so "no pending tasks" alone would let the destructor
  /// free state under a live runner.
  size_t runners_ = 0;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SCHEDULER_H_
