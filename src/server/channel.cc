#include "server/channel.h"

#include <algorithm>

#include "util/failpoint.h"

namespace deepaqp::server {

ChannelProducer::ChannelProducer(uint64_t channel_id, const Options& options)
    : channel_(channel_id), options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.retransmit_ticks == 0) options_.retransmit_ticks = 1;
}

bool ChannelProducer::CanPush() const {
  return error_.ok() && !final_pushed_ &&
         in_flight_.size() < options_.window &&
         (options_.max_buffered_bytes == 0 ||
          stats_.buffered_bytes < options_.max_buffered_bytes);
}

util::Status ChannelProducer::Push(std::vector<uint8_t> payload, bool final) {
  if (!error_.ok()) return error_;
  if (final_pushed_) {
    return util::Status::FailedPrecondition(
        "channel " + std::to_string(channel_) +
        ": push after final frame");
  }
  if (in_flight_.size() >= options_.window) {
    return util::Status::FailedPrecondition(
        "channel " + std::to_string(channel_) + ": window full (" +
        std::to_string(options_.window) + " unacked frames)");
  }
  if (options_.max_buffered_bytes != 0 &&
      stats_.buffered_bytes >= options_.max_buffered_bytes) {
    return util::Status::FailedPrecondition(
        "channel " + std::to_string(channel_) + ": retransmit buffer full (" +
        std::to_string(stats_.buffered_bytes) + " unacked bytes)");
  }
  if (util::FailpointTriggered("server/channel_send", next_seq_)) {
    error_ = util::FailpointError("server/channel_send");
    return error_;
  }
  Pending& p = in_flight_[next_seq_];
  stats_.buffered_bytes += payload.size();
  stats_.peak_buffered_bytes =
      std::max(stats_.peak_buffered_bytes, stats_.buffered_bytes);
  p.payload = std::move(payload);
  p.final = final;
  ++next_seq_;
  final_pushed_ = final;
  ++stats_.pushed;
  return util::Status::OK();
}

std::vector<DataFrame> ChannelProducer::PollSend() {
  std::vector<DataFrame> out;
  if (!error_.ok()) return out;
  for (auto& [seq, p] : in_flight_) {
    if (p.sent && !p.resend_due) continue;
    DataFrame frame;
    frame.channel = channel_;
    frame.seq = seq;
    frame.final = p.final;
    frame.payload = p.payload;
    out.push_back(std::move(frame));
    p.sent = true;
    p.resend_due = false;
    p.last_sent_tick = now_;
    ++stats_.transmissions;
  }
  return out;
}

void ChannelProducer::OnAck(const AckFrame& ack) {
  if (!error_.ok()) return;
  ++stats_.acks;
  bool progressed = false;

  if (ack.cumulative > cumulative_acked_) {
    cumulative_acked_ = ack.cumulative;
    progressed = true;
  }
  // Drop everything below the (monotonic) cumulative mark.
  while (!in_flight_.empty() &&
         in_flight_.begin()->first < cumulative_acked_) {
    stats_.buffered_bytes -= in_flight_.begin()->second.payload.size();
    in_flight_.erase(in_flight_.begin());
  }
  // Drop selectively acknowledged frames and infer NACKs: any sent frame
  // below the highest selective ack that the consumer did not report is
  // missing on its side — retransmit without waiting for the timeout.
  uint64_t highest_sack = 0;
  for (uint64_t seq : ack.selective) {
    if (seq < ack.cumulative) continue;  // stale SACK entry
    highest_sack = std::max(highest_sack, seq);
    auto it = in_flight_.find(seq);
    if (it != in_flight_.end()) {
      stats_.buffered_bytes -= it->second.payload.size();
      in_flight_.erase(it);
      progressed = true;
    }
  }
  if (highest_sack > 0) {
    for (auto& [seq, p] : in_flight_) {
      if (seq >= highest_sack) break;
      if (p.sent && !p.resend_due) {
        // Fast retransmits spend the same per-frame budget as timeouts:
        // Tick() skips resend_due frames, so without this check a
        // persistent SACK gap could retransmit one frame unboundedly.
        if (p.retransmits >= options_.max_retransmits_per_frame) {
          error_ = util::Status::Internal(
              "channel " + std::to_string(channel_) + ": seq " +
              std::to_string(seq) + " unacknowledged after " +
              std::to_string(p.retransmits) +
              " retransmits (peer dead or schedule hostile)");
          return;
        }
        p.resend_due = true;
        ++p.retransmits;
        ++stats_.nack_retransmits;
      }
    }
  }
  if (!progressed) ++stats_.stale_acks;
}

void ChannelProducer::Tick() {
  if (!error_.ok()) return;
  ++now_;
  for (auto& [seq, p] : in_flight_) {
    if (!p.sent || p.resend_due) continue;
    if (now_ - p.last_sent_tick < options_.retransmit_ticks) continue;
    if (p.retransmits >= options_.max_retransmits_per_frame) {
      error_ = util::Status::Internal(
          "channel " + std::to_string(channel_) + ": seq " +
          std::to_string(seq) + " unacknowledged after " +
          std::to_string(p.retransmits) +
          " retransmits (peer dead or schedule hostile)");
      return;
    }
    p.resend_due = true;
    ++p.retransmits;
    ++stats_.timeout_retransmits;
  }
}

void ChannelProducer::ReplayUnacked() {
  if (!error_.ok()) return;
  for (auto& [seq, p] : in_flight_) {
    if (!p.sent || p.resend_due) continue;
    p.resend_due = true;
    ++stats_.resume_replays;
  }
}

void ChannelConsumer::OnData(const DataFrame& frame) {
  ++stats_.frames;
  if (frame.seq < next_expected_ || parked_.count(frame.seq) != 0) {
    ++stats_.duplicates;
    return;
  }
  Parked& p = parked_[frame.seq];
  p.payload = frame.payload;
  p.final = frame.final;
  if (frame.seq != next_expected_) ++stats_.buffered;
  // Release the in-order run that just became contiguous.
  auto it = parked_.begin();
  while (it != parked_.end() && it->first == next_expected_) {
    ready_.push_back(std::move(it->second.payload));
    ++stats_.delivered;
    if (it->second.final) finished_ = true;
    it = parked_.erase(it);
    ++next_expected_;
  }
}

std::vector<std::vector<uint8_t>> ChannelConsumer::TakeDelivered() {
  std::vector<std::vector<uint8_t>> out;
  out.swap(ready_);
  return out;
}

AckFrame ChannelConsumer::MakeAck(bool selective) const {
  AckFrame ack;
  ack.channel = channel_;
  ack.cumulative = next_expected_;
  if (selective) {
    ack.selective.reserve(parked_.size());
    for (const auto& [seq, p] : parked_) ack.selective.push_back(seq);
  }
  return ack;
}

}  // namespace deepaqp::server
