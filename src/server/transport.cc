#include "server/transport.h"

namespace deepaqp::server {

util::Status PipeTransport::Deliver(const ServerMessage& message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(message);
  }
  cv_.notify_one();
  return util::Status::OK();
}

ServerMessage PipeTransport::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  ServerMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

bool PipeTransport::TryPop(ServerMessage* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

size_t PipeTransport::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

util::Status StdioTransport::Deliver(const ServerMessage& message) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Status status = WriteFramed(out_, EncodeServerMessage(message));
  if (!status.ok()) last_error_ = status;
  return status;
}

util::Result<std::optional<ClientMessage>> StdioTransport::ReadRequest(
    std::FILE* in) {
  DEEPAQP_ASSIGN_OR_RETURN(std::optional<std::vector<uint8_t>> body,
                           ReadFramed(in));
  if (!body.has_value()) return std::optional<ClientMessage>();
  DEEPAQP_ASSIGN_OR_RETURN(ClientMessage msg, DecodeClientMessage(*body));
  return std::optional<ClientMessage>(std::move(msg));
}

util::Status StdioTransport::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace deepaqp::server
