#include "server/registry.h"

#include "util/failpoint.h"

namespace deepaqp::server {

util::Result<uint64_t> ModelRegistry::Register(
    const std::string& name, const std::vector<uint8_t>& bytes) {
  if (util::FailpointTriggered("server/registry_load")) {
    return util::FailpointError("server/registry_load");
  }
  // Deserialize outside the lock: loads verify checksums over the whole
  // container and must not stall concurrent lookups.
  DEEPAQP_ASSIGN_OR_RETURN(auto model, vae::VaeAqpModel::Deserialize(bytes));
  std::lock_guard<std::mutex> lock(mu_);
  return InstallLocked(name, std::move(model), bytes.size());
}

uint64_t ModelRegistry::Install(
    const std::string& name, std::shared_ptr<const vae::VaeAqpModel> model) {
  std::lock_guard<std::mutex> lock(mu_);
  return InstallLocked(name, std::move(model), 0);
}

uint64_t ModelRegistry::InstallLocked(
    const std::string& name, std::shared_ptr<const vae::VaeAqpModel> model,
    size_t snapshot_bytes) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->name = name;
  auto it = models_.find(name);
  snap->version = it == models_.end() ? 1 : it->second->version + 1;
  snap->quant_mode =
      model != nullptr ? model->prepared_quant_mode() : nn::QuantMode::kOff;
  snap->model = std::move(model);
  snap->snapshot_bytes = snapshot_bytes;
  const uint64_t version = snap->version;
  models_[name] = std::move(snap);
  return version;
}

util::Result<std::shared_ptr<const ModelSnapshot>> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return util::Status::NotFound("no model registered as '" + name + "'");
  }
  return it->second;
}

uint64_t ModelRegistry::VersionOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? 0 : it->second->version;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, snap] : models_) names.push_back(name);
  return names;
}

}  // namespace deepaqp::server
