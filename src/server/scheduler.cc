#include "server/scheduler.h"

#include <utility>

#include "util/failpoint.h"

namespace deepaqp::server {

RequestScheduler::RequestScheduler(util::ThreadPool* pool,
                                   size_t max_queue_per_strand)
    : pool_(pool != nullptr ? pool : &util::GlobalThreadPool()),
      max_queue_per_strand_(max_queue_per_strand) {}

RequestScheduler::~RequestScheduler() { WaitIdle(); }

util::Status RequestScheduler::Post(uint64_t key,
                                    std::function<void()> task) {
  return PostImpl(key, std::move(task), /*bounded=*/true);
}

util::Status RequestScheduler::PostInternal(uint64_t key,
                                            std::function<void()> task) {
  return PostImpl(key, std::move(task), /*bounded=*/false);
}

util::Status RequestScheduler::PostImpl(uint64_t key,
                                        std::function<void()> task,
                                        bool bounded) {
  if (util::FailpointTriggered("server/enqueue", key)) {
    return util::FailpointError("server/enqueue");
  }
  bool start_runner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Strand& strand = strands_[key];
    if (bounded && max_queue_per_strand_ != 0 &&
        strand.queue.size() >= max_queue_per_strand_) {
      return util::Status::Unavailable(
          "SERVER_BUSY: session " + std::to_string(key) + " has " +
          std::to_string(strand.queue.size()) +
          " queued requests (bound " +
          std::to_string(max_queue_per_strand_) + "); retry with backoff");
    }
    strand.queue.push_back(std::move(task));
    ++pending_;
    if (!strand.running) {
      strand.running = true;
      ++runners_;
      start_runner = true;
    }
  }
  if (start_runner) {
    pool_->Submit([this, key] { RunStrand(key); });
  }
  return util::Status::OK();
}

void RequestScheduler::RunStrand(uint64_t key) {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Strand& strand = strands_[key];
      if (strand.queue.empty()) {
        strand.running = false;
        if (--runners_ == 0 && pending_ == 0) idle_cv_.notify_all();
        return;
      }
      task = std::move(strand.queue.front());
      strand.queue.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
  }
}

void RequestScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && runners_ == 0; });
}

size_t RequestScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace deepaqp::server
