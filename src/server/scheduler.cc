#include "server/scheduler.h"

#include <utility>

#include "util/failpoint.h"

namespace deepaqp::server {

RequestScheduler::RequestScheduler(util::ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &util::GlobalThreadPool()) {}

RequestScheduler::~RequestScheduler() { WaitIdle(); }

util::Status RequestScheduler::Post(uint64_t key,
                                    std::function<void()> task) {
  if (util::FailpointTriggered("server/enqueue", key)) {
    return util::FailpointError("server/enqueue");
  }
  bool start_runner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Strand& strand = strands_[key];
    strand.queue.push_back(std::move(task));
    ++pending_;
    if (!strand.running) {
      strand.running = true;
      ++runners_;
      start_runner = true;
    }
  }
  if (start_runner) {
    pool_->Submit([this, key] { RunStrand(key); });
  }
  return util::Status::OK();
}

void RequestScheduler::RunStrand(uint64_t key) {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Strand& strand = strands_[key];
      if (strand.queue.empty()) {
        strand.running = false;
        if (--runners_ == 0 && pending_ == 0) idle_cv_.notify_all();
        return;
      }
      task = std::move(strand.queue.front());
      strand.queue.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
  }
}

void RequestScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && runners_ == 0; });
}

size_t RequestScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace deepaqp::server
