#ifndef DEEPAQP_SERVER_SOCKET_TRANSPORT_H_
#define DEEPAQP_SERVER_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/status.h"

namespace deepaqp::server {

/// Incremental length-prefixed frame parser for a nonblocking byte stream.
/// Feed whatever recv() produced; complete frames pop out in order. The
/// parser enforces kMaxFrameBytes before buffering a body, so a corrupt or
/// hostile length prefix costs nothing.
class FrameParser {
 public:
  /// Appends `n` raw bytes. Returns InvalidArgument once the stream is
  /// poisoned (oversized frame) — the connection must be dropped, because
  /// framing can never resynchronize.
  util::Status Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame body, if any.
  bool Next(std::vector<uint8_t>* frame);

  /// Bytes currently buffered (partial frame).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already popped as frames
  bool poisoned_ = false;
};

/// TCP socket server: accepts connections on a listening socket and speaks
/// the length-prefixed wire protocol (u32 length + encoded message), with
/// connection supervision layered on top of an AqpServer:
///
///  - One poll() loop thread owns every socket. Reads and writes are
///    nonblocking; partially written responses are buffered per connection
///    and drained on POLLOUT. Scheduler threads never touch a socket: a
///    Deliver from a strand encodes the message, appends it to the
///    connection's outbox under its lock, and wakes the loop via a
///    self-pipe.
///  - Heartbeats: any inbound byte refreshes a connection's liveness
///    deadline; kPing additionally earns a kPong. A connection silent for
///    `heartbeat_ms * heartbeat_misses` is reaped — the SOCKET dies but the
///    sessions it carried are detached, not destroyed, and remain resumable
///    by token until the server exits.
///  - Blast radius: every socket-level failure (read error, write error,
///    poisoned framing, injected socket/read|write|accept faults,
///    server/heartbeat_miss) closes exactly one connection. The daemon and
///    all other connections keep serving.
///  - Shutdown: Shutdown() stops accepting, asks the AqpServer to drain
///    (in-flight streams finish or die with SHUTTING_DOWN within the
///    deadline), flushes what can be flushed, then closes everything. The
///    poll loop keeps pumping acks during the drain — a blocking drain on
///    the loop thread would deadlock the very streams it waits for.
///
/// Fail points: socket/accept (accepted connection is immediately closed),
/// socket/read (connection's read path fails), socket/write (connection's
/// write path fails), server/heartbeat_miss (connection's liveness deadline
/// is treated as expired at the next tick).
class SocketServer {
 public:
  struct Options {
    /// Port to bind (loopback or all interfaces per `bind_address`).
    /// 0 = ephemeral; the chosen port is readable via port().
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Liveness: a connection with no inbound traffic for heartbeat_ms is
    /// expected to have pinged; after `heartbeat_misses` silent intervals
    /// it is reaped. 0 disables reaping (trusted in-process tests).
    int heartbeat_ms = 5000;
    int heartbeat_misses = 3;
    /// Graceful-shutdown budget: how long Shutdown waits for in-flight
    /// streams before force-aborting them.
    int drain_deadline_ms = 5000;
    /// Hard cap on simultaneously open connections; excess accepts are
    /// closed immediately (the client sees EOF and backs off). 0 =
    /// unbounded.
    size_t max_connections = 1024;
  };

  /// Binds + listens; does not serve yet (Start launches the loop thread).
  /// `server` must outlive this object.
  SocketServer(AqpServer* server, const Options& options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the listening socket. Returns the OS error if the port is taken.
  util::Status Listen();

  /// Launches the poll-loop thread. Requires a successful Listen.
  util::Status Start();

  /// Graceful shutdown: stop accepting, drain the AqpServer (bounded by
  /// drain_deadline_ms), flush outboxes, close every socket, join the loop.
  /// Idempotent. Returns true when the drain finished without aborting
  /// streams.
  bool Shutdown();

  /// The bound port (after Listen; resolves port=0 to the ephemeral pick).
  uint16_t port() const { return bound_port_; }

  /// Currently open client connections (observability/tests).
  size_t num_connections() const;

  /// Total connections reaped by the liveness deadline (tests).
  uint64_t reaped_connections() const {
    return reaped_.load(std::memory_order_relaxed);
  }

 private:
  class Connection;
  /// MessageSink bound to one connection; outlives it (strand tasks hold
  /// refs), delivering into a dead connection returns peer-closed.
  class ConnectionSink;

  void Loop();
  void AcceptOne();
  /// Reads all available bytes, parses frames, dispatches to the server.
  /// Returns false when the connection must close (EOF, error, fault).
  bool ReadReady(Connection* conn);
  /// Flushes as much of the outbox as the socket accepts just now.
  bool WriteReady(Connection* conn);
  void CloseConnection(uint64_t conn_id, const char* why);
  void Wake();

  AqpServer* server_;
  Options options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<uint64_t> reaped_{0};
  bool drain_clean_ = true;

  mutable std::mutex conns_mu_;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
};

}  // namespace deepaqp::server

#endif  // DEEPAQP_SERVER_SOCKET_TRANSPORT_H_
