#include "ensemble/partitioning.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/logging.h"

namespace deepaqp::ensemble {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<AtomicGroup> GroupByAttribute(const relation::Table& table,
                                          size_t attr, double min_fraction) {
  DEEPAQP_CHECK(table.schema().IsCategorical(attr));
  const int32_t card = table.Cardinality(attr);
  std::vector<AtomicGroup> by_code(card);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    by_code[table.CatCode(r, attr)].rows.push_back(r);
  }
  const size_t min_rows = static_cast<size_t>(
      min_fraction * static_cast<double>(table.num_rows()));
  std::vector<AtomicGroup> out;
  AtomicGroup misc;
  misc.name = "misc";
  for (int32_t code = 0; code < card; ++code) {
    auto& g = by_code[code];
    if (g.rows.empty()) continue;
    if (g.rows.size() >= min_rows) {
      g.name = table.dict(attr).size() > code
                   ? table.dict(attr).LabelOf(code)
                   : "g" + std::to_string(code);
      out.push_back(std::move(g));
    } else {
      misc.rows.insert(misc.rows.end(), g.rows.begin(), g.rows.end());
    }
  }
  if (!misc.rows.empty()) out.push_back(std::move(misc));
  return out;
}

std::vector<int> Hierarchy::LeavesUnder(int n) const {
  std::vector<int> leaves;
  std::vector<int> stack = {n};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    const HierarchyNode& node = nodes[cur];
    if (node.children.empty()) {
      leaves.push_back(node.group);
    } else {
      // Push in reverse to visit children left-to-right.
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        stack.push_back(*it);
      }
    }
  }
  return leaves;
}

namespace {

int BuildBalanced(Hierarchy& h, int lo, int hi) {
  const int id = static_cast<int>(h.nodes.size());
  h.nodes.emplace_back();
  if (hi - lo == 1) {
    h.nodes[id].group = lo;
    h.nodes[id].name = "leaf" + std::to_string(lo);
    return id;
  }
  const int mid = lo + (hi - lo) / 2;
  h.nodes[id].name =
      "span" + std::to_string(lo) + "_" + std::to_string(hi - 1);
  const int left = BuildBalanced(h, lo, mid);
  const int right = BuildBalanced(h, mid, hi);
  h.nodes[id].children = {left, right};
  return id;
}

}  // namespace

Hierarchy MakeBalancedHierarchy(int num_groups) {
  DEEPAQP_CHECK_GT(num_groups, 0);
  Hierarchy h;
  h.root = BuildBalanced(h, 0, num_groups);
  return h;
}

namespace {

/// Shared state for the tree-cut DP of Eq. 10/11.
class HierarchyDpSolver {
 public:
  HierarchyDpSolver(const Hierarchy& hierarchy, const NodeScoreFn& score,
                    int max_k)
      : hierarchy_(hierarchy), score_(score), max_k_(max_k) {}

  double Err(int node, int k) {
    if (k <= 0) return kInf;
    k = std::min(k, max_k_);
    const auto key = std::make_pair(node, k);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const double unsplit = NodeScore(node);
    double best = unsplit;
    const auto& children = hierarchy_.nodes[node].children;
    if (!children.empty() && k >= 2) {
      // Sequential allocation over children: each child gets >= 1 part,
      // totals capped at k (the pairwise-splitting recurrence of Eq. 11
      // computes exactly this optimum).
      const int m = static_cast<int>(children.size());
      if (k >= m) {
        std::vector<std::vector<double>> a(
            m + 1, std::vector<double>(k + 1, kInf));
        a[0][0] = 0.0;
        for (int j = 1; j <= m; ++j) {
          for (int t = j; t <= k; ++t) {
            for (int ki = 1; ki <= t - (j - 1); ++ki) {
              const double prev = a[j - 1][t - ki];
              if (prev == kInf) continue;
              const double child = Err(children[j - 1], ki);
              if (child == kInf) continue;
              a[j][t] = std::min(a[j][t], prev + child);
            }
          }
        }
        for (int t = m; t <= k; ++t) best = std::min(best, a[m][t]);
      }
    }
    memo_[key] = best;
    return best;
  }

  /// Reconstructs the optimal cut for (node, k) into `parts`.
  void Collect(int node, int k, std::vector<std::vector<int>>* parts) {
    k = std::min(std::max(k, 1), max_k_);
    const double best = Err(node, k);
    const double unsplit = NodeScore(node);
    const auto& children = hierarchy_.nodes[node].children;
    if (children.empty() || best >= unsplit - 1e-12) {
      parts->push_back(hierarchy_.LeavesUnder(node));
      return;
    }
    // Re-derive a child allocation achieving `best`.
    const int m = static_cast<int>(children.size());
    std::vector<std::vector<double>> a(m + 1,
                                       std::vector<double>(k + 1, kInf));
    std::vector<std::vector<int>> choice(m + 1, std::vector<int>(k + 1, 0));
    a[0][0] = 0.0;
    for (int j = 1; j <= m; ++j) {
      for (int t = j; t <= k; ++t) {
        for (int ki = 1; ki <= t - (j - 1); ++ki) {
          const double prev = a[j - 1][t - ki];
          if (prev == kInf) continue;
          const double cand = prev + Err(children[j - 1], ki);
          if (cand < a[j][t]) {
            a[j][t] = cand;
            choice[j][t] = ki;
          }
        }
      }
    }
    int best_t = -1;
    for (int t = m; t <= k; ++t) {
      if (a[m][t] <= best + 1e-9) {
        best_t = t;
        break;
      }
    }
    DEEPAQP_CHECK_GE(best_t, 0);
    std::vector<int> alloc(m);
    for (int j = m, t = best_t; j >= 1; --j) {
      alloc[j - 1] = choice[j][t];
      t -= choice[j][t];
    }
    for (int j = 0; j < m; ++j) {
      Collect(children[j], alloc[j], parts);
    }
  }

  double NodeScore(int node) {
    auto it = node_score_.find(node);
    if (it != node_score_.end()) return it->second;
    const double s = score_(hierarchy_.LeavesUnder(node));
    node_score_[node] = s;
    return s;
  }

 private:
  const Hierarchy& hierarchy_;
  const NodeScoreFn& score_;
  int max_k_;
  std::map<std::pair<int, int>, double> memo_;
  std::map<int, double> node_score_;
};

util::Status ValidateHierarchy(const Hierarchy& hierarchy) {
  if (hierarchy.root < 0 ||
      static_cast<size_t>(hierarchy.root) >= hierarchy.nodes.size()) {
    return util::Status::InvalidArgument("hierarchy has no valid root");
  }
  return util::Status::OK();
}

}  // namespace

util::Result<Partition> PartitionHierarchyDp(const Hierarchy& hierarchy,
                                             const NodeScoreFn& score,
                                             int k) {
  DEEPAQP_RETURN_IF_ERROR(ValidateHierarchy(hierarchy));
  if (k < 1) return util::Status::InvalidArgument("k must be >= 1");
  HierarchyDpSolver solver(hierarchy, score, k);
  Partition result;
  result.total_score = solver.Err(hierarchy.root, k);
  solver.Collect(hierarchy.root, k, &result.parts);
  return result;
}

util::Result<Partition> PartitionHierarchyGreedy(const Hierarchy& hierarchy,
                                                 const NodeScoreFn& score,
                                                 int k) {
  DEEPAQP_RETURN_IF_ERROR(ValidateHierarchy(hierarchy));
  if (k < 1) return util::Status::InvalidArgument("k must be >= 1");

  std::map<int, double> node_score;
  auto get_score = [&](int node) {
    auto it = node_score.find(node);
    if (it != node_score.end()) return it->second;
    const double s = score(hierarchy.LeavesUnder(node));
    node_score[node] = s;
    return s;
  };

  std::vector<int> cut = {hierarchy.root};
  while (static_cast<int>(cut.size()) < k) {
    // Split the worst-scoring internal node in the cut.
    int pick = -1;
    double worst = -kInf;
    for (size_t i = 0; i < cut.size(); ++i) {
      if (hierarchy.nodes[cut[i]].children.empty()) continue;
      const double s = get_score(cut[i]);
      if (s > worst) {
        worst = s;
        pick = static_cast<int>(i);
      }
    }
    if (pick < 0) break;  // nothing splittable
    const int node = cut[pick];
    const auto& children = hierarchy.nodes[node].children;
    if (static_cast<int>(cut.size()) - 1 +
            static_cast<int>(children.size()) >
        k) {
      break;  // splitting would exceed the budget
    }
    cut.erase(cut.begin() + pick);
    cut.insert(cut.end(), children.begin(), children.end());
  }

  Partition result;
  for (int node : cut) {
    result.parts.push_back(hierarchy.LeavesUnder(node));
    result.total_score += get_score(node);
  }
  return result;
}

util::Result<Partition> PartitionContiguousDp(
    int num_groups, const std::function<double(int, int)>& range_score,
    int k) {
  if (num_groups < 1) {
    return util::Status::InvalidArgument("need at least one group");
  }
  if (k < 1) return util::Status::InvalidArgument("k must be >= 1");
  k = std::min(k, num_groups);

  // dp[t][j]: best cost of covering groups [0, j] with exactly t ranges.
  std::vector<std::vector<double>> dp(
      k + 1, std::vector<double>(num_groups, kInf));
  std::vector<std::vector<int>> from(k + 1,
                                     std::vector<int>(num_groups, -1));
  for (int j = 0; j < num_groups; ++j) dp[1][j] = range_score(0, j);
  for (int t = 2; t <= k; ++t) {
    for (int j = t - 1; j < num_groups; ++j) {
      for (int i = t - 1; i <= j; ++i) {
        const double prev = dp[t - 1][i - 1];
        if (prev == kInf) continue;
        const double cand = prev + range_score(i, j);
        if (cand < dp[t][j]) {
          dp[t][j] = cand;
          from[t][j] = i;
        }
      }
    }
  }
  int best_t = 1;
  for (int t = 2; t <= k; ++t) {
    if (dp[t][num_groups - 1] < dp[best_t][num_groups - 1]) best_t = t;
  }

  Partition result;
  result.total_score = dp[best_t][num_groups - 1];
  int j = num_groups - 1;
  for (int t = best_t; t >= 1; --t) {
    const int i = t == 1 ? 0 : from[t][j];
    std::vector<int> part;
    for (int g = i; g <= j; ++g) part.push_back(g);
    result.parts.push_back(std::move(part));
    j = i - 1;
  }
  std::reverse(result.parts.begin(), result.parts.end());
  return result;
}

int SelectKByElbow(const std::vector<double>& score_per_k,
                   double threshold) {
  if (score_per_k.size() < 2) return 1;
  const double first_gain = score_per_k[0] - score_per_k[1];
  if (first_gain <= 0) return 1;
  for (size_t i = 1; i + 1 < score_per_k.size(); ++i) {
    const double gain = score_per_k[i] - score_per_k[i + 1];
    if (gain < threshold * first_gain) {
      return static_cast<int>(i + 1);
    }
  }
  return static_cast<int>(score_per_k.size());
}

}  // namespace deepaqp::ensemble
