#ifndef DEEPAQP_ENSEMBLE_PARTITIONING_H_
#define DEEPAQP_ENSEMBLE_PARTITIONING_H_

#include <functional>
#include <string>
#include <vector>

#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::ensemble {

/// One atomic group of tuples (paper Sec. V-A): a semantically meaningful
/// subset, e.g., all tuples of one country. Partitions are unions of atomic
/// groups.
struct AtomicGroup {
  std::string name;
  std::vector<size_t> rows;
};

/// Splits `table` into atomic groups by the values of categorical attribute
/// `attr`. Groups holding less than `min_fraction` of the rows are merged
/// into a trailing "misc" group (the paper ensures every group is >= 5% of
/// the dataset). Groups are ordered by code.
std::vector<AtomicGroup> GroupByAttribute(const relation::Table& table,
                                          size_t attr,
                                          double min_fraction = 0.05);

/// A partition of atomic groups into disjoint parts; each part lists group
/// indices.
struct Partition {
  std::vector<std::vector<int>> parts;
  /// Sum of per-part scores under the scoring used to build it.
  double total_score = 0.0;
};

/// OLAP hierarchy over atomic groups: a rooted tree whose leaves map to
/// groups (e.g., Nikon Digital Cameras -> Camera -> Electronics). The DP of
/// Eq. 10/11 selects a K-way tree cut.
struct HierarchyNode {
  std::string name;
  /// Child node indices; empty for leaves.
  std::vector<int> children;
  /// Leaf payload: index of the atomic group; -1 for internal nodes.
  int group = -1;
};

struct Hierarchy {
  std::vector<HierarchyNode> nodes;
  int root = -1;

  /// Atomic-group indices under node `n`, in leaf order.
  std::vector<int> LeavesUnder(int n) const;
};

/// Builds a balanced binary hierarchy over `num_groups` leaves, the shape
/// the paper's binary-tree recurrence (Eq. 10) targets. Internal nodes are
/// named by their leaf span.
Hierarchy MakeBalancedHierarchy(int num_groups);

/// Score of training one VAE on the union of a set of atomic groups (lower
/// is better; the library uses the per-tuple-average R-ELBO loss). The
/// partitioning algorithms are generic in this so tests can use analytic
/// scores and benches can use real trained-VAE scores.
using NodeScoreFn = std::function<double(const std::vector<int>& groups)>;

/// Exact tree-cut DP (paper Eq. 10/11): chooses a partition of the
/// hierarchy's leaves into at most `k` subtree parts minimizing the sum of
/// part scores. Handles arbitrary fanout by pairwise splitting of child
/// lists (Eq. 11). Scores are memoized per node.
util::Result<Partition> PartitionHierarchyDp(const Hierarchy& hierarchy,
                                             const NodeScoreFn& score,
                                             int k);

/// Greedy baseline (Fig. 10's comparator): start from the root cut and
/// repeatedly split the current part with the worst (highest) score into
/// its children until `k` parts exist or nothing is splittable.
util::Result<Partition> PartitionHierarchyGreedy(const Hierarchy& hierarchy,
                                                 const NodeScoreFn& score,
                                                 int k);

/// Contiguous-range partitioning (paper Sec. V-C scenario 2): split groups
/// 0..l-1 into at most `k` contiguous ranges minimizing the sum of range
/// scores. `range_score(i, j)` scores the inclusive range [i, j]. Classic
/// O(l^2 k) interval DP.
util::Result<Partition> PartitionContiguousDp(
    int num_groups, const std::function<double(int, int)>& range_score,
    int k);

/// Elbow heuristic for choosing K (paper Sec. V-C): given total scores for
/// K = 1..max, returns the K after which the marginal improvement drops
/// below `threshold` times the first improvement.
int SelectKByElbow(const std::vector<double>& score_per_k,
                   double threshold = 0.25);

}  // namespace deepaqp::ensemble

#endif  // DEEPAQP_ENSEMBLE_PARTITIONING_H_
