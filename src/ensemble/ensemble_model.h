#ifndef DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_
#define DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aqp/evaluation.h"
#include "ensemble/partitioning.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/snapshot.h"
#include "util/status.h"
#include "vae/vae_model.h"

namespace deepaqp::ensemble {

/// Snapshot identity of a serialized EnsembleModel (util/snapshot.h).
inline constexpr char kEnsembleSnapshotKind[] = "deepaqp.ensemble";
inline constexpr uint32_t kEnsemblePayloadVersion = 1;

/// What a tolerant ensemble load actually recovered: with per-member
/// snapshot sections, one corrupt member need not take down the whole
/// model — the client can keep serving from the surviving members and
/// report the reduced coverage.
struct EnsembleLoadReport {
  size_t members_total = 0;
  size_t members_loaded = 0;
  /// Fraction of the original mixture weight carried by loaded members
  /// (1.0 when nothing was lost).
  double coverage = 1.0;
  /// One "member-NNNN: <status>" line per member that failed to load.
  std::vector<std::string> member_errors;

  bool degraded() const { return members_loaded < members_total; }
};

/// What degraded ensemble *training* actually produced — the training-time
/// mirror of EnsembleLoadReport. A member whose training fails is retried
/// with a perturbed seed; members that still fail are skipped, surviving
/// weights are renormalized, and the lost coverage is reported here.
struct EnsembleTrainReport {
  size_t members_total = 0;
  size_t members_trained = 0;
  /// Member retraining attempts spent after first-attempt failures.
  size_t retries = 0;
  /// Fraction of the training rows covered by trained members (1.0 when
  /// nothing was lost).
  double coverage = 1.0;
  /// One "member-NNNN: <status>" line per member that was skipped.
  std::vector<std::string> member_errors;

  bool degraded() const { return members_trained < members_total; }
};

/// A collection of per-partition VAEs acting as one generative model of the
/// whole relation (paper Sec. V): each member learns the finer structure of
/// its partition; generation draws from members proportionally to partition
/// size, so the union distribution is preserved.
class EnsembleModel {
 public:
  /// Trains one VAE per part, members in parallel on the global thread
  /// pool. `groups` are atomic row groups of `table`; `partition.parts`
  /// lists group indices per part. Member seeds derive deterministically
  /// from (options.seed, part index), so members differ from each other but
  /// the trained ensemble is identical at every thread count.
  ///
  /// Self-healing: a member whose training fails is retried (bounded,
  /// deterministic seed perturbation); irrecoverable members are skipped
  /// with renormalized weights and reported via `report`. Errors only when
  /// the partition is invalid or no member can be trained at all.
  static util::Result<std::unique_ptr<EnsembleModel>> Train(
      const relation::Table& table, const std::vector<AtomicGroup>& groups,
      const Partition& partition, const vae::VaeAqpOptions& options,
      EnsembleTrainReport* report = nullptr);

  /// Generates `n` tuples: each member contributes a share proportional to
  /// its partition's row count (multinomial split of n).
  relation::Table Generate(size_t n, double t, util::Rng& rng);

  aqp::SampleFn MakeSampler(double t, uint64_t seed = 77);

  /// Sum of members' R-ELBO losses on their own partitions (the paper's
  /// partition objective Sum_i R-ELBO(s_i)).
  double TotalRElboLoss(const relation::Table& table, double t,
                        util::Rng& rng);

  size_t num_members() const { return members_.size(); }
  vae::VaeAqpModel& member(size_t i) { return *members_[i]; }

  /// (Re)builds every member's quantized decoder plan for `mode` (see
  /// vae::VaeAqpModel::PrepareQuantized). All-or-nothing: on the first
  /// member failure the already-prepared members are reverted to fp32 and
  /// the error is returned, so the ensemble never generates with a mixed
  /// fp32/quantized membership.
  util::Status PrepareQuantized(nn::QuantMode mode) {
    for (size_t i = 0; i < members_.size(); ++i) {
      const util::Status st = members_[i]->PrepareQuantized(mode);
      if (!st.ok()) {
        for (size_t j = 0; j < i; ++j) {
          (void)members_[j]->PrepareQuantized(nn::QuantMode::kOff);
        }
        return util::Status::FailedPrecondition(
            "ensemble member " + std::to_string(i) +
            " quantization failed: " + std::string(st.message()));
      }
    }
    return util::Status::OK();
  }

  /// Combined serialized size of all members.
  size_t ModelSizeBytes() const;

  /// Serializes members and mixture weights. A deserialized ensemble can
  /// Generate and answer queries; TotalRElboLoss additionally needs the
  /// training-time partition rows, which do not ship with the model, so it
  /// is only valid on the in-process trained instance.
  std::vector<uint8_t> Serialize() const;
  static util::Result<std::unique_ptr<EnsembleModel>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// Corruption-tolerant load: members whose snapshot sections fail their
  /// checksum (or fall beyond a truncated tail) are skipped, the remaining
  /// members' mixture weights are renormalized, and `report` (optional)
  /// receives what was lost. Errors only when the header/weights are
  /// unreadable or no member survives.
  static util::Result<std::unique_ptr<EnsembleModel>> DeserializeDegraded(
      const std::vector<uint8_t>& bytes, EnsembleLoadReport* report);

 private:
  EnsembleModel() = default;

  static util::Result<std::unique_ptr<EnsembleModel>> DeserializeImpl(
      const util::SnapshotReader& snap, bool tolerant,
      EnsembleLoadReport* report);

  std::vector<std::unique_ptr<vae::VaeAqpModel>> members_;
  /// Row indices of each member's partition in the training table.
  std::vector<std::vector<size_t>> member_rows_;
  std::vector<double> weights_;  // partition fractions, sum to 1
};

}  // namespace deepaqp::ensemble

#endif  // DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_
