#ifndef DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_
#define DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_

#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "ensemble/partitioning.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"
#include "vae/vae_model.h"

namespace deepaqp::ensemble {

/// A collection of per-partition VAEs acting as one generative model of the
/// whole relation (paper Sec. V): each member learns the finer structure of
/// its partition; generation draws from members proportionally to partition
/// size, so the union distribution is preserved.
class EnsembleModel {
 public:
  /// Trains one VAE per part, members in parallel on the global thread
  /// pool. `groups` are atomic row groups of `table`; `partition.parts`
  /// lists group indices per part. Member seeds derive deterministically
  /// from (options.seed, part index), so members differ from each other but
  /// the trained ensemble is identical at every thread count.
  static util::Result<std::unique_ptr<EnsembleModel>> Train(
      const relation::Table& table, const std::vector<AtomicGroup>& groups,
      const Partition& partition, const vae::VaeAqpOptions& options);

  /// Generates `n` tuples: each member contributes a share proportional to
  /// its partition's row count (multinomial split of n).
  relation::Table Generate(size_t n, double t, util::Rng& rng);

  aqp::SampleFn MakeSampler(double t, uint64_t seed = 77);

  /// Sum of members' R-ELBO losses on their own partitions (the paper's
  /// partition objective Sum_i R-ELBO(s_i)).
  double TotalRElboLoss(const relation::Table& table, double t,
                        util::Rng& rng);

  size_t num_members() const { return members_.size(); }
  vae::VaeAqpModel& member(size_t i) { return *members_[i]; }

  /// Combined serialized size of all members.
  size_t ModelSizeBytes() const;

  /// Serializes members and mixture weights. A deserialized ensemble can
  /// Generate and answer queries; TotalRElboLoss additionally needs the
  /// training-time partition rows, which do not ship with the model, so it
  /// is only valid on the in-process trained instance.
  std::vector<uint8_t> Serialize() const;
  static util::Result<std::unique_ptr<EnsembleModel>> Deserialize(
      const std::vector<uint8_t>& bytes);

 private:
  EnsembleModel() = default;

  std::vector<std::unique_ptr<vae::VaeAqpModel>> members_;
  /// Row indices of each member's partition in the training table.
  std::vector<std::vector<size_t>> member_rows_;
  std::vector<double> weights_;  // partition fractions, sum to 1
};

}  // namespace deepaqp::ensemble

#endif  // DEEPAQP_ENSEMBLE_ENSEMBLE_MODEL_H_
