#include "ensemble/ensemble_model.h"

#include <algorithm>
#include <cstdio>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"

namespace deepaqp::ensemble {

namespace {

std::string MemberSectionName(size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "member-%04zu", i);
  return buf;
}

/// Training attempts per member: the first pass plus bounded retries with a
/// deterministically perturbed seed (attempt 0 reproduces the historical
/// seed exactly, so healthy training stays bit-identical).
constexpr int kMemberTrainAttempts = 3;

}  // namespace

util::Result<std::unique_ptr<EnsembleModel>> EnsembleModel::Train(
    const relation::Table& table, const std::vector<AtomicGroup>& groups,
    const Partition& partition, const vae::VaeAqpOptions& options,
    EnsembleTrainReport* report) {
  if (partition.parts.empty()) {
    return util::Status::InvalidArgument("partition has no parts");
  }
  auto model = std::unique_ptr<EnsembleModel>(new EnsembleModel());
  const size_t parts = partition.parts.size();

  // Resolve and validate every part's row set up front (cheap, serial) so
  // the parallel phase below only does the expensive per-member training.
  std::vector<std::vector<size_t>> part_rows(parts);
  for (size_t p = 0; p < parts; ++p) {
    for (int g : partition.parts[p]) {
      if (g < 0 || static_cast<size_t>(g) >= groups.size()) {
        return util::Status::InvalidArgument("partition references bad group");
      }
      part_rows[p].insert(part_rows[p].end(), groups[g].rows.begin(),
                          groups[g].rows.end());
    }
    if (part_rows[p].empty()) {
      return util::Status::InvalidArgument("empty partition part");
    }
  }

  // One VAE per part, trained in parallel. Each member's seed is a fixed
  // function of (options.seed, p, attempt) and members share no mutable
  // state, so the trained ensemble is bit-identical at every thread count.
  std::vector<std::unique_ptr<vae::VaeAqpModel>> members(parts);
  std::vector<util::Status> statuses(parts);
  auto train_member = [&](size_t p, int attempt) {
    // Chaos site, keyed by member index: simulated member-training failure.
    if (util::FailpointTriggered("ensemble/train_member", p)) {
      members[p].reset();
      statuses[p] = util::FailpointError("ensemble/train_member");
      return;
    }
    relation::Table part_table = table.Gather(part_rows[p]);
    vae::VaeAqpOptions member_options = options;
    member_options.seed = options.seed + 1000003 * (p + 1) +
                          0x9E3779B9ull * static_cast<uint64_t>(attempt);
    auto member = vae::VaeAqpModel::Train(part_table, member_options);
    if (member.ok()) {
      members[p] = std::move(*member);
      statuses[p] = util::Status::OK();
    } else {
      statuses[p] = member.status();
    }
  };
  util::ParallelFor(0, parts, [&](size_t p) { train_member(p, 0); });

  EnsembleTrainReport rep;
  rep.members_total = parts;

  // Bounded per-member retries, serial and in member order so the retrained
  // weights are a deterministic function of which members failed.
  for (size_t p = 0; p < parts; ++p) {
    for (int attempt = 1;
         attempt < kMemberTrainAttempts && !statuses[p].ok(); ++attempt) {
      DEEPAQP_LOG(Warning)
          << "ensemble member " << p << " failed to train ("
          << statuses[p].ToString() << "); retry " << attempt << "/"
          << (kMemberTrainAttempts - 1) << " with perturbed seed";
      ++rep.retries;
      train_member(p, attempt);
    }
  }

  // Degraded completion: skip irrecoverable members, renormalize the
  // surviving weights, and report the lost coverage (the training-time
  // mirror of DeserializeImpl's tolerant path).
  size_t total_rows = 0;
  size_t covered_rows = 0;
  std::string first_error;
  for (size_t p = 0; p < parts; ++p) total_rows += part_rows[p].size();
  for (size_t p = 0; p < parts; ++p) {
    if (statuses[p].ok()) {
      covered_rows += part_rows[p].size();
      model->members_.push_back(std::move(members[p]));
      model->member_rows_.push_back(std::move(part_rows[p]));
      ++rep.members_trained;
    } else {
      const std::string error =
          MemberSectionName(p) + ": " + statuses[p].ToString();
      if (first_error.empty()) first_error = error;
      rep.member_errors.push_back(error);
    }
  }
  if (model->members_.empty()) {
    if (report != nullptr) {
      rep.coverage = 0.0;
      *report = rep;
    }
    return util::Status::Internal(
        "all " + std::to_string(parts) +
        " ensemble members failed to train after " +
        std::to_string(kMemberTrainAttempts) +
        " attempts each (first: " + first_error + ")");
  }
  for (const auto& rows : model->member_rows_) {
    model->weights_.push_back(static_cast<double>(rows.size()) /
                              static_cast<double>(covered_rows));
  }
  rep.coverage = total_rows > 0
                     ? static_cast<double>(covered_rows) /
                           static_cast<double>(total_rows)
                     : 0.0;
  if (rep.degraded()) {
    DEEPAQP_LOG(Warning) << "ensemble trained degraded: "
                         << rep.members_trained << "/" << rep.members_total
                         << " members, coverage " << rep.coverage;
  }
  if (report != nullptr) *report = rep;
  return model;
}

relation::Table EnsembleModel::Generate(size_t n, double t, util::Rng& rng) {
  // Multinomial allocation of n across members by weight.
  std::vector<size_t> counts(members_.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights_)];
  }
  relation::Table out = members_[0]->Generate(counts[0], t, rng);
  for (size_t m = 1; m < members_.size(); ++m) {
    if (counts[m] == 0) continue;
    relation::Table part = members_[m]->Generate(counts[m], t, rng);
    DEEPAQP_CHECK(out.Append(part).ok());
  }
  return out;
}

aqp::SampleFn EnsembleModel::MakeSampler(double t, uint64_t seed) {
  return [this, t, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, t, rng);
  };
}

double EnsembleModel::TotalRElboLoss(const relation::Table& table, double t,
                                     util::Rng& rng) {
  double total = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    relation::Table part = table.Gather(member_rows_[m]);
    total += members_[m]->RElboLoss(part, t, rng);
  }
  return total;
}

size_t EnsembleModel::ModelSizeBytes() const {
  size_t total = 0;
  for (const auto& member : members_) total += member->ModelSizeBytes();
  return total;
}

std::vector<uint8_t> EnsembleModel::Serialize() const {
  util::SnapshotWriter snap(kEnsembleSnapshotKind, kEnsemblePayloadVersion);
  snap.AddSection("meta").WriteU64(members_.size());
  snap.AddSection("weights").WriteF64Vector(weights_);
  // One section per member (each a complete nested VAE snapshot): the
  // per-section checksum is what lets a tolerant loader drop exactly the
  // corrupt member instead of the whole ensemble.
  for (size_t i = 0; i < members_.size(); ++i) {
    const std::vector<uint8_t> bytes = members_[i]->Serialize();
    snap.AddSection(MemberSectionName(i)).WriteRaw(bytes.data(),
                                                   bytes.size());
  }
  return snap.Finish();
}

util::Result<std::unique_ptr<EnsembleModel>> EnsembleModel::Deserialize(
    const std::vector<uint8_t>& bytes) {
  DEEPAQP_ASSIGN_OR_RETURN(util::SnapshotReader snap,
                           util::SnapshotReader::Open(bytes));
  return DeserializeImpl(snap, /*tolerant=*/false, nullptr);
}

util::Result<std::unique_ptr<EnsembleModel>>
EnsembleModel::DeserializeDegraded(const std::vector<uint8_t>& bytes,
                                   EnsembleLoadReport* report) {
  DEEPAQP_ASSIGN_OR_RETURN(util::SnapshotReader snap,
                           util::SnapshotReader::OpenTolerant(bytes));
  return DeserializeImpl(snap, /*tolerant=*/true, report);
}

util::Result<std::unique_ptr<EnsembleModel>> EnsembleModel::DeserializeImpl(
    const util::SnapshotReader& snap, bool tolerant,
    EnsembleLoadReport* report) {
  if (snap.kind() != kEnsembleSnapshotKind) {
    return util::Status::InvalidArgument(
        "snapshot holds a '" + snap.kind() + "', not a deepaqp ensemble");
  }
  if (snap.payload_version() != kEnsemblePayloadVersion) {
    return util::Status::InvalidArgument(
        "unsupported ensemble payload version " +
        std::to_string(snap.payload_version()) + " (expected " +
        std::to_string(kEnsemblePayloadVersion) + ")");
  }
  auto model = std::unique_ptr<EnsembleModel>(new EnsembleModel());
  DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader meta, snap.Section("meta"));
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t count, meta.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader weights_r,
                           snap.Section("weights"));
  DEEPAQP_ASSIGN_OR_RETURN(std::vector<double> weights,
                           weights_r.ReadF64Vector());
  if (weights.size() != count || count == 0) {
    return util::Status::InvalidArgument("ensemble weight count mismatch");
  }

  EnsembleLoadReport rep;
  rep.members_total = count;
  double loaded_weight = 0.0;
  double total_weight = 0.0;
  std::string first_error;
  for (uint64_t i = 0; i < count; ++i) {
    total_weight += weights[i];
    const std::string name = MemberSectionName(i);
    auto member = [&]() -> util::Result<std::unique_ptr<vae::VaeAqpModel>> {
      DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader r, snap.Section(name));
      DEEPAQP_ASSIGN_OR_RETURN(std::vector<uint8_t> member_bytes,
                               r.ReadBytes(r.remaining()));
      return vae::VaeAqpModel::Deserialize(member_bytes);
    }();
    if (member.ok()) {
      model->members_.push_back(std::move(*member));
      model->member_rows_.emplace_back();  // not shipped with the model
      model->weights_.push_back(weights[i]);
      loaded_weight += weights[i];
      ++rep.members_loaded;
    } else {
      const std::string error =
          name + ": " + member.status().ToString();
      if (!tolerant) {
        return util::Status(member.status().code(),
                            "ensemble " + error);
      }
      if (first_error.empty()) first_error = error;
      rep.member_errors.push_back(error);
    }
  }
  if (model->members_.empty()) {
    return util::Status::IOError(
        "all " + std::to_string(count) +
        " ensemble members failed to load (first: " + first_error + ")");
  }
  rep.coverage = total_weight > 0.0 ? loaded_weight / total_weight : 0.0;
  if (rep.degraded()) {
    // Surviving members keep their relative proportions. Only done on a
    // degraded load so a clean round trip stays bit-identical.
    for (double& w : model->weights_) w /= loaded_weight;
    DEEPAQP_LOG(Warning) << "ensemble loaded degraded: "
                         << rep.members_loaded << "/" << rep.members_total
                         << " members, coverage " << rep.coverage;
  }
  if (report != nullptr) *report = rep;
  return model;
}

}  // namespace deepaqp::ensemble
