#include "ensemble/ensemble_model.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepaqp::ensemble {

util::Result<std::unique_ptr<EnsembleModel>> EnsembleModel::Train(
    const relation::Table& table, const std::vector<AtomicGroup>& groups,
    const Partition& partition, const vae::VaeAqpOptions& options) {
  if (partition.parts.empty()) {
    return util::Status::InvalidArgument("partition has no parts");
  }
  auto model = std::unique_ptr<EnsembleModel>(new EnsembleModel());
  const size_t parts = partition.parts.size();

  // Resolve and validate every part's row set up front (cheap, serial) so
  // the parallel phase below only does the expensive per-member training.
  std::vector<std::vector<size_t>> part_rows(parts);
  for (size_t p = 0; p < parts; ++p) {
    for (int g : partition.parts[p]) {
      if (g < 0 || static_cast<size_t>(g) >= groups.size()) {
        return util::Status::InvalidArgument("partition references bad group");
      }
      part_rows[p].insert(part_rows[p].end(), groups[g].rows.begin(),
                          groups[g].rows.end());
    }
    if (part_rows[p].empty()) {
      return util::Status::InvalidArgument("empty partition part");
    }
  }

  // One VAE per part, trained in parallel. Each member's seed is a fixed
  // function of (options.seed, p) and members share no mutable state, so
  // the trained ensemble is bit-identical at every thread count.
  std::vector<std::unique_ptr<vae::VaeAqpModel>> members(parts);
  std::vector<util::Status> statuses(parts);
  util::ParallelFor(0, parts, [&](size_t p) {
    relation::Table part_table = table.Gather(part_rows[p]);
    vae::VaeAqpOptions member_options = options;
    member_options.seed = options.seed + 1000003 * (p + 1);
    auto member = vae::VaeAqpModel::Train(part_table, member_options);
    if (member.ok()) {
      members[p] = std::move(*member);
    } else {
      statuses[p] = member.status();
    }
  });
  for (const util::Status& status : statuses) {
    DEEPAQP_RETURN_IF_ERROR(status);
  }

  size_t total_rows = 0;
  for (size_t p = 0; p < parts; ++p) {
    model->members_.push_back(std::move(members[p]));
    model->member_rows_.push_back(std::move(part_rows[p]));
    total_rows += model->member_rows_.back().size();
  }
  for (const auto& rows : model->member_rows_) {
    model->weights_.push_back(static_cast<double>(rows.size()) /
                              static_cast<double>(total_rows));
  }
  return model;
}

relation::Table EnsembleModel::Generate(size_t n, double t, util::Rng& rng) {
  // Multinomial allocation of n across members by weight.
  std::vector<size_t> counts(members_.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights_)];
  }
  relation::Table out = members_[0]->Generate(counts[0], t, rng);
  for (size_t m = 1; m < members_.size(); ++m) {
    if (counts[m] == 0) continue;
    relation::Table part = members_[m]->Generate(counts[m], t, rng);
    DEEPAQP_CHECK(out.Append(part).ok());
  }
  return out;
}

aqp::SampleFn EnsembleModel::MakeSampler(double t, uint64_t seed) {
  return [this, t, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, t, rng);
  };
}

double EnsembleModel::TotalRElboLoss(const relation::Table& table, double t,
                                     util::Rng& rng) {
  double total = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    relation::Table part = table.Gather(member_rows_[m]);
    total += members_[m]->RElboLoss(part, t, rng);
  }
  return total;
}

size_t EnsembleModel::ModelSizeBytes() const {
  size_t total = 0;
  for (const auto& member : members_) total += member->ModelSizeBytes();
  return total;
}

std::vector<uint8_t> EnsembleModel::Serialize() const {
  util::ByteWriter w;
  w.WriteString("deepaqp-ensemble-v1");
  w.WriteU64(members_.size());
  w.WriteF64Vector(weights_);
  for (const auto& member : members_) {
    const std::vector<uint8_t> bytes = member->Serialize();
    w.WriteU64(bytes.size());
    for (uint8_t b : bytes) w.WriteU8(b);
  }
  return w.bytes();
}

util::Result<std::unique_ptr<EnsembleModel>> EnsembleModel::Deserialize(
    const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  DEEPAQP_ASSIGN_OR_RETURN(std::string magic, r.ReadString());
  if (magic != "deepaqp-ensemble-v1") {
    return util::Status::InvalidArgument("not a deepaqp ensemble");
  }
  auto model = std::unique_ptr<EnsembleModel>(new EnsembleModel());
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(model->weights_, r.ReadF64Vector());
  if (model->weights_.size() != count || count == 0) {
    return util::Status::InvalidArgument("ensemble weight count mismatch");
  }
  for (uint64_t i = 0; i < count; ++i) {
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t size, r.ReadU64());
    std::vector<uint8_t> member_bytes(size);
    for (uint64_t b = 0; b < size; ++b) {
      DEEPAQP_ASSIGN_OR_RETURN(member_bytes[b], r.ReadU8());
    }
    DEEPAQP_ASSIGN_OR_RETURN(auto member,
                             vae::VaeAqpModel::Deserialize(member_bytes));
    model->members_.push_back(std::move(member));
    model->member_rows_.emplace_back();  // not shipped with the model
  }
  return model;
}

}  // namespace deepaqp::ensemble
