// The seed repository's triple-loop GEMM, kept verbatim as the correctness
// oracle for the blocked kernel and as the `DEEPAQP_KERNEL=naive` escape
// hatch. Deliberately compiled with the project-default flags (no -O3, no
// -march) so its numerics and throughput stay exactly those of the seed —
// it is both the bit-exact fallback and the baseline the bench_kernels
// speedup numbers are measured against.

#include "nn/kernels.h"

#include <functional>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepaqp::nn {

namespace {

/// Same parallelism cutoff the seed's row-parallel kernel used: below this
/// flop count the task handoff costs more than the loop.
constexpr size_t kParallelFlopCutoff = 32768;

/// Row-parallel dispatch for the reference kernel (unchanged from the seed).
void ForEachOutputRow(size_t m, size_t k, size_t n,
                      const std::function<void(size_t)>& body) {
  if (m >= 2 && m * k * n >= kParallelFlopCutoff) {
    util::ParallelFor(0, m, body);
  } else {
    for (size_t i = 0; i < m; ++i) body(i);
  }
}

}  // namespace

void ReferenceGemm(const Matrix& a, bool trans_a, const Matrix& b,
                   bool trans_b, float alpha, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  DEEPAQP_CHECK_EQ(k, kb);
  if (beta == 0.0f) {
    *c = Matrix(m, n);
  } else {
    DEEPAQP_CHECK_EQ(c->rows(), m);
    DEEPAQP_CHECK_EQ(c->cols(), n);
    if (beta != 1.0f) {
      for (size_t i = 0; i < c->size(); ++i) c->data()[i] *= beta;
    }
  }

  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // the (logical) B operand for the common non-transposed case.
  if (!trans_a && !trans_b) {
    ForEachOutputRow(m, k, n, [&](size_t i) {
      const float* arow = a.Row(i);
      float* crow = c->Row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = alpha * arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b.Row(kk);
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    });
  } else if (trans_a && !trans_b) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.Row(kk);  // a is k x m
      const float* brow = b.Row(kk);
      for (size_t i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c->Row(i);
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    ForEachOutputRow(m, k, n, [&](size_t i) {
      const float* arow = a.Row(i);
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.Row(j);  // b is n x k
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += alpha * acc;
      }
    });
  } else {  // trans_a && trans_b
    ForEachOutputRow(m, k, n, [&](size_t i) {
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          acc += a.At(kk, i) * b.At(j, kk);
        }
        crow[j] += alpha * acc;
      }
    });
  }
}

}  // namespace deepaqp::nn
