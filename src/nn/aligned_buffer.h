#ifndef DEEPAQP_NN_ALIGNED_BUFFER_H_
#define DEEPAQP_NN_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace deepaqp::nn {

/// Cache-line / SIMD-friendly allocation boundary. 64 bytes covers a full
/// AVX-512 register and the cache-line size of every CPU we target, so any
/// buffer allocated on this boundary is safe for aligned vector loads of
/// every width the kernel layer uses.
inline constexpr std::size_t kBufferAlign = 64;

/// Allocations at least this large get a transparent-huge-page hint. 2 MiB
/// is the x86-64 huge-page size; pool-sized sample buffers and packed GEMM
/// panels clear it, per-row scratch does not.
inline constexpr std::size_t kHugePageAdviseBytes = std::size_t{2} << 20;

/// Best-effort `madvise(MADV_HUGEPAGE)` over the page-aligned interior of
/// [p, p + bytes) for allocations above kHugePageAdviseBytes. Fewer TLB
/// misses on the multi-megabyte buffers the hot paths stream over (sample
/// pools, packed panels, columnar tables). Graceful everywhere it cannot
/// help: non-Linux builds, kernels without THP, and madvise failures are
/// all silent no-ops — the hint never affects correctness, only paging.
inline void MaybeAdviseHugePages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (p == nullptr || bytes < kHugePageAdviseBytes) return;
  static const std::uintptr_t page_size = [] {
    const long sz = ::sysconf(_SC_PAGESIZE);
    return static_cast<std::uintptr_t>(sz > 0 ? sz : 4096);
  }();
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (addr + page_size - 1) & ~(page_size - 1);
  const std::uintptr_t hi = (addr + bytes) & ~(page_size - 1);
  if (hi <= lo) return;
  (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

/// Minimal std::allocator replacement that hands out kBufferAlign-aligned
/// storage via C++17 aligned operator new (with a huge-page hint on blocks
/// above kHugePageAdviseBytes). Stateless, so vectors with this allocator
/// swap/move exactly like plain ones.
template <typename T, std::size_t Alignment = kBufferAlign>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no smaller than alignof(T)");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_type n) {
    T* p = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
    MaybeAdviseHugePages(p, n * sizeof(T));
    return p;
  }

  void deallocate(T* p, size_type n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The buffer type used by Matrix storage and the kernel pack scratch:
/// a std::vector whose data() is always kBufferAlign-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// AlignedAllocator whose value-less construct() default-initializes
/// instead of value-initializing: for trivially-constructible element types
/// resize() then allocates *without writing* the new elements. That is the
/// NUMA first-touch hook — under Linux's default first-touch placement a
/// page lands on the node of the thread that first writes it, so a buffer
/// sized on one thread and then filled shard-by-shard from pinned workers
/// (Table::AssignRows under ParallelForSharded) ends up node-local to its
/// readers. The cost is a contract: new elements are indeterminate until
/// the caller overwrites them, so this allocator is only for containers
/// whose growth paths fully assign what they expose (columnar Table
/// storage; NOT Matrix, whose users rely on zeroed growth).
template <typename T, std::size_t Alignment = kBufferAlign>
class FirstTouchAllocator : public AlignedAllocator<T, Alignment> {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "FirstTouchAllocator requires trivial element types");

  using value_type = T;

  template <typename U>
  struct rebind {
    using other = FirstTouchAllocator<U, Alignment>;
  };

  FirstTouchAllocator() noexcept = default;
  template <typename U>
  FirstTouchAllocator(const FirstTouchAllocator<U, Alignment>&) noexcept {}

  /// Default-initialization: a no-op for trivial T (no page touch).
  template <typename U>
  void construct(U* p) noexcept {
    ::new (static_cast<void*>(p)) U;
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

/// Column storage for big streamed-over buffers: aligned, huge-page-hinted,
/// first-touch-deferred growth.
template <typename T>
using FirstTouchVector = std::vector<T, FirstTouchAllocator<T>>;

/// True when `p` sits on a kBufferAlign boundary (nullptr counts: an empty
/// buffer has nothing to misalign). Used by the debug-build asserts.
inline bool IsBufferAligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % kBufferAlign) == 0;
}

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_ALIGNED_BUFFER_H_
