#ifndef DEEPAQP_NN_ALIGNED_BUFFER_H_
#define DEEPAQP_NN_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace deepaqp::nn {

/// Cache-line / SIMD-friendly allocation boundary. 64 bytes covers a full
/// AVX-512 register and the cache-line size of every CPU we target, so any
/// buffer allocated on this boundary is safe for aligned vector loads of
/// every width the kernel layer uses.
inline constexpr std::size_t kBufferAlign = 64;

/// Minimal std::allocator replacement that hands out kBufferAlign-aligned
/// storage via C++17 aligned operator new. Stateless, so vectors with this
/// allocator swap/move exactly like plain ones.
template <typename T, std::size_t Alignment = kBufferAlign>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no smaller than alignof(T)");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_type n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, size_type n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The buffer type used by Matrix storage and the kernel pack scratch:
/// a std::vector whose data() is always kBufferAlign-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` sits on a kBufferAlign boundary (nullptr counts: an empty
/// buffer has nothing to misalign). Used by the debug-build asserts.
inline bool IsBufferAligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % kBufferAlign) == 0;
}

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_ALIGNED_BUFFER_H_
