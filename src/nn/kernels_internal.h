#ifndef DEEPAQP_NN_KERNELS_INTERNAL_H_
#define DEEPAQP_NN_KERNELS_INTERNAL_H_

// Shared contract between the portable blocked kernel (kernels.cc) and the
// explicitly vectorized backend (kernels_simd.cc). Both translation units
// consume the same packed-panel layout and the same driver signature, so
// the only thing the SIMD TU adds is a micro-kernel (and a vectorized
// sigmoid) emitted with AVX2/FMA (or NEON) instructions.
//
// Everything declared here is defined in kernels.cc with the
// project-baseline ISA. Keeping the shared helpers out-of-line (not inline
// in this header) is deliberate: an inline function compiled once with
// -mavx2 and once without would be merged by the linker into a single
// arbitrary copy, which could smuggle AVX2 instructions into the generic
// code path on a non-AVX2 machine. Out-of-line definitions have exactly one
// home TU and one ISA.

#include <cstddef>

#include "nn/kernels.h"

namespace deepaqp::nn::internal {

/// Stride view of a logical (possibly transposed) operand: element (r, c)
/// lives at base[r * rs + c * cs]. A transpose is just a stride swap, so
/// packing and the micro-kernels never branch on transpose flags.
struct View {
  const float* base;
  size_t rs;
  size_t cs;
};

/// Micro-tile: kMr C rows x kNr C columns accumulate in registers. 4 x 8
/// fits both targets: GCC promotes it to an all-register block in the
/// portable kernel, and kNr = 8 floats is exactly one AVX2 ymm vector (two
/// NEON q registers), so the same packed panels feed the intrinsics
/// micro-kernel unchanged.
inline constexpr size_t kMr = 4;
inline constexpr size_t kNr = 8;
/// K-dimension cache block: one packed A panel (kMr x kKc) is 4 KB and one
/// packed B panel (kKc x kNr) is 8 KB, so a micro-kernel's working set sits
/// comfortably in L1.
inline constexpr size_t kKc = 256;
/// Rows of C per parallel task. Shape-derived only (never thread-derived):
/// batch 256 yields 8 tasks regardless of pool size, which keeps the block
/// layout — and therefore the floats — identical at every thread count.
inline constexpr size_t kMc = 32;
/// Same parallelism cutoff the row-parallel reference kernel uses: below
/// this flop count the task handoff costs more than the loop.
inline constexpr size_t kParallelFlopCutoff = 32768;

inline constexpr size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// Packs op(B)[k0:k0+kc, 0:n] into kNr-wide column panels:
/// out[p * (kc * kNr) + kk * kNr + jr] = op(B)(k0 + kk, p * kNr + jr),
/// zero-padded in jr for the ragged last panel.
void PackB(const View& b, size_t k0, size_t kc, size_t n, float* out);

/// Packs op(A)[i0:i0+mc, k0:k0+kc] into kMr-tall row panels with alpha
/// folded in: out[(mp * kc + kk) * kMr + ir] = alpha * op(A)(i0 + mp*kMr +
/// ir, k0 + kk), zero-padded in ir for the ragged last panel.
void PackA(const View& a, size_t i0, size_t mc, size_t k0, size_t kc,
           float alpha, float* out);

/// Optional fused tail applied to finished C rows while they are cache-hot.
struct Epilogue {
  const float* bias = nullptr;  // 1 x n, nullable
  Activation act = Activation::kIdentity;
  float leaky_slope = 0.0f;
};

/// bias add + ApplyActivation over one C row. Scalar arithmetic identical
/// to the standalone layer loops — both drivers call this one definition,
/// which is what keeps FusedLinearForward bit-identical to the unfused
/// GEMM + AddRowBroadcast + ApplyActivation pipeline under every backend.
void ApplyEpilogueRow(const Epilogue& e, float* row, size_t n);

/// C[0:m, 0:n] (+)= alpha * op(A) @ op(B) with the portable blocked kernel.
/// `overwrite` makes the first K block store instead of accumulate; `epi`,
/// if non-null, runs on each row block after its accumulation completes.
/// Bit-identical at every thread count (block layout is a pure function of
/// the shape; each C element keeps one fixed k accumulation order).
void BlockedGemmDriver(const View& a, const View& b, size_t m, size_t k,
                       size_t n, float alpha, bool overwrite,
                       const Epilogue* epi, float* c, size_t ldc);

// --- SIMD backend (kernels_simd.cc) ----------------------------------------

/// True when kernels_simd.cc was built with an explicit vector ISA (AVX2+FMA
/// on x86, NEON on aarch64). False on toolchains without the flags — then
/// the simd kernel kind is never selectable and the stubs below are
/// unreachable.
bool SimdBackendCompiled();

/// "avx2+fma", "neon", or "none" — which ISA the SIMD TU was built for.
const char* SimdBackendIsa();

/// Same contract as BlockedGemmDriver, hand-vectorized micro-kernel.
/// Results differ from the blocked driver only through FMA contraction
/// inside one k step (same summation order), so the reference-relative
/// error bound is the same 1e-5 contract. Must only be called when
/// SimdKernelAvailable() (runtime CPU check included) is true.
void SimdGemmDriver(const View& a, const View& b, size_t m, size_t k,
                    size_t n, float alpha, bool overwrite, const Epilogue* epi,
                    float* c, size_t ldc);

/// out[i] = sigmoid(x[i]) via the vectorized exp2 polynomial (the same
/// formula kernels.cc's FastExp evaluates; AVX2 lanes contract it with
/// FMA). |error| < 1e-5 absolute on the sigmoid, pure function of input.
void SimdSigmoid(const float* x, float* out, size_t n);

}  // namespace deepaqp::nn::internal

#endif  // DEEPAQP_NN_KERNELS_INTERNAL_H_
