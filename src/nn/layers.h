#ifndef DEEPAQP_NN_LAYERS_H_
#define DEEPAQP_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/arena.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace deepaqp::nn {

/// A trainable tensor with its accumulated gradient. Layers own their
/// parameters; optimizers mutate them through pointers collected via
/// Layer::CollectParameters.
struct Parameter {
  Matrix value;
  Matrix grad;

  void ZeroGrad() {
    grad = Matrix(value.rows(), value.cols());
  }
};

/// Base class for differentiable modules. The training protocol is
/// Forward -> (loss gradient) -> Backward; Forward caches whatever Backward
/// needs, so one layer instance processes one batch at a time.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = examples).
  virtual Matrix Forward(const Matrix& input) = 0;

  /// Propagates `grad_output` (dL/d output) and accumulates parameter
  /// gradients; returns dL/d input. Must be called after Forward on the
  /// same batch.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Appends this layer's parameters to `out`.
  virtual void CollectParameters(std::vector<Parameter*>* out) {
    (void)out;
  }

  /// Tag used by Sequential serialization.
  virtual std::string TypeName() const = 0;

  virtual void Serialize(util::ByteWriter& w) const { (void)w; }
};

/// Fully-connected layer: y = x W + b, W is in x out.
class Linear : public Layer {
 public:
  /// Xavier/Glorot-initialized weights; zero bias.
  Linear(size_t in_dim, size_t out_dim, util::Rng& rng);
  /// He initialization (preferred in front of ReLU).
  static std::unique_ptr<Linear> WithHeInit(size_t in_dim, size_t out_dim,
                                            util::Rng& rng);

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string TypeName() const override { return "linear"; }
  void Serialize(util::ByteWriter& w) const override;
  static util::Result<std::unique_ptr<Linear>> Deserialize(
      util::ByteReader& r);

  size_t in_dim() const { return weight.value.rows(); }
  size_t out_dim() const { return weight.value.cols(); }

  Parameter weight;
  Parameter bias;

 private:
  Linear() = default;
  Matrix input_cache_;
};

/// Rectified linear unit.
class Relu : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string TypeName() const override { return "relu"; }

 private:
  Matrix mask_;
};

/// Leaky ReLU with fixed negative slope (used by the WGAN baseline).
class LeakyRelu : public Layer {
 public:
  explicit LeakyRelu(float slope = 0.2f) : slope_(slope) {}
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string TypeName() const override { return "leaky_relu"; }
  void Serialize(util::ByteWriter& w) const override { w.WriteF32(slope_); }
  float slope() const { return slope_; }

 private:
  float slope_;
  Matrix input_cache_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string TypeName() const override { return "tanh"; }

 private:
  Matrix output_cache_;
};

/// Logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string TypeName() const override { return "sigmoid"; }

 private:
  Matrix output_cache_;
};

/// Ordered stack of layers trained end-to-end.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Matrix Forward(const Matrix& input) override;
  Matrix Backward(const Matrix& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  std::string TypeName() const override { return "sequential"; }
  void Serialize(util::ByteWriter& w) const override;
  static util::Result<std::unique_ptr<Sequential>> Deserialize(
      util::ByteReader& r);

  size_t num_layers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }
  const Layer* layer(size_t i) const { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Stateless forward pass through `seq`: computes exactly the same outputs
/// (same operations, same order) as Sequential::Forward but never touches
/// the per-batch backward caches, so many threads may run inference through
/// one shared, read-only network concurrently. Supports the layer types a
/// Sequential can deserialize; aborts on layers it does not know.
Matrix InferenceForward(const Sequential& seq, const Matrix& x);

/// Allocation-free form of InferenceForward: writes the result into `out`
/// (resized as needed) and draws every intermediate buffer from `arena`,
/// so steady-state inference loops perform no heap allocations. Each
/// Linear layer is fused with a directly following activation into one
/// kernel pass. Outputs are identical to InferenceForward. `out` must not
/// alias `x`; `arena` must be owned by the calling thread.
void InferenceForwardInto(const Sequential& seq, const Matrix& x, Matrix* out,
                          ScratchArena* arena);

/// Stateless y = x W + b for a single shared Linear layer (see
/// InferenceForward).
Matrix InferenceForward(const Linear& linear, const Matrix& x);

/// Builds a standard MLP trunk: `depth` (Linear + ReLU) blocks of width
/// `hidden`, mapping in_dim -> hidden. depth >= 1.
std::unique_ptr<Sequential> MakeMlpTrunk(size_t in_dim, size_t hidden,
                                         int depth, util::Rng& rng);

/// Total number of scalar parameters under `layer` (model-size reporting).
size_t CountParameters(Layer& layer);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_LAYERS_H_
