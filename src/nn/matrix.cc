#include "nn/matrix.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepaqp::nn {

namespace {

/// Row-parallel dispatch: runs body(i) over [0, m), on the pool when the
/// product is large enough to amortize task overhead. The cutoff depends
/// only on shape, never on thread count, and each output row is produced by
/// exactly one invocation, so parallel and serial results are identical.
void ForEachOutputRow(size_t m, size_t k, size_t n,
                      const std::function<void(size_t)>& body) {
  if (m >= 2 && m * k * n >= 32768) {
    util::ParallelFor(0, m, body);
  } else {
    for (size_t i = 0; i < m; ++i) body(i);
  }
}

}  // namespace

void Matrix::RandomizeGaussian(util::Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    DEEPAQP_CHECK_LT(indices[i], rows_);
    std::copy(Row(indices[i]), Row(indices[i]) + cols_, out.Row(i));
  }
  return out;
}

void Matrix::Serialize(util::ByteWriter& w) const {
  w.WriteU64(rows_);
  w.WriteU64(cols_);
  w.WriteF32Vector(data_);
}

util::Result<Matrix> Matrix::Deserialize(util::ByteReader& r) {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadF32Vector());
  if (data.size() != rows * cols) {
    return util::Status::InvalidArgument("matrix payload size mismatch");
  }
  Matrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.data());
  return m;
}

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  DEEPAQP_CHECK_EQ(k, kb);
  if (beta == 0.0f) {
    *c = Matrix(m, n);
  } else {
    DEEPAQP_CHECK_EQ(c->rows(), m);
    DEEPAQP_CHECK_EQ(c->cols(), n);
    if (beta != 1.0f) {
      for (size_t i = 0; i < c->size(); ++i) c->data()[i] *= beta;
    }
  }

  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // the (logical) B operand for the common non-transposed case.
  if (!trans_a && !trans_b) {
    ForEachOutputRow(m, k, n, [&](size_t i) {
      const float* arow = a.Row(i);
      float* crow = c->Row(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = alpha * arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b.Row(kk);
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    });
  } else if (trans_a && !trans_b) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = a.Row(kk);  // a is k x m
      const float* brow = b.Row(kk);
      for (size_t i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c->Row(i);
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    ForEachOutputRow(m, k, n, [&](size_t i) {
      const float* arow = a.Row(i);
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.Row(j);  // b is n x k
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += alpha * acc;
      }
    });
  } else {  // trans_a && trans_b
    ForEachOutputRow(m, k, n, [&](size_t i) {
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          acc += a.At(kk, i) * b.At(j, kk);
        }
        crow[j] += alpha * acc;
      }
    });
  }
}

void ShardedGemmTN(const Matrix& a, const Matrix& b, Matrix* c,
                   size_t shard_rows) {
  const size_t batch = a.rows();
  DEEPAQP_CHECK_EQ(batch, b.rows());
  DEEPAQP_CHECK_EQ(c->rows(), a.cols());
  DEEPAQP_CHECK_EQ(c->cols(), b.cols());
  DEEPAQP_CHECK_GT(shard_rows, 0u);
  const size_t num_shards = (batch + shard_rows - 1) / shard_rows;
  if (num_shards <= 1) {
    Gemm(a, true, b, false, 1.0f, 1.0f, c);
    return;
  }
  // One partial per shard, filled in parallel. The shard layout is a pure
  // function of the batch size, so the ascending-order reduction below
  // yields the same bits at every thread count.
  std::vector<Matrix> partials(num_shards);
  util::ParallelFor(0, num_shards, [&](size_t s) {
    const size_t lo = s * shard_rows;
    const size_t hi = std::min(batch, lo + shard_rows);
    Matrix& p = partials[s];
    p = Matrix(a.cols(), b.cols());
    for (size_t kk = lo; kk < hi; ++kk) {
      const float* arow = a.Row(kk);
      const float* brow = b.Row(kk);
      for (size_t i = 0; i < a.cols(); ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* prow = p.Row(i);
        for (size_t j = 0; j < b.cols(); ++j) prow[j] += av * brow[j];
      }
    }
  });
  for (const Matrix& p : partials) Axpy(1.0f, p, c);
}

void AddRowBroadcast(const Matrix& bias, Matrix* out) {
  DEEPAQP_CHECK_EQ(bias.rows(), 1u);
  DEEPAQP_CHECK_EQ(bias.cols(), out->cols());
  for (size_t r = 0; r < out->rows(); ++r) {
    float* row = out->Row(r);
    const float* b = bias.Row(0);
    for (size_t c = 0; c < out->cols(); ++c) row[c] += b[c];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    float* o = out.Row(0);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

void Axpy(float scale, const Matrix& b, Matrix* a) {
  DEEPAQP_CHECK_EQ(a->rows(), b.rows());
  DEEPAQP_CHECK_EQ(a->cols(), b.cols());
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += scale * b.data()[i];
  }
}

double SumSquares(const Matrix& m) {
  double acc = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return acc;
}

}  // namespace deepaqp::nn
