#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepaqp::nn {

void Matrix::RandomizeGaussian(util::Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  GatherRowsInto(indices, &out);
  return out;
}

void Matrix::GatherRowsInto(const std::vector<size_t>& indices,
                            Matrix* out) const {
  out->Resize(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    DEEPAQP_CHECK_LT(indices[i], rows_);
    std::copy(Row(indices[i]), Row(indices[i]) + cols_, out->Row(i));
  }
}

void Matrix::Serialize(util::ByteWriter& w) const {
  w.WriteU64(rows_);
  w.WriteU64(cols_);
  w.WriteF32Array(data_.data(), data_.size());
}

util::Result<Matrix> Matrix::Deserialize(util::ByteReader& r) {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadF32Vector());
  if (data.size() != rows * cols) {
    return util::Status::InvalidArgument("matrix payload size mismatch");
  }
  Matrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.data());
  return m;
}

// Gemm and ShardedGemmTN live in kernels.cc: they dispatch between the
// blocked kernel and the retained naive reference (nn/kernels.h).

void AddRowBroadcast(const Matrix& bias, Matrix* out) {
  DEEPAQP_CHECK_EQ(bias.rows(), 1u);
  DEEPAQP_CHECK_EQ(bias.cols(), out->cols());
  for (size_t r = 0; r < out->rows(); ++r) {
    float* row = out->Row(r);
    const float* b = bias.Row(0);
    for (size_t c = 0; c < out->cols(); ++c) row[c] += b[c];
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    float* o = out.Row(0);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

void Axpy(float scale, const Matrix& b, Matrix* a) {
  DEEPAQP_CHECK_EQ(a->rows(), b.rows());
  DEEPAQP_CHECK_EQ(a->cols(), b.cols());
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += scale * b.data()[i];
  }
}

double SumSquares(const Matrix& m) {
  double acc = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return acc;
}

bool AllFinite(const Matrix& m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

}  // namespace deepaqp::nn
