#include "nn/arena.h"

#include "util/failpoint.h"

namespace deepaqp::nn {

Matrix ScratchArena::Acquire() {
  // Chaos site: simulated allocator pressure. Dropping the pool forces every
  // caller down the fresh-allocation path; numerics are unaffected, so this
  // is the one site safe to enable under the full deterministic test suite.
  if (util::FailpointTriggered("arena/acquire")) pool_.clear();
  if (pool_.empty()) return Matrix();
  Matrix m = std::move(pool_.back());
  pool_.pop_back();
  return m;
}

void ScratchArena::Release(Matrix&& m) { pool_.push_back(std::move(m)); }

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace deepaqp::nn
