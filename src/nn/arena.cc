#include "nn/arena.h"

namespace deepaqp::nn {

Matrix ScratchArena::Acquire() {
  if (pool_.empty()) return Matrix();
  Matrix m = std::move(pool_.back());
  pool_.pop_back();
  return m;
}

void ScratchArena::Release(Matrix&& m) { pool_.push_back(std::move(m)); }

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace deepaqp::nn
