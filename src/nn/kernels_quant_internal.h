#ifndef DEEPAQP_NN_KERNELS_QUANT_INTERNAL_H_
#define DEEPAQP_NN_KERNELS_QUANT_INTERNAL_H_

// Shared contract between the portable quantized kernels (kernels_quant.cc)
// and the explicitly vectorized quant backend (kernels_quant_simd.cc). Same
// rule as kernels_internal.h: everything the generic path executes is
// defined out-of-line in kernels_quant.cc with the project-baseline ISA, so
// no AVX2/F16C instruction can be COMDAT-merged into the fallback path.

#include <cstddef>
#include <cstdint>

#include "nn/kernels.h"
#include "nn/kernels_internal.h"
#include "nn/kernels_quant.h"

namespace deepaqp::nn::internal {

/// int8 panel geometry: kQNr output columns per panel, kQKg k-bytes per
/// group. One (panel, group) cell is kQNr * kQKg = 32 bytes — one ymm load
/// — holding 4 consecutive k values for each of 8 consecutive columns in
/// column-major-by-4 order (see QuantizedLinear::weight_i8).
inline constexpr size_t kQNr = 8;
inline constexpr size_t kQKg = 4;

/// Rows each int8 activation value may reach: +/-127 (symmetric; -128 is
/// never produced, which is what makes the abs/sign maddubs trick exact —
/// |a| * sign(w, a) stays within +/-127*127 and two-term i16 sums within
/// 2 * 127 * 127 = 32258 < 32767, so no saturation ever occurs).
inline constexpr int kQMaxAbs = 127;

/// True when kernels_quant_simd.cc was built with AVX2+FMA+F16C flags.
bool QuantSimdCompiled();

/// "avx2+f16c" or "none" — which ISA the quant SIMD TU was built for.
const char* QuantSimdIsa();

/// acc[j] = sum_k qa[k] * W_q[k, j] for one quantized activation row
/// against all packed columns: `wq` is the full weight_i8 panel buffer,
/// `qa` holds kgroups * kQKg bytes (zero-padded), `acc` holds
/// n_panels * kQNr int32 lanes. Exact integer arithmetic — the two
/// implementations are bit-identical. The SIMD variant must only be called
/// when QuantSimdAvailable(kInt8) is true.
void Int8DotRowScalar(const int8_t* qa, const int8_t* wq, size_t kgroups,
                      size_t n_panels, int32_t* acc);
void Int8DotRowSimd(const int8_t* qa, const int8_t* wq, size_t kgroups,
                    size_t n_panels, int32_t* acc);

/// Fused dequantize + bias + activation over one finished int8 output row:
/// out[j] = act(acc[j] * (a_scale * w_scale[j]) + bias[j]). One definition
/// (kernels_quant.cc), called by both drivers — combined with the exact
/// integer accumulators this makes the whole int8 forward bit-identical
/// across the scalar and SIMD paths. `bias` may be null.
void DequantEpilogueRow(const int32_t* acc, float a_scale,
                        const float* w_scale, const float* bias,
                        Activation act, float leaky_slope, float* out,
                        size_t n);

/// Vectorized counterparts of the int8 row pre/post passes. Both are exact
/// mirrors of the scalar driver code (same float expressions, no FMA
/// contraction), so using them does not break the int8 scalar==SIMD
/// bit-identity contract. Only callable when QuantSimdAvailable(kInt8).
///
/// QuantizeActRowSimd: amax-scan + symmetric int8 quantization of one
/// activation row into `qa` (kgroups * kQKg bytes, zero-padded); returns
/// a_scale (0 for an all-zero row, in which case `qa` is untouched).
float QuantizeActRowSimd(const float* x, size_t k, size_t kgroups,
                         int8_t* qa);

/// DequantEpilogueRowSimd: vectorized DequantEpilogueRow for the
/// activations whose scalar form is pure mul/add/compare (identity, relu,
/// leaky-relu) — bitwise equal to the scalar definition. Returns false
/// without touching `out` for any other activation; the caller must then
/// use DequantEpilogueRow.
bool DequantEpilogueRowSimd(const int32_t* acc, float a_scale,
                            const float* w_scale, const float* bias,
                            Activation act, float leaky_slope, float* out,
                            size_t n);

/// fp16 micro-kernel: C_tile(kMr x kNr) = A_panel @ half_widen(B_panel)
/// over `kc` k steps. `a_panel` is a PackA panel (kMr-tall, kernels.cc
/// layout); `b_panel` is a QuantizedLinear::weight_f16 panel (kk * kNr +
/// jr). Both variants accumulate in fp32 with the same ascending-k order;
/// they differ only by FMA contraction (the usual 1e-5 contract). The SIMD
/// variant requires QuantSimdAvailable(kFp16).
void Fp16MicroKernelScalar(const float* a_panel, const uint16_t* b_panel,
                           size_t kc, float* acc);
void Fp16MicroKernelSimd(const float* a_panel, const uint16_t* b_panel,
                         size_t kc, float* acc);

/// Paired-panel fp16 micro-kernel: walks two adjacent B panels at once with
/// eight independent FMA chains (the same trick as the fp32 backend's 4x16
/// tile — a lone 4x8 tile cannot cover FMA latency x throughput). Each
/// column's accumulation order is identical to Fp16MicroKernelSimd, so the
/// result is bit-identical to two single-panel calls.
void Fp16MicroKernelSimdPaired(const float* a_panel, const uint16_t* b0,
                               const uint16_t* b1, size_t kc, float* acc0,
                               float* acc1);

/// Driver with an explicit vectorization switch — the public
/// QuantizedLinearForward resolves `use_simd` from the CPU once; the
/// SetQuantMode self-check calls both settings and cross-checks them.
void QuantizedLinearForwardImpl(const Matrix& x, const QuantizedLinear& q,
                                Activation act, float leaky_slope,
                                Matrix* out, bool use_simd);

}  // namespace deepaqp::nn::internal

#endif  // DEEPAQP_NN_KERNELS_QUANT_INTERNAL_H_
