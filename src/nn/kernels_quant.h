#ifndef DEEPAQP_NN_KERNELS_QUANT_H_
#define DEEPAQP_NN_KERNELS_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/status.h"

namespace deepaqp::util {
class Flags;
}  // namespace deepaqp::util

namespace deepaqp::nn {

class ScratchArena;
class Sequential;

/// Inference-only weight quantization mode for the decoder hot path.
///
/// * kOff: the canonical fp32 path — bit-identical to a binary without this
///   subsystem. The fp32 weights always stay canonical: snapshots serialize
///   fp32, training runs fp32, and quantized panels are derived views built
///   at Prepare/load time.
/// * kFp16: weights stored once as IEEE half floats in packed kNr-column
///   panels; the kernel widens each half back to fp32 (exact) and runs the
///   usual fp32 FMA micro-kernel, so the only error is the one-time weight
///   rounding (<= 2^-11 relative per weight).
/// * kInt8: per-output-channel symmetric int8 weights (scale_j =
///   max_k |W[k,j]| / 127) with per-row dynamic activation quantization
///   (a_scale_r = max_k |x[r,k]| / 127). Accumulation is exact int32
///   arithmetic, so the scalar oracle and the AVX2 maddubs kernel produce
///   bit-identical outputs, and the only float work is the fused
///   dequantize+bias+activation epilogue.
enum class QuantMode { kOff, kFp16, kInt8 };

/// Active quantization mode. Initialized once from the DEEPAQP_QUANT
/// environment variable ("off", "fp16", or "int8"; unset means off).
/// Unrecognized values warn to stderr and keep off; a recognized quantized
/// mode whose kernel self-check fails also warns and keeps off — the env
/// path never hard-fails (binaries that take --quant get a hard error via
/// ApplyQuantFlag instead). Note quantized execution additionally requires
/// the model to have been prepared (see VaeNet::PrepareQuantizedDecoder);
/// an unprepared model under a quantized mode keeps running fp32.
QuantMode ActiveQuantMode();

/// True when the vectorized kernel for `mode` is usable in this process:
/// the binary carries the quant intrinsics TU *and* the running CPU reports
/// AVX2+FMA+F16C (one TU carries both kernels, so both modes share the gate
/// — util::CpuInfo, maskable with DEEPAQP_CPU_DISABLE). When false the
/// scalar reference path runs instead; both quantized modes work on every
/// CPU.
bool QuantSimdAvailable(QuantMode mode);

/// Overrides the active quantization mode. For a quantized mode this first
/// runs the kernel self-check (scalar oracle vs vectorized kernel on fixed
/// deterministic inputs, plus quantize round-trip bounds) and fails with
/// FailedPrecondition — leaving the active mode unchanged — if any check
/// trips: quantized inference refuses to engage on a machine where its
/// kernels misbehave. Not safe while parallel compute is in flight; set it
/// up front (tests, benches, main()).
[[nodiscard]] util::Status SetQuantMode(QuantMode mode);

/// "off" / "fp16" / "int8".
const char* QuantModeName(QuantMode mode);

/// Parses "off" / "fp16" / "int8". Returns InvalidArgument on anything
/// else; `*mode` is untouched on error.
[[nodiscard]] util::Status ParseQuantMode(std::string_view name,
                                          QuantMode* mode);

/// Reads the `--quant=off|fp16|int8` flag and applies it via SetQuantMode
/// (deepaqp_cli and the bench/tool binaries; mirrors ApplyKernelFlag).
/// Unknown values and a failing kernel self-check return a descriptive
/// error instead of silently falling back.
[[nodiscard]] util::Status ApplyQuantFlag(const util::Flags& flags);

/// IEEE 754 binary16 conversions (software, round-to-nearest-even on
/// narrowing; widening is exact). Exposed for tests; the fp16 kernels use
/// hardware F16C when available, which implements the same rounding.
uint16_t FloatToHalf(float f);
float HalfToFloat(uint16_t h);

/// One Linear layer's weights re-packed for quantized inference. Built at
/// Prepare/load time from the canonical fp32 parameters; never serialized.
struct QuantizedLinear {
  size_t in = 0;   ///< K: input features (weight rows)
  size_t out = 0;  ///< N: output features (weight cols)
  QuantMode mode = QuantMode::kOff;

  /// kInt8: weights in 8-column panels of 4-k-deep byte groups,
  /// weight_i8[(p * ceil(in/4) + g) * 32 + jr * 4 + kk] =
  ///   quant(W[4g + kk, 8p + jr]), zero-padded in both jr and kk — exactly
  /// the operand order _mm256_maddubs_epi16 + _mm256_madd_epi16 reduce.
  AlignedVector<int8_t> weight_i8;
  /// kInt8: per-output-channel scale, scale[j] = max_k |W[k, j]| / 127.
  std::vector<float> scale;

  /// kFp16: halves in kNr-column panels, weight_f16[p * (in * kNr) +
  /// kk * kNr + jr] = half(W[kk, 8p + jr]) — the PR 3 PackB layout.
  AlignedVector<uint16_t> weight_f16;

  /// Dense copy of the fp32 bias (empty when the layer has none).
  std::vector<float> bias;
};

/// Quantizes one Linear (weight `w` is in x out, `bias` is 1 x out or
/// null-shaped). InvalidArgument for kOff or non-finite weights.
[[nodiscard]] util::Status QuantizeLinear(const Matrix& w, const Matrix& bias,
                                          QuantMode mode, QuantizedLinear* q);

/// out = act(dequant(x @ Wq) + bias): quantized replacement for
/// FusedLinearForward. The dequantize+bias+activation epilogue runs fused
/// on each finished row while its accumulators are cache-hot. Dispatches to
/// the vectorized kernel when QuantSimdAvailable(q.mode); the scalar path
/// is bit-identical for kInt8 (exact integer accumulation + one shared
/// epilogue definition) and within the usual 1e-5 FMA-contraction contract
/// for kFp16. Deterministic at every thread count (row blocks are a pure
/// function of the shape; each output element keeps one fixed accumulation
/// order). `out` must not alias `x`.
void QuantizedLinearForward(const Matrix& x, const QuantizedLinear& q,
                            Activation act, float leaky_slope, Matrix* out);

/// A quantized inference plan for a Sequential: the same Linear+activation
/// fusion schedule InferenceForwardInto derives dynamically, with every
/// Linear's weights re-packed. Built once at Prepare time.
struct QuantizedSequential {
  struct Step {
    QuantizedLinear linear;
    Activation act = Activation::kIdentity;  ///< fused follow-up activation
    float leaky_slope = 0.0f;
  };
  QuantMode mode = QuantMode::kOff;
  std::vector<Step> steps;

  bool engaged() const { return mode != QuantMode::kOff; }
};

/// Builds the plan for `seq` under `mode`. Supports stacks of Linear layers
/// with optional directly-following activations (including nested
/// Sequentials, which are flattened) — i.e. every decoder this library
/// builds. Returns Unimplemented for any other layer pattern so callers can
/// fall back to the fp32 path, and InvalidArgument for kOff.
[[nodiscard]] util::Status QuantizeSequential(const Sequential& seq,
                                              QuantMode mode,
                                              QuantizedSequential* plan);

/// Allocation-free forward through a quantized plan: the drop-in
/// counterpart of InferenceForwardInto. `out` must not alias `x`; `arena`
/// must be owned by the calling thread.
void QuantizedInferenceForwardInto(const QuantizedSequential& plan,
                                   const Matrix& x, Matrix* out,
                                   ScratchArena* arena);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_KERNELS_QUANT_H_
