#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/logging.h"

namespace deepaqp::nn {

Linear::Linear(size_t in_dim, size_t out_dim, util::Rng& rng) {
  weight.value = Matrix(in_dim, out_dim);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_dim + out_dim));
  weight.value.RandomizeGaussian(rng, stddev);
  bias.value = Matrix(1, out_dim);
  weight.ZeroGrad();
  bias.ZeroGrad();
}

std::unique_ptr<Linear> Linear::WithHeInit(size_t in_dim, size_t out_dim,
                                           util::Rng& rng) {
  auto layer = std::make_unique<Linear>(in_dim, out_dim, rng);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_dim));
  layer->weight.value.RandomizeGaussian(rng, stddev);
  return layer;
}

Matrix Linear::Forward(const Matrix& input) {
  input_cache_ = input;
  Matrix out;
  // Fused x W + b: the bias is added per row block while it is cache-hot
  // instead of in a second full pass. Same arithmetic and order as
  // Gemm + AddRowBroadcast (bias after the complete k accumulation).
  FusedLinearForward(input, weight.value, bias.value, Activation::kIdentity,
                     0.0f, &out);
  return out;
}

Matrix Linear::Backward(const Matrix& grad_output) {
  // dW += x^T dy ; db += colsum(dy) ; dx = dy W^T. The weight gradient is
  // accumulated over fixed minibatch shards in parallel with a fixed-order
  // reduction, so it is bit-identical at every thread count.
  ShardedGemmTN(input_cache_, grad_output, &weight.grad);
  Axpy(1.0f, ColumnSums(grad_output), &bias.grad);
  Matrix grad_input;
  Gemm(grad_output, false, weight.value, true, 1.0f, 0.0f, &grad_input);
  return grad_input;
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight);
  out->push_back(&bias);
}

void Linear::Serialize(util::ByteWriter& w) const {
  weight.value.Serialize(w);
  bias.value.Serialize(w);
}

util::Result<std::unique_ptr<Linear>> Linear::Deserialize(
    util::ByteReader& r) {
  auto layer = std::unique_ptr<Linear>(new Linear());
  DEEPAQP_ASSIGN_OR_RETURN(layer->weight.value, Matrix::Deserialize(r));
  DEEPAQP_ASSIGN_OR_RETURN(layer->bias.value, Matrix::Deserialize(r));
  if (layer->bias.value.rows() != 1 ||
      layer->bias.value.cols() != layer->weight.value.cols()) {
    return util::Status::InvalidArgument("linear layer shape mismatch");
  }
  layer->weight.ZeroGrad();
  layer->bias.ZeroGrad();
  return layer;
}

Matrix Relu::Forward(const Matrix& input) {
  Matrix out = input;
  mask_ = Matrix(input.rows(), input.cols());
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] > 0.0f) {
      mask_.data()[i] = 1.0f;
    } else {
      out.data()[i] = 0.0f;
    }
  }
  return out;
}

Matrix Relu::Backward(const Matrix& grad_output) {
  DEEPAQP_CHECK_EQ(grad_output.size(), mask_.size());
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] *= mask_.data()[i];
  }
  return grad;
}

Matrix LeakyRelu::Forward(const Matrix& input) {
  input_cache_ = input;
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] *= slope_;
  }
  return out;
}

Matrix LeakyRelu::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (input_cache_.data()[i] < 0.0f) grad.data()[i] *= slope_;
  }
  return grad;
}

Matrix Tanh::Forward(const Matrix& input) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  output_cache_ = out;
  return out;
}

Matrix Tanh::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const float y = output_cache_.data()[i];
    grad.data()[i] *= 1.0f - y * y;
  }
  return grad;
}

Matrix Sigmoid::Forward(const Matrix& input) {
  Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  output_cache_ = out;
  return out;
}

Matrix Sigmoid::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    const float y = output_cache_.data()[i];
    grad.data()[i] *= y * (1.0f - y);
  }
  return grad;
}

Matrix Sequential::Forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Matrix Sequential::Backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

void Sequential::Serialize(util::ByteWriter& w) const {
  w.WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    w.WriteString(layer->TypeName());
    layer->Serialize(w);
  }
}

util::Result<std::unique_ptr<Sequential>> Sequential::Deserialize(
    util::ByteReader& r) {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  auto seq = std::make_unique<Sequential>();
  for (uint64_t i = 0; i < n; ++i) {
    DEEPAQP_ASSIGN_OR_RETURN(std::string type, r.ReadString());
    if (type == "linear") {
      DEEPAQP_ASSIGN_OR_RETURN(auto layer, Linear::Deserialize(r));
      seq->Add(std::move(layer));
    } else if (type == "relu") {
      seq->Add(std::make_unique<Relu>());
    } else if (type == "leaky_relu") {
      DEEPAQP_ASSIGN_OR_RETURN(float slope, r.ReadF32());
      seq->Add(std::make_unique<LeakyRelu>(slope));
    } else if (type == "tanh") {
      seq->Add(std::make_unique<Tanh>());
    } else if (type == "sigmoid") {
      seq->Add(std::make_unique<Sigmoid>());
    } else {
      return util::Status::InvalidArgument("unknown layer type: " + type);
    }
  }
  return seq;
}

Matrix InferenceForward(const Linear& linear, const Matrix& x) {
  Matrix out;
  FusedLinearForward(x, linear.weight.value, linear.bias.value,
                     Activation::kIdentity, 0.0f, &out);
  return out;
}

void InferenceForwardInto(const Sequential& seq, const Matrix& x, Matrix* out,
                          ScratchArena* arena) {
  // Two destination buffers (out + one arena scratch) ping-pong through the
  // stack; each Linear is fused with a directly following activation, so a
  // (Linear, ReLU) block is one kernel call and zero intermediate Matrices.
  // The fused epilogue applies the bias after the complete k accumulation
  // and uses the same activation arithmetic as the layer loops, so outputs
  // match the layer-by-layer Sequential::Forward pass exactly.
  Matrix tmp = arena->Acquire();
  const Matrix* src = &x;
  Matrix* cur = nullptr;  // non-const alias of *src once src leaves x
  size_t l = 0;
  while (l < seq.num_layers()) {
    const Layer* layer = seq.layer(l);
    if (const auto* linear = dynamic_cast<const Linear*>(layer)) {
      Activation act = Activation::kIdentity;
      float slope = 0.0f;
      size_t consumed = 1;
      if (l + 1 < seq.num_layers()) {
        const Layer* next = seq.layer(l + 1);
        if (dynamic_cast<const Relu*>(next) != nullptr) {
          act = Activation::kRelu;
          consumed = 2;
        } else if (const auto* lk = dynamic_cast<const LeakyRelu*>(next)) {
          act = Activation::kLeakyRelu;
          slope = lk->slope();
          consumed = 2;
        } else if (dynamic_cast<const Tanh*>(next) != nullptr) {
          act = Activation::kTanh;
          consumed = 2;
        } else if (dynamic_cast<const Sigmoid*>(next) != nullptr) {
          act = Activation::kSigmoid;
          consumed = 2;
        }
      }
      Matrix* dst = (cur == out) ? &tmp : out;
      FusedLinearForward(*src, linear->weight.value, linear->bias.value, act,
                         slope, dst);
      cur = dst;
      src = dst;
      l += consumed;
      continue;
    }
    if (const auto* nested = dynamic_cast<const Sequential*>(layer)) {
      Matrix* dst = (cur == out) ? &tmp : out;
      InferenceForwardInto(*nested, *src, dst, arena);
      cur = dst;
      src = dst;
      ++l;
      continue;
    }
    // Standalone activation (not preceded by a Linear): run it in place,
    // copying x into out first if the data has not left the input yet.
    if (cur == nullptr) {
      out->Resize(x.rows(), x.cols());
      std::copy(x.data(), x.data() + x.size(), out->data());
      cur = out;
      src = out;
    }
    if (dynamic_cast<const Relu*>(layer) != nullptr) {
      ApplyActivation(Activation::kRelu, 0.0f, cur->data(), cur->size());
    } else if (const auto* leaky = dynamic_cast<const LeakyRelu*>(layer)) {
      ApplyActivation(Activation::kLeakyRelu, leaky->slope(), cur->data(),
                      cur->size());
    } else if (dynamic_cast<const Tanh*>(layer) != nullptr) {
      ApplyActivation(Activation::kTanh, 0.0f, cur->data(), cur->size());
    } else if (dynamic_cast<const Sigmoid*>(layer) != nullptr) {
      ApplyActivation(Activation::kSigmoid, 0.0f, cur->data(), cur->size());
    } else {
      DEEPAQP_CHECK(false);  // unknown layer type in inference path
    }
    ++l;
  }
  if (cur == nullptr) {
    // Empty stack: identity.
    out->Resize(x.rows(), x.cols());
    std::copy(x.data(), x.data() + x.size(), out->data());
  } else if (cur == &tmp) {
    std::swap(*out, tmp);
  }
  arena->Release(std::move(tmp));
}

Matrix InferenceForward(const Sequential& seq, const Matrix& x) {
  ScratchArena& arena = ScratchArena::ThreadLocal();
  Matrix out = arena.Acquire();
  InferenceForwardInto(seq, x, &out, &arena);
  return out;
}

std::unique_ptr<Sequential> MakeMlpTrunk(size_t in_dim, size_t hidden,
                                         int depth, util::Rng& rng) {
  DEEPAQP_CHECK_GE(depth, 1);
  auto seq = std::make_unique<Sequential>();
  size_t d = in_dim;
  for (int i = 0; i < depth; ++i) {
    seq->Add(Linear::WithHeInit(d, hidden, rng));
    seq->Add(std::make_unique<Relu>());
    d = hidden;
  }
  return seq;
}

size_t CountParameters(Layer& layer) {
  std::vector<Parameter*> params;
  layer.CollectParameters(&params);
  size_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  return total;
}

}  // namespace deepaqp::nn
