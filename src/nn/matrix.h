#ifndef DEEPAQP_NN_MATRIX_H_
#define DEEPAQP_NN_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "nn/aligned_buffer.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace deepaqp::nn {

/// Dense row-major fp32 matrix — the tensor type of the NN substrate.
/// Batches are rows; features are columns. Kept deliberately simple: the
/// library's models are MLPs, so 2-D is sufficient and keeps every backward
/// pass auditable.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    assert(IsBufferAligned(data_.data()));
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// Reshapes to rows x cols without initializing: contents are
  /// unspecified afterwards (no zero-fill pass — callers that Resize must
  /// fully overwrite). Reuses the existing allocation when capacity
  /// suffices, which is what makes scratch-arena buffers allocation-free
  /// in steady state.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    assert(IsBufferAligned(data_.data()));
  }

  /// Fills with N(0, stddev) entries.
  void RandomizeGaussian(util::Rng& rng, float stddev);

  /// Returns the subset of rows given by `indices` (minibatch gather).
  Matrix GatherRows(const std::vector<size_t>& indices) const;

  /// GatherRows into a caller-owned buffer (resized to indices.size() x
  /// cols); lets hot loops reuse one minibatch Matrix across iterations.
  void GatherRowsInto(const std::vector<size_t>& indices, Matrix* out) const;

  void Serialize(util::ByteWriter& w) const;
  static util::Result<Matrix> Deserialize(util::ByteReader& r);

 private:
  size_t rows_;
  size_t cols_;
  /// 64-byte-aligned storage (see nn/aligned_buffer.h): row 0 always sits
  /// on a cache-line boundary, so SIMD and int8 kernels may use aligned
  /// loads on the first row and never split a cache line on packed panels.
  AlignedVector<float> data_;
};

/// C = alpha * op(A) @ op(B) + beta * C, where op is optional transpose.
/// Shapes are checked; C is resized only when beta == 0. Dispatches to the
/// active kernel (see nn/kernels.h): the default cache-blocked kernel or
/// the naive reference. Either way the work layout is a pure function of
/// the shape and each output element keeps one fixed accumulation order,
/// so results are bit-identical at every thread count for a fixed kernel.
/// Implemented in kernels.cc.
void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* c);

/// C += A^T @ B, the minibatch weight-gradient product (A is batch x in,
/// B is batch x out). The batch is cut into fixed `shard_rows`-row shards;
/// shard partials are computed in parallel and reduced into C in ascending
/// shard order. The shard layout depends only on the batch size, so the
/// accumulated gradient is bit-identical at every thread count (per kernel
/// kind). Implemented in kernels.cc.
void ShardedGemmTN(const Matrix& a, const Matrix& b, Matrix* c,
                   size_t shard_rows = 64);

/// out[r, c] += bias[0, c] for every row. bias must be 1 x cols.
void AddRowBroadcast(const Matrix& bias, Matrix* out);

/// Column sums of `m` as a 1 x cols matrix (bias gradient).
Matrix ColumnSums(const Matrix& m);

/// a += scale * b (shapes must match).
void Axpy(float scale, const Matrix& b, Matrix* a);

/// Element-wise sum of squares (for gradient-norm diagnostics).
double SumSquares(const Matrix& m);

/// True when every entry is finite (divergence sentinel for trainers).
bool AllFinite(const Matrix& m);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_MATRIX_H_
