// Vectorized int8 / fp16 kernels over the packed quant panel layouts (see
// kernels_quant_internal.h). Compiled with -mavx2 -mfma -mf16c when the
// toolchain supports them (src/nn/CMakeLists.txt compile test); otherwise
// this TU degrades to unreachable stubs and QuantSimdCompiled() is false.
// Runtime dispatch lives in kernels_quant.cc (QuantSimdAvailable), so this
// code never executes on a CPU without the ISA.

#include "nn/kernels_quant_internal.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)
#define DEEPAQP_QUANT_SIMD_ISA_AVX2 1
#include <immintrin.h>
#endif

namespace deepaqp::nn::internal {

bool QuantSimdCompiled() {
#if defined(DEEPAQP_QUANT_SIMD_ISA_AVX2)
  return true;
#else
  return false;
#endif
}

const char* QuantSimdIsa() {
#if defined(DEEPAQP_QUANT_SIMD_ISA_AVX2)
  return "avx2+f16c";
#else
  return "none";
#endif
}

#if defined(DEEPAQP_QUANT_SIMD_ISA_AVX2)

namespace {

/// One (activation group) x (32-byte weight cell) step accumulated into 8
/// i32 column lanes. maddubs wants unsigned x signed operands; with the
/// symmetric +/-127 encoding, |a| * sign(w, a) == a * w exactly and the
/// paired i16 sums stay below 2 * 127 * 127 < 2^15, so no lane ever
/// saturates and the result equals the scalar integer oracle bit for bit.
/// `ua` is abs(a) hoisted by the caller — it only depends on the group, not
/// the panel, so recomputing it per cell would waste a port-01 op.
inline __m256i DotGroup(__m256i acc, __m256i a_bcast, __m256i ua,
                        const int8_t* cell, __m256i ones16) {
  const __m256i w =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cell));
  const __m256i sw = _mm256_sign_epi8(w, a_bcast);
  const __m256i prod16 = _mm256_maddubs_epi16(ua, sw);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones16));
}

/// Row x panel-block kernel: NB panel accumulators live in registers for
/// the whole k walk (NB <= 8 — with ua/a_bcast/ones/w that is 12 of the 16
/// ymm registers), so each weight cell costs one load plus three port-01
/// ops instead of a round trip through memory per group. Integer math:
/// bit-identical to the scalar oracle for any NB decomposition.
template <int NB>
inline void Int8DotBlock(const int8_t* qa, const int8_t* panels,
                         size_t kgroups, int32_t* acc) {
  const size_t pstride = kgroups * kQNr * kQKg;
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i accv[NB];
  for (int p = 0; p < NB; ++p) accv[p] = _mm256_setzero_si256();
  for (size_t g = 0; g < kgroups; ++g) {
    int32_t packed;
    std::memcpy(&packed, qa + g * kQKg, sizeof(packed));
    const __m256i a = _mm256_set1_epi32(packed);
    const __m256i ua = _mm256_abs_epi8(a);
    const int8_t* cell = panels + g * (kQNr * kQKg);
    for (int p = 0; p < NB; ++p) {  // NB is a constant: fully unrolled
      accv[p] = DotGroup(accv[p], a, ua, cell + p * pstride, ones16);
    }
  }
  for (int p = 0; p < NB; ++p) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + p * kQNr), accv[p]);
  }
}

}  // namespace

void Int8DotRowSimd(const int8_t* qa, const int8_t* wq, size_t kgroups,
                    size_t n_panels, int32_t* acc) {
  const size_t pstride = kgroups * kQNr * kQKg;
  size_t p = 0;
  for (; p + 8 <= n_panels; p += 8) {
    Int8DotBlock<8>(qa, wq + p * pstride, kgroups, acc + p * kQNr);
  }
  switch (n_panels - p) {
    case 7: Int8DotBlock<7>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 6: Int8DotBlock<6>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 5: Int8DotBlock<5>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 4: Int8DotBlock<4>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 3: Int8DotBlock<3>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 2: Int8DotBlock<2>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    case 1: Int8DotBlock<1>(qa, wq + p * pstride, kgroups, acc + p * kQNr); break;
    default: break;
  }
}

float QuantizeActRowSimd(const float* x, size_t k, size_t kgroups,
                         int8_t* qa) {
  // amax scan. Max is exact and order-independent, so lane-parallel
  // reduction equals the scalar sequential scan bit for bit.
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vmax = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    vmax = _mm256_max_ps(vmax,
                         _mm256_and_ps(absmask, _mm256_loadu_ps(x + i)));
  }
  float amax = 0.0f;
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  for (int l = 0; l < 8; ++l) amax = std::max(amax, lanes[l]);
  for (; i < k; ++i) amax = std::max(amax, std::fabs(x[i]));
  if (amax == 0.0f) return 0.0f;

  // Same two expressions as the scalar driver — identical scale / inverse.
  const float a_scale = amax / static_cast<float>(kQMaxAbs);
  const float inv = static_cast<float>(kQMaxAbs) / amax;

  // Convert 32 floats per step: mul, round (cvtps2dq honors the same
  // nearest-even mode lrintf uses), clamp, then narrow 4x8 i32 -> 32 i8.
  // packs* interleave 128-bit lanes, so one final cross-lane permute
  // restores element order. Values are clamped to +/-127 before packing,
  // so the packs saturation never fires.
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_set1_epi32(-kQMaxAbs);
  const __m256i hi = _mm256_set1_epi32(kQMaxAbs);
  const __m256i lane_fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  i = 0;
  for (; i + 32 <= k; i += 32) {
    __m256i c[4];
    for (int v = 0; v < 4; ++v) {
      const __m256 t =
          _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * v), vinv);
      c[v] = _mm256_min_epi32(hi, _mm256_max_epi32(lo, _mm256_cvtps_epi32(t)));
    }
    const __m256i p01 = _mm256_packs_epi32(c[0], c[1]);
    const __m256i p23 = _mm256_packs_epi32(c[2], c[3]);
    const __m256i bytes = _mm256_permutevar8x32_epi32(
        _mm256_packs_epi16(p01, p23), lane_fix);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(qa + i), bytes);
  }
  for (; i < k; ++i) {  // scalar tail: the exact code of the scalar driver
    long v = std::lrintf(x[i] * inv);
    v = std::min<long>(kQMaxAbs, std::max<long>(-kQMaxAbs, v));
    qa[i] = static_cast<int8_t>(v);
  }
  for (; i < kgroups * kQKg; ++i) qa[i] = 0;
  return a_scale;
}

bool DequantEpilogueRowSimd(const int32_t* acc, float a_scale,
                            const float* w_scale, const float* bias,
                            Activation act, float leaky_slope, float* out,
                            size_t n) {
  if (act != Activation::kIdentity && act != Activation::kRelu &&
      act != Activation::kLeakyRelu) {
    return false;
  }
  // Mirror of the scalar definition: cvt, mul by (a_scale * s[j]), add
  // bias — deliberately no FMA (the scalar TU is compiled without FMA, so
  // contraction there is impossible and using it here would break the
  // bit-identity contract). Activations use compare+blend shapes that
  // match the scalar branches exactly, including NaN propagation.
  const __m256 as = _mm256_set1_ps(a_scale);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 slope = _mm256_set1_ps(leaky_slope);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 v = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
    v = _mm256_mul_ps(v, _mm256_mul_ps(as, _mm256_loadu_ps(w_scale + j)));
    if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + j));
    if (act == Activation::kRelu) {
      // scalar: if (x <= 0) x = 0  — NaN compares false and passes through
      v = _mm256_blendv_ps(v, zero, _mm256_cmp_ps(v, zero, _CMP_LE_OQ));
    } else if (act == Activation::kLeakyRelu) {
      // scalar: if (x < 0) x *= slope
      v = _mm256_blendv_ps(v, _mm256_mul_ps(v, slope),
                           _mm256_cmp_ps(v, zero, _CMP_LT_OQ));
    }
    _mm256_storeu_ps(out + j, v);
  }
  for (; j < n; ++j) {  // scalar tail: same expressions as the shared def
    float v = static_cast<float>(acc[j]) * (a_scale * w_scale[j]);
    if (bias != nullptr) v += bias[j];
    if (act == Activation::kRelu) {
      if (v <= 0.0f) v = 0.0f;
    } else if (act == Activation::kLeakyRelu) {
      if (v < 0.0f) v *= leaky_slope;
    }
    out[j] = v;
  }
  return true;
}

/// 4x8 fp16 micro-tile: same register shape and ascending-k order as the
/// fp32 MicroKernelSimd; the only extra work per k step is one VCVTPH2PS
/// widening the packed half row (exact conversion, so the math differs from
/// the scalar oracle only by FMA contraction).
void Fp16MicroKernelSimd(const float* a_panel, const uint16_t* b_panel,
                         size_t kc, float* acc) {
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  for (size_t kk = 0; kk < kc; ++kk) {
    const __m256 bv = _mm256_cvtph_ps(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b_panel + kk * kNr)));
    const float* arow = a_panel + kk * kMr;
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 0), bv, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 1), bv, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 2), bv, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 3), bv, c3);
  }
  _mm256_storeu_ps(acc + 0 * kNr, c0);
  _mm256_storeu_ps(acc + 1 * kNr, c1);
  _mm256_storeu_ps(acc + 2 * kNr, c2);
  _mm256_storeu_ps(acc + 3 * kNr, c3);
}

void Fp16MicroKernelSimdPaired(const float* a_panel, const uint16_t* b0,
                               const uint16_t* b1, size_t kc, float* acc0,
                               float* acc1) {
  __m256 c00 = _mm256_setzero_ps();
  __m256 c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps();
  __m256 c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps();
  __m256 c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps();
  __m256 c31 = _mm256_setzero_ps();
  for (size_t kk = 0; kk < kc; ++kk) {
    const __m256 bv0 = _mm256_cvtph_ps(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b0 + kk * kNr)));
    const __m256 bv1 = _mm256_cvtph_ps(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b1 + kk * kNr)));
    const float* arow = a_panel + kk * kMr;
    const __m256 a0 = _mm256_broadcast_ss(arow + 0);
    const __m256 a1 = _mm256_broadcast_ss(arow + 1);
    const __m256 a2 = _mm256_broadcast_ss(arow + 2);
    const __m256 a3 = _mm256_broadcast_ss(arow + 3);
    c00 = _mm256_fmadd_ps(a0, bv0, c00);
    c01 = _mm256_fmadd_ps(a0, bv1, c01);
    c10 = _mm256_fmadd_ps(a1, bv0, c10);
    c11 = _mm256_fmadd_ps(a1, bv1, c11);
    c20 = _mm256_fmadd_ps(a2, bv0, c20);
    c21 = _mm256_fmadd_ps(a2, bv1, c21);
    c30 = _mm256_fmadd_ps(a3, bv0, c30);
    c31 = _mm256_fmadd_ps(a3, bv1, c31);
  }
  _mm256_storeu_ps(acc0 + 0 * kNr, c00);
  _mm256_storeu_ps(acc0 + 1 * kNr, c10);
  _mm256_storeu_ps(acc0 + 2 * kNr, c20);
  _mm256_storeu_ps(acc0 + 3 * kNr, c30);
  _mm256_storeu_ps(acc1 + 0 * kNr, c01);
  _mm256_storeu_ps(acc1 + 1 * kNr, c11);
  _mm256_storeu_ps(acc1 + 2 * kNr, c21);
  _mm256_storeu_ps(acc1 + 3 * kNr, c31);
}

#else  // !DEEPAQP_QUANT_SIMD_ISA_AVX2

// Unreachable stubs: QuantSimdAvailable() is false when the TU was built
// without the ISA, so dispatch can never route here.

void Int8DotRowSimd(const int8_t* qa, const int8_t* wq, size_t kgroups,
                    size_t n_panels, int32_t* acc) {
  (void)qa;
  (void)wq;
  (void)kgroups;
  (void)n_panels;
  (void)acc;
  DEEPAQP_CHECK(false);
}

float QuantizeActRowSimd(const float* x, size_t k, size_t kgroups,
                         int8_t* qa) {
  (void)x;
  (void)k;
  (void)kgroups;
  (void)qa;
  DEEPAQP_CHECK(false);
  return 0.0f;
}

bool DequantEpilogueRowSimd(const int32_t* acc, float a_scale,
                            const float* w_scale, const float* bias,
                            Activation act, float leaky_slope, float* out,
                            size_t n) {
  (void)acc;
  (void)a_scale;
  (void)w_scale;
  (void)bias;
  (void)act;
  (void)leaky_slope;
  (void)out;
  (void)n;
  DEEPAQP_CHECK(false);
  return false;
}

void Fp16MicroKernelSimd(const float* a_panel, const uint16_t* b_panel,
                         size_t kc, float* acc) {
  (void)a_panel;
  (void)b_panel;
  (void)kc;
  (void)acc;
  DEEPAQP_CHECK(false);
}

void Fp16MicroKernelSimdPaired(const float* a_panel, const uint16_t* b0,
                               const uint16_t* b1, size_t kc, float* acc0,
                               float* acc1) {
  (void)a_panel;
  (void)b0;
  (void)b1;
  (void)kc;
  (void)acc0;
  (void)acc1;
  DEEPAQP_CHECK(false);
}

#endif  // DEEPAQP_QUANT_SIMD_ISA_AVX2

}  // namespace deepaqp::nn::internal
