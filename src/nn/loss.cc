#include "nn/loss.h"

#include <cmath>

#include "util/logging.h"

namespace deepaqp::nn {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

LossResult BceWithLogits(const Matrix& logits, const Matrix& targets) {
  DEEPAQP_CHECK_EQ(logits.rows(), targets.rows());
  DEEPAQP_CHECK_EQ(logits.cols(), targets.cols());
  const size_t batch = logits.rows();
  LossResult out;
  out.grad = Matrix(logits.rows(), logits.cols());
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t i = 0; i < logits.size(); ++i) {
    const float z = logits.data()[i];
    const float t = targets.data()[i];
    total += std::max(z, 0.0f) - z * t + std::log1p(std::exp(-std::abs(z)));
    const float sig = 1.0f / (1.0f + std::exp(-z));
    out.grad.data()[i] = (sig - t) * inv_batch;
  }
  out.value = total / static_cast<double>(batch);
  return out;
}

LossResult MeanSquaredError(const Matrix& output, const Matrix& targets) {
  DEEPAQP_CHECK_EQ(output.rows(), targets.rows());
  DEEPAQP_CHECK_EQ(output.cols(), targets.cols());
  const size_t batch = output.rows();
  LossResult out;
  out.grad = Matrix(output.rows(), output.cols());
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t i = 0; i < output.size(); ++i) {
    const float d = output.data()[i] - targets.data()[i];
    total += 0.5 * static_cast<double>(d) * d;
    out.grad.data()[i] = d * inv_batch;
  }
  out.value = total / static_cast<double>(batch);
  return out;
}

LossResult GaussianKl(const Matrix& mu, const Matrix& logvar,
                      Matrix* grad_logvar) {
  DEEPAQP_CHECK_EQ(mu.rows(), logvar.rows());
  DEEPAQP_CHECK_EQ(mu.cols(), logvar.cols());
  const size_t batch = mu.rows();
  LossResult out;
  out.grad = Matrix(mu.rows(), mu.cols());
  *grad_logvar = Matrix(mu.rows(), mu.cols());
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t i = 0; i < mu.size(); ++i) {
    const float m = mu.data()[i];
    const float lv = logvar.data()[i];
    const float ev = std::exp(lv);
    total += -0.5 * (1.0f + lv - m * m - ev);
    out.grad.data()[i] = m * inv_batch;
    grad_logvar->data()[i] = 0.5f * (ev - 1.0f) * inv_batch;
  }
  out.value = total / static_cast<double>(batch);
  return out;
}

Matrix BernoulliLogLikelihoodRows(const Matrix& logits,
                                  const Matrix& targets) {
  DEEPAQP_CHECK_EQ(logits.rows(), targets.rows());
  DEEPAQP_CHECK_EQ(logits.cols(), targets.cols());
  Matrix out(logits.rows(), 1);
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* z = logits.Row(r);
    const float* t = targets.Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < logits.cols(); ++c) {
      // log p = t*z - softplus(z) in stable form.
      acc -= std::max(z[c], 0.0f) - z[c] * t[c] +
             std::log1p(std::exp(-std::abs(z[c])));
    }
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix GaussianLogDensityRows(const Matrix& x, const Matrix& mu,
                              const Matrix& logvar) {
  DEEPAQP_CHECK_EQ(x.rows(), mu.rows());
  DEEPAQP_CHECK_EQ(x.cols(), mu.cols());
  Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      const double lv = logvar.At(r, c);
      const double d = x.At(r, c) - mu.At(r, c);
      acc += -0.5 * (kLog2Pi + lv + d * d / std::exp(lv));
    }
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix StandardNormalLogDensityRows(const Matrix& x) {
  Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      const double v = x.At(r, c);
      acc += -0.5 * (kLog2Pi + v * v);
    }
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

}  // namespace deepaqp::nn
