#ifndef DEEPAQP_NN_ARENA_H_
#define DEEPAQP_NN_ARENA_H_

#include <utility>
#include <vector>

#include "nn/matrix.h"

namespace deepaqp::nn {

/// Free-list of Matrix buffers for allocation-free hot loops (inference
/// forwards, chunked sample generation). Acquire pops a previously released
/// buffer — its std::vector keeps whatever capacity it grew to, so a
/// steady-state loop performs zero heap allocations — and Release returns
/// it.
///
/// Ownership rules:
/// * An arena is single-threaded state. Use one arena per thread or per
///   work chunk (parallel chunk bodies each build their own); ThreadLocal()
///   gives convenience access for serial entry points.
/// * Acquire transfers ownership to the caller; contents and shape are
///   unspecified (callers Resize and overwrite). Release transfers it back.
///   Dropping an acquired Matrix instead of releasing it is legal — the
///   arena just re-grows later — so early returns are safe.
/// * Buffers never alias: each Acquire returns a distinct Matrix.
class ScratchArena {
 public:
  ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Pops a reusable buffer (empty Matrix if the pool is dry). Shape and
  /// contents are unspecified; callers must Resize and fully overwrite.
  Matrix Acquire();

  /// Returns a buffer to the pool for later reuse.
  void Release(Matrix&& m);

  size_t pooled() const { return pool_.size(); }

  /// Arena for the calling thread (serial convenience entry points).
  static ScratchArena& ThreadLocal();

 private:
  std::vector<Matrix> pool_;
};

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_ARENA_H_
