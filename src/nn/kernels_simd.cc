// The explicitly vectorized GEMM backend (DEEPAQP_KERNEL=simd): the same
// packed-panel blocked algorithm as kernels.cc, with the micro-kernel and
// the sigmoid written in intrinsics instead of relying on the
// auto-vectorizer. This is the only translation unit in the project built
// with explicit vector ISA flags (-mavx2 -mfma on x86; NEON is baseline on
// aarch64) — see src/nn/CMakeLists.txt. Nothing here may be called unless
// nn::SimdKernelAvailable() returned true, which includes a runtime cpuid /
// getauxval check (util::CpuInfo), so a binary built on an AVX2 host
// degrades to the portable blocked kernel on a lesser machine instead of
// dying on SIGILL the way the old -march=native build could.
//
// Numerics contract: identical packing, identical block decomposition, and
// identical per-element k accumulation order as BlockedGemmDriver — the
// only difference is FMA contraction inside each k step, so results stay
// within the kernel layer's 1e-5 reference-relative bound and are
// bit-identical at every --threads setting (the layout is a pure function
// of the shape). The fused epilogue calls the same scalar
// internal::ApplyEpilogueRow definition the blocked driver uses, which
// keeps FusedLinearForward bit-identical to the unfused pipeline under
// this backend too.

#include "nn/kernels_internal.h"

#include <cstring>
#include <vector>

#include "nn/aligned_buffer.h"
#include "util/logging.h"
#include "util/thread_pool.h"

#if defined(__AVX2__) && defined(__FMA__)
#define DEEPAQP_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define DEEPAQP_SIMD_ISA_NEON 1
#include <arm_neon.h>
#endif

namespace deepaqp::nn::internal {

bool SimdBackendCompiled() {
#if defined(DEEPAQP_SIMD_ISA_AVX2) || defined(DEEPAQP_SIMD_ISA_NEON)
  return true;
#else
  return false;
#endif
}

const char* SimdBackendIsa() {
#if defined(DEEPAQP_SIMD_ISA_AVX2)
  return "avx2+fma";
#elif defined(DEEPAQP_SIMD_ISA_NEON)
  return "neon";
#else
  return "none";
#endif
}

#if defined(DEEPAQP_SIMD_ISA_AVX2) || defined(DEEPAQP_SIMD_ISA_NEON)

namespace {

#if defined(DEEPAQP_SIMD_ISA_AVX2)

/// 4x8 micro-tile: each C row is one ymm accumulator; every k step is one
/// B-panel load, four A broadcasts, four FMAs — ascending kk, so each
/// element keeps one fixed accumulation order.
inline void MicroKernelSimd(const float* __restrict__ a_panel,
                            const float* __restrict__ b_panel, size_t kc,
                            float* __restrict__ acc) {
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  for (size_t kk = 0; kk < kc; ++kk) {
    const __m256 bv = _mm256_loadu_ps(b_panel + kk * kNr);
    const float* arow = a_panel + kk * kMr;
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 0), bv, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 1), bv, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 2), bv, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 3), bv, c3);
  }
  _mm256_storeu_ps(acc + 0 * kNr, c0);
  _mm256_storeu_ps(acc + 1 * kNr, c1);
  _mm256_storeu_ps(acc + 2 * kNr, c2);
  _mm256_storeu_ps(acc + 3 * kNr, c3);
}

/// Paired variant: two adjacent B panels per pass (a 4x16 register block,
/// eight independent FMA chains). Four chains alone cannot cover the FMA
/// latency-x-throughput product on AVX2 cores, so the single-panel kernel
/// runs at roughly half peak; the pair keeps both FMA ports busy. Each
/// panel's accumulation order is unchanged — pairing only interleaves
/// independent elements.
inline void MicroKernelSimdPair(const float* __restrict__ a_panel,
                                const float* __restrict__ b_panel0,
                                const float* __restrict__ b_panel1, size_t kc,
                                float* __restrict__ acc0,
                                float* __restrict__ acc1) {
  __m256 c00 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps();
  __m256 c01 = _mm256_setzero_ps();
  __m256 c11 = _mm256_setzero_ps();
  __m256 c21 = _mm256_setzero_ps();
  __m256 c31 = _mm256_setzero_ps();
  for (size_t kk = 0; kk < kc; ++kk) {
    const __m256 bv0 = _mm256_loadu_ps(b_panel0 + kk * kNr);
    const __m256 bv1 = _mm256_loadu_ps(b_panel1 + kk * kNr);
    const float* arow = a_panel + kk * kMr;
    __m256 av = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(av, bv0, c00);
    c01 = _mm256_fmadd_ps(av, bv1, c01);
    av = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(av, bv0, c10);
    c11 = _mm256_fmadd_ps(av, bv1, c11);
    av = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(av, bv0, c20);
    c21 = _mm256_fmadd_ps(av, bv1, c21);
    av = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(av, bv0, c30);
    c31 = _mm256_fmadd_ps(av, bv1, c31);
  }
  _mm256_storeu_ps(acc0 + 0 * kNr, c00);
  _mm256_storeu_ps(acc0 + 1 * kNr, c10);
  _mm256_storeu_ps(acc0 + 2 * kNr, c20);
  _mm256_storeu_ps(acc0 + 3 * kNr, c30);
  _mm256_storeu_ps(acc1 + 0 * kNr, c01);
  _mm256_storeu_ps(acc1 + 1 * kNr, c11);
  _mm256_storeu_ps(acc1 + 2 * kNr, c21);
  _mm256_storeu_ps(acc1 + 3 * kNr, c31);
}

/// Full-width tile store: C row (+)= acc row as one vector op.
inline void StoreRowFull(const float* __restrict__ accr,
                         float* __restrict__ crow, bool store) {
  const __m256 v = _mm256_loadu_ps(accr);
  if (store) {
    _mm256_storeu_ps(crow, v);
  } else {
    _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), v));
  }
}

#else  // DEEPAQP_SIMD_ISA_NEON

/// 4x8 micro-tile on NEON: each C row is two q-register accumulators
/// (eight independent FMA chains total), one fused multiply-accumulate per
/// lane per k step, ascending kk.
inline void MicroKernelSimd(const float* __restrict__ a_panel,
                            const float* __restrict__ b_panel, size_t kc,
                            float* __restrict__ acc) {
  float32x4_t c0l = vdupq_n_f32(0.0f), c0h = vdupq_n_f32(0.0f);
  float32x4_t c1l = vdupq_n_f32(0.0f), c1h = vdupq_n_f32(0.0f);
  float32x4_t c2l = vdupq_n_f32(0.0f), c2h = vdupq_n_f32(0.0f);
  float32x4_t c3l = vdupq_n_f32(0.0f), c3h = vdupq_n_f32(0.0f);
  for (size_t kk = 0; kk < kc; ++kk) {
    const float32x4_t bl = vld1q_f32(b_panel + kk * kNr);
    const float32x4_t bh = vld1q_f32(b_panel + kk * kNr + 4);
    const float32x4_t a4 = vld1q_f32(a_panel + kk * kMr);
    c0l = vfmaq_laneq_f32(c0l, bl, a4, 0);
    c0h = vfmaq_laneq_f32(c0h, bh, a4, 0);
    c1l = vfmaq_laneq_f32(c1l, bl, a4, 1);
    c1h = vfmaq_laneq_f32(c1h, bh, a4, 1);
    c2l = vfmaq_laneq_f32(c2l, bl, a4, 2);
    c2h = vfmaq_laneq_f32(c2h, bh, a4, 2);
    c3l = vfmaq_laneq_f32(c3l, bl, a4, 3);
    c3h = vfmaq_laneq_f32(c3h, bh, a4, 3);
  }
  vst1q_f32(acc + 0 * kNr, c0l);
  vst1q_f32(acc + 0 * kNr + 4, c0h);
  vst1q_f32(acc + 1 * kNr, c1l);
  vst1q_f32(acc + 1 * kNr + 4, c1h);
  vst1q_f32(acc + 2 * kNr, c2l);
  vst1q_f32(acc + 2 * kNr + 4, c2h);
  vst1q_f32(acc + 3 * kNr, c3l);
  vst1q_f32(acc + 3 * kNr + 4, c3h);
}

inline void StoreRowFull(const float* __restrict__ accr,
                         float* __restrict__ crow, bool store) {
  const float32x4_t vl = vld1q_f32(accr);
  const float32x4_t vh = vld1q_f32(accr + 4);
  if (store) {
    vst1q_f32(crow, vl);
    vst1q_f32(crow + 4, vh);
  } else {
    vst1q_f32(crow, vaddq_f32(vld1q_f32(crow), vl));
    vst1q_f32(crow + 4, vaddq_f32(vld1q_f32(crow + 4), vh));
  }
}

#endif  // ISA select

/// Spills one micro-tile accumulator block into C, honoring the ragged
/// edges (the packed panels are zero-padded, so acc always holds a full
/// kMr x kNr block; only the store respects m_eff / n_eff).
inline void StoreTile(const float* __restrict__ acc, size_t m_eff,
                      size_t n_eff, bool store, float* c, size_t ldc,
                      size_t r0, size_t j0) {
  for (size_t ir = 0; ir < m_eff; ++ir) {
    float* crow = c + (r0 + ir) * ldc + j0;
    const float* accr = acc + ir * kNr;
    if (n_eff == kNr) {
      StoreRowFull(accr, crow, store);
    } else if (store) {
      for (size_t jr = 0; jr < n_eff; ++jr) crow[jr] = accr[jr];
    } else {
      for (size_t jr = 0; jr < n_eff; ++jr) crow[jr] += accr[jr];
    }
  }
}

AlignedVector<float>& TlsBPack() {
  thread_local AlignedVector<float> buf;
  return buf;
}

}  // namespace

void SimdGemmDriver(const View& a, const View& b, size_t m, size_t k,
                    size_t n, float alpha, bool overwrite, const Epilogue* epi,
                    float* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    for (size_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      if (overwrite) std::memset(row, 0, n * sizeof(float));
      if (epi != nullptr) ApplyEpilogueRow(*epi, row, n);
    }
    return;
  }

  const size_t kblocks = CeilDiv(k, kKc);
  const size_t n_panels = CeilDiv(n, kNr);
  const size_t b_block_stride = n_panels * kKc * kNr;

  // Identical packing and sharing discipline as the blocked driver: one
  // packed copy of op(B) in the caller's thread-local buffer, read-only to
  // the helper lanes while the caller blocks in ParallelFor.
  AlignedVector<float>& b_pack = TlsBPack();
  if (b_pack.size() < kblocks * b_block_stride) {
    b_pack.resize(kblocks * b_block_stride);
  }
  for (size_t kb = 0; kb < kblocks; ++kb) {
    const size_t k0 = kb * kKc;
    const size_t kc = std::min(kKc, k - k0);
    PackB(b, k0, kc, n, b_pack.data() + kb * b_block_stride);
  }
  const float* b_packed = b_pack.data();

  const size_t tasks = CeilDiv(m, kMc);
  const auto body = [&, b_packed](size_t t) {
    thread_local AlignedVector<float> a_pack;
    const size_t i0 = t * kMc;
    const size_t mc = std::min(kMc, m - i0);
    const size_t m_panels = CeilDiv(mc, kMr);
    if (a_pack.size() < m_panels * kKc * kMr) {
      a_pack.resize(m_panels * kKc * kMr);
    }
    for (size_t kb = 0; kb < kblocks; ++kb) {
      const size_t k0 = kb * kKc;
      const size_t kc = std::min(kKc, k - k0);
      PackA(a, i0, mc, k0, kc, alpha, a_pack.data());
      const bool store = overwrite && kb == 0;
      const float* b_block = b_packed + kb * b_block_stride;
      for (size_t mp = 0; mp < m_panels; ++mp) {
        const float* a_panel = a_pack.data() + mp * (kc * kMr);
        const size_t r0 = i0 + mp * kMr;
        const size_t m_eff = std::min(kMr, mc - mp * kMr);
        size_t p = 0;
#if defined(DEEPAQP_SIMD_ISA_AVX2)
        for (; p + 1 < n_panels; p += 2) {
          alignas(32) float acc0[kMr * kNr];
          alignas(32) float acc1[kMr * kNr];
          MicroKernelSimdPair(a_panel, b_block + p * (kc * kNr),
                              b_block + (p + 1) * (kc * kNr), kc, acc0,
                              acc1);
          const size_t j0 = p * kNr;
          StoreTile(acc0, m_eff, std::min(kNr, n - j0), store, c, ldc, r0,
                    j0);
          StoreTile(acc1, m_eff, std::min(kNr, n - j0 - kNr), store, c, ldc,
                    r0, j0 + kNr);
        }
#endif
        for (; p < n_panels; ++p) {
          alignas(32) float acc[kMr * kNr];
          MicroKernelSimd(a_panel, b_block + p * (kc * kNr), kc, acc);
          const size_t j0 = p * kNr;
          StoreTile(acc, m_eff, std::min(kNr, n - j0), store, c, ldc, r0,
                    j0);
        }
      }
    }
    if (epi != nullptr) {
      for (size_t i = i0; i < i0 + mc; ++i) {
        ApplyEpilogueRow(*epi, c + i * ldc, n);
      }
    }
  };

  if (tasks >= 2 && m * k * n >= kParallelFlopCutoff) {
    util::ParallelFor(0, tasks, body);
  } else {
    for (size_t t = 0; t < tasks; ++t) body(t);
  }
}

namespace {

/// Scalar twin of the vector FastExp below, for the < one-vector tail.
/// Same polynomial as internal::FastExp in kernels.cc.
inline float ScalarFastExp(float x) {
  float z = x * 1.44269504088896341f;  // log2(e)
  z = z < -126.0f ? -126.0f : z;
  z = z > 126.0f ? 126.0f : z;
  const float shifted = z + 12582912.0f;  // 1.5 * 2^23
  int32_t ibits;
  std::memcpy(&ibits, &shifted, sizeof(ibits));
  const int32_t nexp = ibits - 0x4B400000;
  const float f = z - (shifted - 12582912.0f);  // f in [-0.5, 0.5]
  const float u = f * 0.693147180559945286f;    // ln 2
  float p = 1.0f / 720.0f;
  p = p * u + 1.0f / 120.0f;
  p = p * u + 1.0f / 24.0f;
  p = p * u + 1.0f / 6.0f;
  p = p * u + 0.5f;
  p = p * u + 1.0f;
  p = p * u + 1.0f;
  const int32_t sbits = (nexp + 127) << 23;
  float scale;
  std::memcpy(&scale, &sbits, sizeof(scale));
  return p * scale;
}

#if defined(DEEPAQP_SIMD_ISA_AVX2)

/// Eight-lane FastExp: the same 2^(x * log2 e) split + degree-6 polynomial,
/// with the Horner steps contracted by FMA.
inline __m256 FastExpAvx2(__m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  __m256 z = _mm256_mul_ps(x, log2e);
  z = _mm256_max_ps(z, _mm256_set1_ps(-126.0f));
  z = _mm256_min_ps(z, _mm256_set1_ps(126.0f));
  const __m256 magic = _mm256_set1_ps(12582912.0f);  // 1.5 * 2^23
  const __m256 shifted = _mm256_add_ps(z, magic);
  const __m256i nexp = _mm256_sub_epi32(_mm256_castps_si256(shifted),
                                        _mm256_set1_epi32(0x4B400000));
  const __m256 f = _mm256_sub_ps(z, _mm256_sub_ps(shifted, magic));
  const __m256 u = _mm256_mul_ps(f, _mm256_set1_ps(0.693147180559945286f));
  __m256 p = _mm256_set1_ps(1.0f / 720.0f);
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(1.0f / 120.0f));
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(1.0f / 24.0f));
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(1.0f / 6.0f));
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(0.5f));
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(1.0f));
  p = _mm256_fmadd_ps(p, u, _mm256_set1_ps(1.0f));
  const __m256i sbits = _mm256_slli_epi32(
      _mm256_add_epi32(nexp, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(sbits));
}

#endif

}  // namespace

void SimdSigmoid(const float* x, float* out, size_t n) {
  size_t i = 0;
#if defined(DEEPAQP_SIMD_ISA_AVX2)
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 signbit = _mm256_set1_ps(-0.0f);
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 e = FastExpAvx2(_mm256_xor_ps(v, signbit));  // exp(-x)
    _mm256_storeu_ps(out + i, _mm256_div_ps(one, _mm256_add_ps(one, e)));
  }
#endif
  // NEON builds take the scalar FastExp loop whole (the compiler
  // vectorizes it against baseline NEON); AVX2 builds use it only for the
  // sub-vector tail.
  for (; i < n; ++i) out[i] = 1.0f / (1.0f + ScalarFastExp(-x[i]));
}

#else  // no vector ISA compiled in

// Stubs keep the link whole on toolchains without the flags. They are
// unreachable: SimdKernelAvailable() is false when SimdBackendCompiled()
// is, and the dispatch never routes here.
void SimdGemmDriver(const View&, const View&, size_t, size_t, size_t, float,
                    bool, const Epilogue*, float*, size_t) {
  DEEPAQP_CHECK(false);
}

void SimdSigmoid(const float*, float*, size_t) { DEEPAQP_CHECK(false); }

#endif

}  // namespace deepaqp::nn::internal
