#include "nn/kernels_quant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/aligned_buffer.h"
#include "nn/arena.h"
#include "nn/kernels_internal.h"
#include "nn/kernels_quant_internal.h"
#include "nn/layers.h"
#include "util/cpu_features.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepaqp::nn {

namespace {

using internal::CeilDiv;
using internal::Epilogue;
using internal::kMc;
using internal::kMr;
using internal::kNr;
using internal::kParallelFlopCutoff;
using internal::kQKg;
using internal::kQMaxAbs;
using internal::kQNr;
using internal::View;

}  // namespace

// ---------------------------------------------------------------------------
// Half-precision conversions
// ---------------------------------------------------------------------------

/// float -> binary16 with round-to-nearest-even — the same rounding VCVTPS2PH
/// performs, so panels built here match what F16C hardware would produce.
uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  uint32_t mant = x & 0x7FFFFFu;
  const uint32_t exp_f = (x >> 23) & 0xFFu;
  if (exp_f == 0xFFu) {  // inf / NaN (keep NaN-ness in the top mantissa bit)
    return static_cast<uint16_t>(sign | 0x7C00u | (mant != 0 ? 0x200u : 0u));
  }
  const int32_t exp_h = static_cast<int32_t>(exp_f) - 127 + 15;
  if (exp_h >= 31) return static_cast<uint16_t>(sign | 0x7C00u);  // -> inf
  if (exp_h <= 0) {
    // Subnormal half (or underflow to zero): shift the implicit-1 mantissa
    // down and round to nearest even on the dropped bits.
    if (exp_h < -10) return static_cast<uint16_t>(sign);
    mant |= 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exp_h);  // 14..24
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;  // may carry into the exponent field: still correct
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exp_h) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) {
    ++half;  // mantissa carry rolls into the exponent / infinity correctly
  }
  return static_cast<uint16_t>(half);
}

/// binary16 -> float: exact (every half value is representable in float).
float HalfToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp_h = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp_h == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize the mantissa into float's implicit-1 form.
      uint32_t m = mant;
      int e = -1;
      do {
        m <<= 1;
        ++e;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else if (exp_h == 31) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp_h - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// ---------------------------------------------------------------------------
// Quantization (Prepare-time, off the hot path)
// ---------------------------------------------------------------------------

util::Status QuantizeLinear(const Matrix& w, const Matrix& bias,
                            QuantMode mode, QuantizedLinear* q) {
  if (mode == QuantMode::kOff) {
    return util::Status::InvalidArgument(
        "QuantizeLinear: mode must be fp16 or int8");
  }
  if (!AllFinite(w)) {
    return util::Status::InvalidArgument(
        "QuantizeLinear: weight matrix has non-finite entries");
  }
  const size_t k = w.rows();
  const size_t n = w.cols();
  if (bias.size() != 0 && (bias.rows() != 1 || bias.cols() != n)) {
    return util::Status::InvalidArgument("QuantizeLinear: bias shape mismatch");
  }
  QuantizedLinear out;
  out.in = k;
  out.out = n;
  out.mode = mode;
  if (bias.size() != 0) {
    out.bias.assign(bias.data(), bias.data() + n);
  }
  if (mode == QuantMode::kInt8) {
    const size_t kgroups = CeilDiv(k, kQKg);
    const size_t n_panels = CeilDiv(n, kQNr);
    out.scale.assign(n, 0.0f);
    std::vector<float> inv(n, 0.0f);
    for (size_t j = 0; j < n; ++j) {
      float amax = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        amax = std::max(amax, std::fabs(w.At(kk, j)));
      }
      if (amax > 0.0f) {
        out.scale[j] = amax / static_cast<float>(kQMaxAbs);
        inv[j] = static_cast<float>(kQMaxAbs) / amax;
      }
    }
    out.weight_i8.assign(n_panels * kgroups * kQNr * kQKg, 0);
    for (size_t p = 0; p < n_panels; ++p) {
      for (size_t g = 0; g < kgroups; ++g) {
        int8_t* cell = out.weight_i8.data() + (p * kgroups + g) * (kQNr * kQKg);
        for (size_t jr = 0; jr < kQNr; ++jr) {
          const size_t j = p * kQNr + jr;
          if (j >= n) break;  // trailing panels stay zero-padded
          for (size_t kk = 0; kk < kQKg; ++kk) {
            const size_t kidx = g * kQKg + kk;
            if (kidx >= k) break;
            long v = std::lrintf(w.At(kidx, j) * inv[j]);
            v = std::min<long>(kQMaxAbs, std::max<long>(-kQMaxAbs, v));
            cell[jr * kQKg + kk] = static_cast<int8_t>(v);
          }
        }
      }
    }
  } else {
    const size_t n_panels = CeilDiv(n, kNr);
    out.weight_f16.assign(n_panels * k * kNr, 0);
    for (size_t p = 0; p < n_panels; ++p) {
      uint16_t* panel = out.weight_f16.data() + p * (k * kNr);
      const size_t n_eff = std::min(kNr, n - p * kNr);
      for (size_t kk = 0; kk < k; ++kk) {
        for (size_t jr = 0; jr < n_eff; ++jr) {
          panel[kk * kNr + jr] = FloatToHalf(w.At(kk, p * kNr + jr));
        }
      }
    }
  }
  *q = std::move(out);
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Scalar reference kernels + the one shared epilogue definition
// ---------------------------------------------------------------------------

namespace internal {

void Int8DotRowScalar(const int8_t* qa, const int8_t* wq, size_t kgroups,
                      size_t n_panels, int32_t* acc) {
  for (size_t p = 0; p < n_panels; ++p) {
    const int8_t* panel = wq + p * (kgroups * kQNr * kQKg);
    int32_t* accp = acc + p * kQNr;
    for (size_t jr = 0; jr < kQNr; ++jr) accp[jr] = 0;
    for (size_t g = 0; g < kgroups; ++g) {
      const int8_t* cell = panel + g * (kQNr * kQKg);
      const int8_t* ag = qa + g * kQKg;
      for (size_t jr = 0; jr < kQNr; ++jr) {
        int32_t s = 0;
        for (size_t kk = 0; kk < kQKg; ++kk) {
          s += static_cast<int32_t>(ag[kk]) *
               static_cast<int32_t>(cell[jr * kQKg + kk]);
        }
        accp[jr] += s;
      }
    }
  }
}

void DequantEpilogueRow(const int32_t* acc, float a_scale,
                        const float* w_scale, const float* bias,
                        Activation act, float leaky_slope, float* out,
                        size_t n) {
  const int32_t* __restrict__ a = acc;
  const float* __restrict__ s = w_scale;
  float* __restrict__ o = out;
  if (bias != nullptr) {
    const float* __restrict__ b = bias;
#pragma GCC ivdep
    for (size_t j = 0; j < n; ++j) {
      o[j] = static_cast<float>(a[j]) * (a_scale * s[j]) + b[j];
    }
  } else {
#pragma GCC ivdep
    for (size_t j = 0; j < n; ++j) {
      o[j] = static_cast<float>(a[j]) * (a_scale * s[j]);
    }
  }
  ApplyActivation(act, leaky_slope, out, n);
}

void Fp16MicroKernelScalar(const float* a_panel, const uint16_t* b_panel,
                           size_t kc, float* acc) {
  for (size_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  for (size_t kk = 0; kk < kc; ++kk) {
    const float* arow = a_panel + kk * kMr;
    const uint16_t* brow = b_panel + kk * kNr;
    float bw[kNr];
    for (size_t jr = 0; jr < kNr; ++jr) bw[jr] = HalfToFloat(brow[jr]);
    for (size_t ir = 0; ir < kMr; ++ir) {
      const float av = arow[ir];
      float* accr = acc + ir * kNr;
      for (size_t jr = 0; jr < kNr; ++jr) accr[jr] += av * bw[jr];
    }
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Forward drivers
// ---------------------------------------------------------------------------

namespace {

/// int8 forward: per row, quantize the activations once (dynamic symmetric
/// scale), run the integer dot kernel per 8-column panel, then the fused
/// dequant+bias+activation epilogue while the accumulators are hot.
/// Row blocks are a pure function of m, every row is independent, and the
/// integer accumulation is exact, so the output is bit-identical at every
/// thread count and across the scalar/SIMD kernels.
void Int8ForwardDriver(const Matrix& x, const QuantizedLinear& q,
                       Activation act, float leaky_slope, Matrix* out,
                       bool use_simd) {
  const size_t m = x.rows();
  const size_t k = q.in;
  const size_t n = q.out;
  out->Resize(m, n);
  if (m == 0 || n == 0) return;
  const size_t kgroups = CeilDiv(k, kQKg);
  const size_t n_panels = CeilDiv(n, kQNr);
  const float* bias = q.bias.empty() ? nullptr : q.bias.data();
  const auto body = [&](size_t t) {
    thread_local AlignedVector<int8_t> qa;
    thread_local AlignedVector<int32_t> acc;
    if (qa.size() < kgroups * kQKg) qa.resize(kgroups * kQKg);
    if (acc.size() < n_panels * kQNr) acc.resize(n_panels * kQNr);
    const size_t r0 = t * kMc;
    const size_t r1 = std::min(m, r0 + kMc);
    for (size_t r = r0; r < r1; ++r) {
      const float* xr = x.Row(r);
      float a_scale = 0.0f;
      if (use_simd) {
        a_scale = internal::QuantizeActRowSimd(xr, k, kgroups, qa.data());
      } else {
        float amax = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          amax = std::max(amax, std::fabs(xr[kk]));
        }
        if (amax != 0.0f) {
          a_scale = amax / static_cast<float>(kQMaxAbs);
          const float inv = static_cast<float>(kQMaxAbs) / amax;
          size_t kk = 0;
          for (; kk < k; ++kk) {
            long v = std::lrintf(xr[kk] * inv);
            v = std::min<long>(kQMaxAbs, std::max<long>(-kQMaxAbs, v));
            qa[kk] = static_cast<int8_t>(v);
          }
          for (; kk < kgroups * kQKg; ++kk) qa[kk] = 0;
        }
      }
      if (a_scale == 0.0f) {
        // All-zero row (or k == 0): the product is exactly zero.
        std::fill(acc.begin(), acc.begin() + n_panels * kQNr, 0);
      } else if (use_simd) {
        internal::Int8DotRowSimd(qa.data(), q.weight_i8.data(), kgroups,
                                 n_panels, acc.data());
      } else {
        internal::Int8DotRowScalar(qa.data(), q.weight_i8.data(), kgroups,
                                   n_panels, acc.data());
      }
      if (!use_simd ||
          !internal::DequantEpilogueRowSimd(acc.data(), a_scale,
                                            q.scale.data(), bias, act,
                                            leaky_slope, out->Row(r), n)) {
        internal::DequantEpilogueRow(acc.data(), a_scale, q.scale.data(),
                                     bias, act, leaky_slope, out->Row(r), n);
      }
    }
  };
  const size_t tasks = CeilDiv(m, kMc);
  if (tasks >= 2 && m * k * n >= kParallelFlopCutoff) {
    util::ParallelFor(0, tasks, body);
  } else {
    for (size_t t = 0; t < tasks; ++t) body(t);
  }
}

/// fp16 forward: PackA row panels (the PR 3 packer, alpha = 1) against the
/// pre-packed half panels; the micro-kernel widens each half row and runs
/// the usual 4x8 fp32 accumulation, then the shared fp32 epilogue
/// (ApplyEpilogueRow) finishes each row. No K blocking: a full-depth half
/// panel is kNr * k * 2 bytes, L1-resident for every decoder this library
/// builds.
void Fp16ForwardDriver(const Matrix& x, const QuantizedLinear& q,
                       Activation act, float leaky_slope, Matrix* out,
                       bool use_simd) {
  const size_t m = x.rows();
  const size_t k = q.in;
  const size_t n = q.out;
  out->Resize(m, n);
  if (m == 0 || n == 0) return;
  const size_t n_panels = CeilDiv(n, kNr);
  const Epilogue epi{q.bias.empty() ? nullptr : q.bias.data(), act,
                     leaky_slope};
  const View xv{x.data(), k, 1};
  const auto body = [&](size_t t) {
    thread_local AlignedVector<float> a_pack;
    const size_t i0 = t * kMc;
    const size_t mc = std::min(kMc, m - i0);
    const size_t m_panels = CeilDiv(mc, kMr);
    if (a_pack.size() < m_panels * kMr * k) a_pack.resize(m_panels * kMr * k);
    internal::PackA(xv, i0, mc, 0, k, 1.0f, a_pack.data());
    float acc[kMr * kNr];
    float acc1[kMr * kNr];
    for (size_t mp = 0; mp < m_panels; ++mp) {
      const size_t r0 = i0 + mp * kMr;
      const size_t m_eff = std::min(kMr, mc - mp * kMr);
      const float* ap = a_pack.data() + mp * (k * kMr);
      const auto copy_panel = [&](size_t p, const float* tile) {
        const size_t j0 = p * kNr;
        const size_t n_eff = std::min(kNr, n - j0);
        for (size_t ir = 0; ir < m_eff; ++ir) {
          std::memcpy(out->Row(r0 + ir) + j0, tile + ir * kNr,
                      n_eff * sizeof(float));
        }
      };
      size_t p = 0;
      if (use_simd) {
        // Paired panels keep eight FMA chains in flight (bit-identical to
        // two single-panel calls — same per-column accumulation order).
        for (; p + 2 <= n_panels; p += 2) {
          const uint16_t* b0 = q.weight_f16.data() + p * (k * kNr);
          const uint16_t* b1 = q.weight_f16.data() + (p + 1) * (k * kNr);
          internal::Fp16MicroKernelSimdPaired(ap, b0, b1, k, acc, acc1);
          copy_panel(p, acc);
          copy_panel(p + 1, acc1);
        }
      }
      for (; p < n_panels; ++p) {
        const uint16_t* bp = q.weight_f16.data() + p * (k * kNr);
        if (use_simd) {
          internal::Fp16MicroKernelSimd(ap, bp, k, acc);
        } else {
          internal::Fp16MicroKernelScalar(ap, bp, k, acc);
        }
        copy_panel(p, acc);
      }
    }
    for (size_t ir = 0; ir < mc; ++ir) {
      internal::ApplyEpilogueRow(epi, out->Row(i0 + ir), n);
    }
  };
  const size_t tasks = CeilDiv(m, kMc);
  if (tasks >= 2 && m * k * n >= kParallelFlopCutoff) {
    util::ParallelFor(0, tasks, body);
  } else {
    for (size_t t = 0; t < tasks; ++t) body(t);
  }
}

}  // namespace

namespace internal {

void QuantizedLinearForwardImpl(const Matrix& x, const QuantizedLinear& q,
                                Activation act, float leaky_slope,
                                Matrix* out, bool use_simd) {
  DEEPAQP_CHECK(q.mode != QuantMode::kOff);
  DEEPAQP_CHECK_EQ(x.cols(), q.in);
  if (q.mode == QuantMode::kInt8) {
    Int8ForwardDriver(x, q, act, leaky_slope, out, use_simd);
  } else {
    Fp16ForwardDriver(x, q, act, leaky_slope, out, use_simd);
  }
}

}  // namespace internal

bool QuantSimdAvailable(QuantMode mode) {
  if (mode == QuantMode::kOff) return false;
  if (!internal::QuantSimdCompiled()) return false;
  // The quant SIMD TU is compiled as one unit with -mavx2 -mfma -mf16c, so
  // entering *any* of its kernels requires all three features: the compiler
  // may use every enabled ISA anywhere in the TU.
  const util::CpuFeatures& cpu = util::CpuInfo();
  return cpu.avx2 && cpu.fma && cpu.f16c;
}

void QuantizedLinearForward(const Matrix& x, const QuantizedLinear& q,
                            Activation act, float leaky_slope, Matrix* out) {
  internal::QuantizedLinearForwardImpl(x, q, act, leaky_slope, out,
                                       QuantSimdAvailable(q.mode));
  // Same chaos site as the fp32 GEMM dispatch (kernels.cc): quantized
  // inference replaces that path at sampling time, so fault injection must
  // keep reaching the decoder forward for the scrub sentinels to stay
  // covered under DEEPAQP_QUANT != off.
  if (out->size() > 0 && util::FailpointTriggered("nn/gemm")) {
    out->data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

// ---------------------------------------------------------------------------
// Sequential plans
// ---------------------------------------------------------------------------

namespace {

/// Mirrors InferenceForwardInto's fusion schedule: each Linear grabs a
/// directly following activation; nested Sequentials flatten. Anything else
/// is Unimplemented so the caller can fall back to fp32.
util::Status AppendPlanSteps(const Sequential& seq, QuantMode mode,
                             QuantizedSequential* plan) {
  size_t l = 0;
  while (l < seq.num_layers()) {
    const Layer* layer = seq.layer(l);
    if (const auto* linear = dynamic_cast<const Linear*>(layer)) {
      QuantizedSequential::Step step;
      size_t consumed = 1;
      if (l + 1 < seq.num_layers()) {
        const Layer* next = seq.layer(l + 1);
        if (dynamic_cast<const Relu*>(next) != nullptr) {
          step.act = Activation::kRelu;
          consumed = 2;
        } else if (const auto* lk = dynamic_cast<const LeakyRelu*>(next)) {
          step.act = Activation::kLeakyRelu;
          step.leaky_slope = lk->slope();
          consumed = 2;
        } else if (dynamic_cast<const Tanh*>(next) != nullptr) {
          step.act = Activation::kTanh;
          consumed = 2;
        } else if (dynamic_cast<const Sigmoid*>(next) != nullptr) {
          step.act = Activation::kSigmoid;
          consumed = 2;
        }
      }
      DEEPAQP_RETURN_IF_ERROR(QuantizeLinear(
          linear->weight.value, linear->bias.value, mode, &step.linear));
      plan->steps.push_back(std::move(step));
      l += consumed;
      continue;
    }
    if (const auto* nested = dynamic_cast<const Sequential*>(layer)) {
      DEEPAQP_RETURN_IF_ERROR(AppendPlanSteps(*nested, mode, plan));
      ++l;
      continue;
    }
    return util::Status::Unimplemented(
        "quantized inference supports Linear(+activation) stacks; found '" +
        layer->TypeName() + "' not fused behind a Linear");
  }
  return util::Status::OK();
}

}  // namespace

util::Status QuantizeSequential(const Sequential& seq, QuantMode mode,
                                QuantizedSequential* plan) {
  if (mode == QuantMode::kOff) {
    return util::Status::InvalidArgument(
        "QuantizeSequential: mode must be fp16 or int8");
  }
  QuantizedSequential out;
  out.mode = mode;
  DEEPAQP_RETURN_IF_ERROR(AppendPlanSteps(seq, mode, &out));
  *plan = std::move(out);
  return util::Status::OK();
}

void QuantizedInferenceForwardInto(const QuantizedSequential& plan,
                                   const Matrix& x, Matrix* out,
                                   ScratchArena* arena) {
  DEEPAQP_CHECK(plan.engaged());
  if (plan.steps.empty()) {
    out->Resize(x.rows(), x.cols());
    std::copy(x.data(), x.data() + x.size(), out->data());
    return;
  }
  Matrix tmp = arena->Acquire();
  const Matrix* src = &x;
  Matrix* cur = nullptr;
  for (const QuantizedSequential::Step& step : plan.steps) {
    Matrix* dst = (cur == out) ? &tmp : out;
    QuantizedLinearForward(*src, step.linear, step.act, step.leaky_slope, dst);
    cur = dst;
    src = dst;
  }
  if (cur == &tmp) std::swap(*out, tmp);
  arena->Release(std::move(tmp));
}

// ---------------------------------------------------------------------------
// Mode selection + self-check gate
// ---------------------------------------------------------------------------

namespace {

/// Normalized max error of `got` vs `want`, each element scaled by
/// 1 + (|A| @ |Wref|) — the same magnitude normalization bench_kernels uses,
/// so the bounds below are scale-free.
float NormalizedMaxError(const Matrix& want, const Matrix& got,
                         const Matrix& mag) {
  float worst = 0.0f;
  for (size_t i = 0; i < want.size(); ++i) {
    const float err = std::fabs(want.data()[i] - got.data()[i]) /
                      (1.0f + mag.data()[i]);
    worst = std::max(worst, err);
  }
  return worst;
}

Matrix AbsMatrix(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) out.data()[i] = std::fabs(m.data()[i]);
  return out;
}

/// Deterministic kernel self-check for one quantized mode. Ragged shapes
/// (37 x 29, batch 5 with one all-zero row) exercise panel zero-padding and
/// the dynamic-scale degenerate case. Three gates:
///  1. quantize round-trip bounds (int8: half-ulp of the channel scale),
///  2. scalar oracle vs vectorized kernel (int8 bit-exact, fp16 1e-4),
///  3. quantized vs fp32 forward within the mode's error budget.
/// Any trip returns FailedPrecondition — quantized mode refuses to engage.
util::Status RunQuantSelfCheck(QuantMode mode) {
  util::Rng rng(0xDEE9A09Full);
  Matrix w(37, 29);
  w.RandomizeGaussian(rng, 0.8f);
  Matrix bias(1, 29);
  bias.RandomizeGaussian(rng, 0.3f);
  Matrix x(5, 37);
  x.RandomizeGaussian(rng, 1.7f);
  for (size_t j = 0; j < x.cols(); ++j) x.At(4, j) = 0.0f;

  QuantizedLinear q;
  DEEPAQP_RETURN_IF_ERROR(QuantizeLinear(w, bias, mode, &q));

  if (mode == QuantMode::kInt8) {
    const size_t kgroups = CeilDiv(w.rows(), kQKg);
    for (size_t kk = 0; kk < w.rows(); ++kk) {
      for (size_t j = 0; j < w.cols(); ++j) {
        const int8_t qv = q.weight_i8[(j / kQNr * kgroups + kk / kQKg) *
                                          (kQNr * kQKg) +
                                      (j % kQNr) * kQKg + kk % kQKg];
        const float deq = static_cast<float>(qv) * q.scale[j];
        if (std::fabs(deq - w.At(kk, j)) > 0.5f * q.scale[j] + 1e-6f) {
          return util::Status::FailedPrecondition(
              "int8 quantize round-trip exceeded half-step bound");
        }
      }
    }
  }

  Matrix ref;
  internal::QuantizedLinearForwardImpl(x, q, Activation::kRelu, 0.0f, &ref,
                                       /*use_simd=*/false);
  if (!AllFinite(ref)) {
    return util::Status::FailedPrecondition(
        "quant scalar kernel produced non-finite output");
  }
  if (QuantSimdAvailable(mode)) {
    Matrix simd;
    internal::QuantizedLinearForwardImpl(x, q, Activation::kRelu, 0.0f, &simd,
                                         /*use_simd=*/true);
    if (mode == QuantMode::kInt8) {
      if (std::memcmp(ref.data(), simd.data(),
                      ref.size() * sizeof(float)) != 0) {
        return util::Status::FailedPrecondition(
            "int8 SIMD kernel diverged from the scalar oracle "
            "(must be bit-identical)");
      }
    } else {
      Matrix mag;
      FusedLinearForward(AbsMatrix(x), AbsMatrix(w), Matrix(),
                         Activation::kIdentity, 0.0f, &mag);
      if (NormalizedMaxError(ref, simd, mag) > 1e-4f) {
        return util::Status::FailedPrecondition(
            "fp16 SIMD kernel diverged from the scalar oracle");
      }
    }
  }

  Matrix f32;
  FusedLinearForward(x, w, bias, Activation::kIdentity, 0.0f, &f32);
  Matrix quant;
  internal::QuantizedLinearForwardImpl(x, q, Activation::kIdentity, 0.0f,
                                       &quant, QuantSimdAvailable(mode));
  Matrix mag;
  FusedLinearForward(AbsMatrix(x), AbsMatrix(w), Matrix(),
                     Activation::kIdentity, 0.0f, &mag);
  const float budget = mode == QuantMode::kInt8 ? 0.03f : 2e-3f;
  const float err = NormalizedMaxError(f32, quant, mag);
  if (err > budget) {
    return util::Status::FailedPrecondition(
        std::string("quantized forward error vs fp32 exceeded budget (") +
        QuantModeName(mode) + ")");
  }
  return util::Status::OK();
}

QuantMode BestEffortModeFromEnv() {
  const char* env = std::getenv("DEEPAQP_QUANT");
  if (env == nullptr || env[0] == '\0') return QuantMode::kOff;
  QuantMode mode;
  const util::Status parsed = ParseQuantMode(env, &mode);
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "DEEPAQP_QUANT='%s' not recognized (off|fp16|int8); "
                 "keeping 'off'\n",
                 env);
    return QuantMode::kOff;
  }
  if (mode != QuantMode::kOff) {
    // The env path never hard-fails: a broken kernel degrades to fp32,
    // loudly. (The --quant flag path is strict — see ApplyQuantFlag.)
    const util::Status check = RunQuantSelfCheck(mode);
    if (!check.ok()) {
      std::fprintf(stderr, "DEEPAQP_QUANT=%s disabled: %s\n",
                   QuantModeName(mode), check.message().c_str());
      return QuantMode::kOff;
    }
  }
  return mode;
}

QuantMode& QuantSlot() {
  static QuantMode mode = BestEffortModeFromEnv();
  return mode;
}

}  // namespace

QuantMode ActiveQuantMode() { return QuantSlot(); }

util::Status SetQuantMode(QuantMode mode) {
  if (mode != QuantMode::kOff) {
    DEEPAQP_RETURN_IF_ERROR(RunQuantSelfCheck(mode));
  }
  QuantSlot() = mode;
  return util::Status::OK();
}

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kOff:
      return "off";
    case QuantMode::kFp16:
      return "fp16";
    case QuantMode::kInt8:
      return "int8";
  }
  return "unknown";
}

util::Status ParseQuantMode(std::string_view name, QuantMode* mode) {
  if (name == "off") {
    *mode = QuantMode::kOff;
  } else if (name == "fp16") {
    *mode = QuantMode::kFp16;
  } else if (name == "int8") {
    *mode = QuantMode::kInt8;
  } else {
    return util::Status::InvalidArgument(
        "quant mode '" + std::string(name) + "' not recognized (off|fp16|int8)");
  }
  return util::Status::OK();
}

util::Status ApplyQuantFlag(const util::Flags& flags) {
  const std::string value = flags.GetString("quant", "");
  if (value.empty()) return util::Status::OK();
  QuantMode mode;
  DEEPAQP_RETURN_IF_ERROR(ParseQuantMode(value, &mode));
  return SetQuantMode(mode);
}

}  // namespace deepaqp::nn
