#ifndef DEEPAQP_NN_OPTIMIZER_H_
#define DEEPAQP_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"

namespace deepaqp::nn {

/// Base interface for first-order optimizers over a fixed parameter set.
/// Usage per batch: ZeroGrad() -> forward/backward -> Step().
///
/// Divergence sentinel: every concrete Step() skips non-finite gradient
/// entries (the parameter and its moment state keep their previous values)
/// and counts them in nonfinite_grads(). Healthy training never produces
/// such entries, so the skip is bit-neutral; trainers poll the counter
/// between epochs to detect divergence.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  const std::vector<Parameter*>& params() const { return params_; }

  /// Total non-finite gradient entries skipped across all Step() calls.
  uint64_t nonfinite_grads() const { return nonfinite_grads_; }

 protected:
  std::vector<Parameter*> params_;
  uint64_t nonfinite_grads_ = 0;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — the default trainer for the
/// VAE, matching the paper's PyTorch setup.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// RMSProp (no momentum) — the customary optimizer for WGAN with weight
/// clipping.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Parameter*> params, float lr, float decay = 0.9f,
          float eps = 1e-8f);
  void Step() override;

 private:
  float lr_, decay_, eps_;
  std::vector<Matrix> cache_;
};

/// Clamps every parameter value into [-limit, limit] (WGAN weight clipping).
void ClipParameters(const std::vector<Parameter*>& params, float limit);

/// Rescales gradients so their global L2 norm is at most `max_norm`.
void ClipGradientNorm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_OPTIMIZER_H_
