#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace deepaqp::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ == 0.0f) {
      for (size_t j = 0; j < p->value.size(); ++j) {
        const float g = p->grad.data()[j];
        if (!std::isfinite(g)) {
          ++nonfinite_grads_;
          continue;
        }
        p->value.data()[j] += -lr_ * g;
      }
      continue;
    }
    Matrix& v = velocity_[i];
    for (size_t j = 0; j < v.size(); ++j) {
      const float g = p->grad.data()[j];
      if (!std::isfinite(g)) {
        ++nonfinite_grads_;
        continue;
      }
      v.data()[j] = momentum_ * v.data()[j] + g;
      p->value.data()[j] -= lr_ * v.data()[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad.data()[j];
      if (!std::isfinite(g)) {
        ++nonfinite_grads_;
        continue;
      }
      m.data()[j] = beta1_ * m.data()[j] + (1.0f - beta1_) * g;
      v.data()[j] = beta2_ * v.data()[j] + (1.0f - beta2_) * g * g;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      p->value.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

RmsProp::RmsProp(std::vector<Parameter*> params, float lr, float decay,
                 float eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  cache_.reserve(params_.size());
  for (Parameter* p : params_) {
    cache_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Matrix& c = cache_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad.data()[j];
      if (!std::isfinite(g)) {
        ++nonfinite_grads_;
        continue;
      }
      c.data()[j] = decay_ * c.data()[j] + (1.0f - decay_) * g * g;
      p->value.data()[j] -= lr_ * g / (std::sqrt(c.data()[j]) + eps_);
    }
  }
}

void ClipParameters(const std::vector<Parameter*>& params, float limit) {
  for (Parameter* p : params) {
    for (size_t j = 0; j < p->value.size(); ++j) {
      p->value.data()[j] =
          std::clamp(p->value.data()[j], -limit, limit);
    }
  }
}

void ClipGradientNorm(const std::vector<Parameter*>& params, float max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) total += SumSquares(p->grad);
  const double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (Parameter* p : params) {
    for (size_t j = 0; j < p->grad.size(); ++j) p->grad.data()[j] *= scale;
  }
}

}  // namespace deepaqp::nn
