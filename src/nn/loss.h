#ifndef DEEPAQP_NN_LOSS_H_
#define DEEPAQP_NN_LOSS_H_

#include <cmath>

#include "nn/matrix.h"

namespace deepaqp::nn {

/// Loss value plus gradient w.r.t. the network output that produced it.
struct LossResult {
  double value = 0.0;
  Matrix grad;  // dL/d(output), same shape as the output.

  /// Divergence sentinel: the loss value is a usable training signal.
  bool finite() const { return std::isfinite(value); }
};

/// Numerically-stable binary cross-entropy on logits, summed over features
/// and averaged over the batch:
///   L = mean_r sum_c [ max(z,0) - z*t + log(1 + exp(-|z|)) ].
/// Gradient is (sigmoid(z) - t) / batch. This is the VAE's reconstruction
/// term E[log P(X|z)] for Bernoulli-parameterized decoders.
LossResult BceWithLogits(const Matrix& logits, const Matrix& targets);

/// Mean squared error, 0.5 * mean_r sum_c (y - t)^2; gradient (y - t)/batch.
LossResult MeanSquaredError(const Matrix& output, const Matrix& targets);

/// Closed-form KL divergence of N(mu, diag(exp(logvar))) from N(0, I),
/// summed over latent dimensions, averaged over the batch:
///   KL = -0.5 * mean_r sum_c (1 + logvar - mu^2 - exp(logvar)).
/// `grad` of the returned LossResult is dKL/dmu; dKL/dlogvar is written to
/// `grad_logvar`.
LossResult GaussianKl(const Matrix& mu, const Matrix& logvar,
                      Matrix* grad_logvar);

/// Per-example, per-feature Bernoulli log-likelihood sum log p(x|logits)
/// (no batch averaging): column vector of size batch x 1. Used for the
/// importance-weighted log p(x,z) estimates in variational rejection
/// sampling.
Matrix BernoulliLogLikelihoodRows(const Matrix& logits,
                                  const Matrix& targets);

/// Row-wise log N(x; mu, diag(exp(logvar))) (batch x 1).
Matrix GaussianLogDensityRows(const Matrix& x, const Matrix& mu,
                              const Matrix& logvar);

/// Row-wise log N(x; 0, I) (batch x 1).
Matrix StandardNormalLogDensityRows(const Matrix& x);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_LOSS_H_
