// The compute-kernel layer behind nn::Gemm, nn::ShardedGemmTN, and the
// fused forward paths. Three implementations sit behind one dispatch:
//
//  * ReferenceGemm (kernels_reference.cc) — the seed repository's
//    triple-loop kernels, kept verbatim as the correctness oracle and the
//    `DEEPAQP_KERNEL=naive` escape hatch.
//  * The blocked kernel (this file) — op(A)/op(B) are expressed as stride
//    views (which folds all four transpose combinations into one code
//    path), packed into contiguous panels, and consumed by a register-tiled
//    kMr x kNr micro-kernel whose inner loops are fixed-length and
//    restrict-qualified so the compiler vectorizes them. C row blocks are
//    distributed over the thread pool; the block layout depends only on the
//    shape and every C element accumulates in one fixed k-order, so results
//    are bit-identical at every --threads setting.
//  * The simd kernel (kernels_simd.cc) — the same packed-panel layout fed
//    to a hand-written AVX2/FMA (or NEON) micro-kernel. Selected at runtime
//    only when util::CpuInfo() reports the ISA, so one binary runs — and
//    picks its fastest safe backend — on every machine.
//
// This file is compiled with -O3 -funroll-loops but the project-baseline
// ISA (see src/nn/CMakeLists.txt): only kernels_simd.cc carries explicit
// vector flags, and it is guarded by runtime CPU detection. That makes the
// blocked kernel's numerics identical on every host — the old -march=native
// build made them a function of the build machine and could SIGILL on a
// lesser one. kernels_reference.cc keeps the project-default flags so it
// reproduces the seed's numerics and throughput exactly.

#include "nn/kernels.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/aligned_buffer.h"
#include "nn/kernels_internal.h"
#include "util/cpu_features.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepaqp::nn {

namespace internal {

void PackB(const View& b, size_t k0, size_t kc, size_t n, float* out) {
  const size_t n_panels = CeilDiv(n, kNr);
  for (size_t p = 0; p < n_panels; ++p) {
    const size_t j0 = p * kNr;
    const size_t n_eff = std::min(kNr, n - j0);
    float* panel = out + p * (kc * kNr);
    if (n_eff == kNr && b.cs == 1) {
      // Common contiguous case (no B transpose): straight row copies.
      for (size_t kk = 0; kk < kc; ++kk) {
        std::memcpy(panel + kk * kNr, b.base + (k0 + kk) * b.rs + j0,
                    kNr * sizeof(float));
      }
    } else {
      for (size_t kk = 0; kk < kc; ++kk) {
        const float* src = b.base + (k0 + kk) * b.rs + j0 * b.cs;
        float* dst = panel + kk * kNr;
        size_t jr = 0;
        for (; jr < n_eff; ++jr) dst[jr] = src[jr * b.cs];
        for (; jr < kNr; ++jr) dst[jr] = 0.0f;
      }
    }
  }
}

void PackA(const View& a, size_t i0, size_t mc, size_t k0, size_t kc,
           float alpha, float* out) {
  const size_t m_panels = CeilDiv(mc, kMr);
  for (size_t mp = 0; mp < m_panels; ++mp) {
    const size_t r0 = i0 + mp * kMr;
    const size_t m_eff = std::min(kMr, mc - mp * kMr);
    float* panel = out + mp * (kc * kMr);
    for (size_t kk = 0; kk < kc; ++kk) {
      const float* src = a.base + r0 * a.rs + (k0 + kk) * a.cs;
      float* dst = panel + kk * kMr;
      size_t ir = 0;
      for (; ir < m_eff; ++ir) dst[ir] = alpha * src[ir * a.rs];
      for (; ir < kMr; ++ir) dst[ir] = 0.0f;
    }
  }
}

void ApplyEpilogueRow(const Epilogue& e, float* row, size_t n) {
  if (e.bias != nullptr) {
    const float* __restrict__ bias = e.bias;
    float* __restrict__ r = row;
#pragma GCC ivdep
    for (size_t j = 0; j < n; ++j) r[j] += bias[j];
  }
  ApplyActivation(e.act, e.leaky_slope, row, n);
}

}  // namespace internal

namespace {

using internal::CeilDiv;
using internal::Epilogue;
using internal::kKc;
using internal::kMc;
using internal::kMr;
using internal::kNr;
using internal::kParallelFlopCutoff;
using internal::View;

// Chaos site shared by both fused and plain GEMM dispatch: poisons one output
// element with a quiet NaN, modeling a transient compute fault (bad SIMD
// lane, corrupted scratch). Downstream sentinels must catch and contain it.
inline void MaybePoisonGemmOutput(Matrix* out) {
  if (out->size() > 0 && util::FailpointTriggered("nn/gemm")) {
    out->data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

/// Best backend the running CPU supports: simd when the intrinsics TU is
/// compiled in and the CPU reports the ISA, else blocked.
GemmKernelKind BestAvailableKernel() {
  return SimdKernelAvailable() ? GemmKernelKind::kSimd
                               : GemmKernelKind::kBlocked;
}

GemmKernelKind KindFromEnv() {
  const char* env = std::getenv("DEEPAQP_KERNEL");
  if (env == nullptr || env[0] == '\0') return BestAvailableKernel();
  GemmKernelKind kind;
  const util::Status parsed = ParseGemmKernelKind(env, &kind);
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "DEEPAQP_KERNEL='%s' not recognized "
                 "(naive|blocked|simd|auto); keeping '%s'\n",
                 env, GemmKernelKindName(BestAvailableKernel()));
    return BestAvailableKernel();
  }
  if (kind == GemmKernelKind::kSimd && !SimdKernelAvailable()) {
    // A faster-kernel request must never become SIGILL: degrade to the
    // portable blocked kernel, loudly. (The --kernel flag path is strict
    // instead — see ApplyKernelFlag.)
    std::fprintf(stderr,
                 "DEEPAQP_KERNEL=simd but this CPU/toolchain lacks the ISA "
                 "(%s built in); falling back to 'blocked'\n",
                 internal::SimdBackendIsa());
    return GemmKernelKind::kBlocked;
  }
  return kind;
}

GemmKernelKind& KernelSlot() {
  static GemmKernelKind kind = KindFromEnv();
  return kind;
}

}  // namespace

namespace internal {

/// expf via 2^(x * log2 e): round-to-nearest split into integer and
/// fractional exponent (the 1.5 * 2^23 trick keeps it branch-free and
/// vectorizable), degree-6 polynomial for the fractional part, exponent
/// reassembled through the float bit layout. Pure float arithmetic — the
/// result is a deterministic function of the input on every machine that
/// rounds to nearest. Max relative error ~1e-7 over the clamped range.
/// (kernels_simd.cc evaluates the same polynomial with vector intrinsics.)
inline float FastExp(float x) {
  float z = x * 1.44269504088896341f;  // log2(e)
  z = z < -126.0f ? -126.0f : z;
  z = z > 126.0f ? 126.0f : z;
  const float shifted = z + 12582912.0f;  // 1.5 * 2^23
  int32_t ibits;
  std::memcpy(&ibits, &shifted, sizeof(ibits));
  const int32_t n = ibits - 0x4B400000;
  const float f = z - (shifted - 12582912.0f);  // f in [-0.5, 0.5]
  const float u = f * 0.693147180559945286f;    // ln 2
  float p = 1.0f / 720.0f;
  p = p * u + 1.0f / 120.0f;
  p = p * u + 1.0f / 24.0f;
  p = p * u + 1.0f / 6.0f;
  p = p * u + 0.5f;
  p = p * u + 1.0f;
  p = p * u + 1.0f;
  const int32_t sbits = (n + 127) << 23;
  float scale;
  std::memcpy(&scale, &sbits, sizeof(scale));
  return p * scale;
}

namespace {

/// acc[ir][jr] += sum_kk a_panel(kk, ir) * b_panel(kk, jr). Fixed-trip
/// inner loops over a kMr x kNr register block; the jr loop is the
/// vectorized axis.
inline void MicroKernel(const float* __restrict__ a_panel,
                        const float* __restrict__ b_panel, size_t kc,
                        float* __restrict__ acc) {
  for (size_t kk = 0; kk < kc; ++kk) {
    const float* __restrict__ arow = a_panel + kk * kMr;
    const float* __restrict__ brow = b_panel + kk * kNr;
    for (size_t ir = 0; ir < kMr; ++ir) {
      const float av = arow[ir];
      float* __restrict__ accr = acc + ir * kNr;
#pragma GCC ivdep
      for (size_t jr = 0; jr < kNr; ++jr) accr[jr] += av * brow[jr];
    }
  }
}

AlignedVector<float>& TlsBPack() {
  thread_local AlignedVector<float> buf;
  return buf;
}

}  // namespace

/// Determinism: the kb / task / panel decomposition is a pure function of
/// (m, k, n); each C element is written by exactly one task and accumulates
/// its k-products in ascending order (within and across K blocks), so the
/// output is bit-identical at every thread count.
void BlockedGemmDriver(const View& a, const View& b, size_t m, size_t k,
                       size_t n, float alpha, bool overwrite,
                       const Epilogue* epi, float* c, size_t ldc) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    for (size_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      if (overwrite) std::memset(row, 0, n * sizeof(float));
      if (epi != nullptr) ApplyEpilogueRow(*epi, row, n);
    }
    return;
  }

  const size_t kblocks = CeilDiv(k, kKc);
  const size_t n_panels = CeilDiv(n, kNr);
  const size_t b_block_stride = n_panels * kKc * kNr;

  // One packed copy of op(B), shared read-only by every task. The buffer is
  // thread-local to the caller; helper lanes read it through the captured
  // pointer while the caller blocks in ParallelFor, so no lifetime hazard.
  AlignedVector<float>& b_pack = TlsBPack();
  if (b_pack.size() < kblocks * b_block_stride) {
    b_pack.resize(kblocks * b_block_stride);
  }
  for (size_t kb = 0; kb < kblocks; ++kb) {
    const size_t k0 = kb * kKc;
    const size_t kc = std::min(kKc, k - k0);
    PackB(b, k0, kc, n, b_pack.data() + kb * b_block_stride);
  }
  const float* b_packed = b_pack.data();

  const size_t tasks = CeilDiv(m, kMc);
  const auto body = [&, b_packed](size_t t) {
    thread_local AlignedVector<float> a_pack;
    const size_t i0 = t * kMc;
    const size_t mc = std::min(kMc, m - i0);
    const size_t m_panels = CeilDiv(mc, kMr);
    if (a_pack.size() < m_panels * kKc * kMr) {
      a_pack.resize(m_panels * kKc * kMr);
    }
    for (size_t kb = 0; kb < kblocks; ++kb) {
      const size_t k0 = kb * kKc;
      const size_t kc = std::min(kKc, k - k0);
      PackA(a, i0, mc, k0, kc, alpha, a_pack.data());
      const bool store = overwrite && kb == 0;
      const float* b_block = b_packed + kb * b_block_stride;
      for (size_t mp = 0; mp < m_panels; ++mp) {
        const float* a_panel = a_pack.data() + mp * (kc * kMr);
        const size_t r0 = i0 + mp * kMr;
        const size_t m_eff = std::min(kMr, mc - mp * kMr);
        for (size_t p = 0; p < n_panels; ++p) {
          const float* b_panel = b_block + p * (kc * kNr);
          float acc[kMr * kNr] = {0.0f};
          MicroKernel(a_panel, b_panel, kc, acc);
          const size_t j0 = p * kNr;
          const size_t n_eff = std::min(kNr, n - j0);
          for (size_t ir = 0; ir < m_eff; ++ir) {
            float* crow = c + (r0 + ir) * ldc + j0;
            const float* accr = acc + ir * kNr;
            if (store) {
              for (size_t jr = 0; jr < n_eff; ++jr) crow[jr] = accr[jr];
            } else {
              for (size_t jr = 0; jr < n_eff; ++jr) crow[jr] += accr[jr];
            }
          }
        }
      }
    }
    if (epi != nullptr) {
      for (size_t i = i0; i < i0 + mc; ++i) {
        ApplyEpilogueRow(*epi, c + i * ldc, n);
      }
    }
  };

  if (tasks >= 2 && m * k * n >= kParallelFlopCutoff) {
    util::ParallelFor(0, tasks, body);
  } else {
    for (size_t t = 0; t < tasks; ++t) body(t);
  }
}

}  // namespace internal

namespace {

/// Routes a packed-panel GEMM to the blocked or simd driver. Callers have
/// already resolved kNaive separately.
inline void PackedGemmDriver(GemmKernelKind kind, const View& a,
                             const View& b, size_t m, size_t k, size_t n,
                             float alpha, bool overwrite, const Epilogue* epi,
                             float* c, size_t ldc) {
  if (kind == GemmKernelKind::kSimd) {
    internal::SimdGemmDriver(a, b, m, k, n, alpha, overwrite, epi, c, ldc);
  } else {
    internal::BlockedGemmDriver(a, b, m, k, n, alpha, overwrite, epi, c,
                                ldc);
  }
}

View OpView(const Matrix& m, bool transposed) {
  if (transposed) return {m.data(), 1, m.cols()};
  return {m.data(), m.cols(), 1};
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

GemmKernelKind ActiveGemmKernel() { return KernelSlot(); }

bool SimdKernelAvailable() {
  if (!internal::SimdBackendCompiled()) return false;
  const util::CpuFeatures& cpu = util::CpuInfo();
#if defined(__aarch64__)
  return cpu.neon;
#else
  return cpu.avx2 && cpu.fma;
#endif
}

util::Status SetGemmKernelKind(GemmKernelKind kind) {
  if (kind == GemmKernelKind::kSimd && !SimdKernelAvailable()) {
    return util::Status::FailedPrecondition(
        std::string("simd kernel unavailable: binary ISA '") +
        internal::SimdBackendIsa() + "', cpu features '" +
        util::CpuFeaturesToString(util::CpuInfo()) + "'");
  }
  KernelSlot() = kind;
  return util::Status::OK();
}

void SetGemmKernel(GemmKernelKind kind) {
  const util::Status status = SetGemmKernelKind(kind);
  DEEPAQP_CHECK(status.ok());
}

const char* GemmKernelKindName(GemmKernelKind kind) {
  switch (kind) {
    case GemmKernelKind::kNaive:
      return "naive";
    case GemmKernelKind::kBlocked:
      return "blocked";
    case GemmKernelKind::kSimd:
      return "simd";
  }
  return "unknown";
}

util::Status ParseGemmKernelKind(std::string_view name,
                                 GemmKernelKind* kind) {
  if (name == "naive") {
    *kind = GemmKernelKind::kNaive;
  } else if (name == "blocked") {
    *kind = GemmKernelKind::kBlocked;
  } else if (name == "simd") {
    *kind = GemmKernelKind::kSimd;
  } else if (name == "auto") {
    *kind = BestAvailableKernel();
  } else {
    return util::Status::InvalidArgument(
        "kernel '" + std::string(name) +
        "' not recognized (naive|blocked|simd|auto)");
  }
  return util::Status::OK();
}

util::Status ApplyKernelFlag(const util::Flags& flags) {
  const std::string value = flags.GetString("kernel", "");
  if (value.empty()) return util::Status::OK();
  GemmKernelKind kind;
  DEEPAQP_RETURN_IF_ERROR(ParseGemmKernelKind(value, &kind));
  return SetGemmKernelKind(kind);
}

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* c) {
  const GemmKernelKind kind = ActiveGemmKernel();
  if (kind == GemmKernelKind::kNaive) {
    ReferenceGemm(a, trans_a, b, trans_b, alpha, beta, c);
    MaybePoisonGemmOutput(c);
    return;
  }
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  DEEPAQP_CHECK_EQ(k, kb);
  bool overwrite = false;
  if (beta == 0.0f) {
    c->Resize(m, n);
    overwrite = true;
  } else {
    DEEPAQP_CHECK_EQ(c->rows(), m);
    DEEPAQP_CHECK_EQ(c->cols(), n);
    if (beta != 1.0f) {
      for (size_t i = 0; i < c->size(); ++i) c->data()[i] *= beta;
    }
  }
  PackedGemmDriver(kind, OpView(a, trans_a), OpView(b, trans_b), m, k, n,
                   alpha, overwrite, nullptr, c->data(), c->cols());
  MaybePoisonGemmOutput(c);
}

void ShardedGemmTN(const Matrix& a, const Matrix& b, Matrix* c,
                   size_t shard_rows) {
  const size_t batch = a.rows();
  DEEPAQP_CHECK_EQ(batch, b.rows());
  DEEPAQP_CHECK_EQ(c->rows(), a.cols());
  DEEPAQP_CHECK_EQ(c->cols(), b.cols());
  DEEPAQP_CHECK_GT(shard_rows, 0u);
  const size_t num_shards = (batch + shard_rows - 1) / shard_rows;
  if (num_shards <= 1) {
    Gemm(a, true, b, false, 1.0f, 1.0f, c);
    return;
  }
  const GemmKernelKind kind = ActiveGemmKernel();
  // One partial per shard, filled in parallel. The shard layout is a pure
  // function of the batch size, so the ascending-order reduction below
  // yields the same bits at every thread count.
  std::vector<Matrix> partials(num_shards);
  util::ParallelFor(0, num_shards, [&](size_t s) {
    const size_t lo = s * shard_rows;
    const size_t hi = std::min(batch, lo + shard_rows);
    Matrix& p = partials[s];
    p = Matrix(a.cols(), b.cols());
    if (kind != GemmKernelKind::kNaive) {
      // Shard of the TN product as stride views: op(A) = A^T over rows
      // [lo, hi), i.e. (i, kk) -> A(lo + kk, i); op(B) = B rows [lo, hi).
      const View av{a.data() + lo * a.cols(), 1, a.cols()};
      const View bv{b.data() + lo * b.cols(), b.cols(), 1};
      PackedGemmDriver(kind, av, bv, a.cols(), hi - lo, b.cols(), 1.0f,
                       /*overwrite=*/true, nullptr, p.data(), p.cols());
    } else {
      for (size_t kk = lo; kk < hi; ++kk) {
        const float* arow = a.Row(kk);
        const float* brow = b.Row(kk);
        for (size_t i = 0; i < a.cols(); ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* prow = p.Row(i);
          for (size_t j = 0; j < b.cols(); ++j) prow[j] += av * brow[j];
        }
      }
    }
  });
  for (const Matrix& p : partials) Axpy(1.0f, p, c);
}

void ApplyActivation(Activation act, float leaky_slope, float* data,
                     size_t n) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) {
        if (data[i] <= 0.0f) data[i] = 0.0f;
      }
      return;
    case Activation::kLeakyRelu:
      for (size_t i = 0; i < n; ++i) {
        if (data[i] < 0.0f) data[i] *= leaky_slope;
      }
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) {
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      }
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
      return;
  }
}

void FusedLinearForward(const Matrix& x, const Matrix& w, const Matrix& bias,
                        Activation act, float leaky_slope, Matrix* out) {
  DEEPAQP_CHECK_EQ(x.cols(), w.rows());
  const bool has_bias = bias.size() > 0;
  if (has_bias) {
    DEEPAQP_CHECK_EQ(bias.rows(), 1u);
    DEEPAQP_CHECK_EQ(bias.cols(), w.cols());
  }
  const GemmKernelKind kind = ActiveGemmKernel();
  if (kind == GemmKernelKind::kNaive) {
    ReferenceGemm(x, false, w, false, 1.0f, 0.0f, out);
    if (has_bias) AddRowBroadcast(bias, out);
    ApplyActivation(act, leaky_slope, out->data(), out->size());
    MaybePoisonGemmOutput(out);
    return;
  }
  out->Resize(x.rows(), w.cols());
  Epilogue epi{has_bias ? bias.data() : nullptr, act, leaky_slope};
  PackedGemmDriver(kind, OpView(x, false), OpView(w, false), x.rows(),
                   x.cols(), w.cols(), 1.0f, /*overwrite=*/true, &epi,
                   out->data(), out->cols());
  MaybePoisonGemmOutput(out);
}

void SigmoidVec(const float* x, float* out, size_t n) {
  const GemmKernelKind kind = ActiveGemmKernel();
  if (kind == GemmKernelKind::kNaive) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = 1.0f / (1.0f + std::exp(-x[i]));
    }
    return;
  }
  if (kind == GemmKernelKind::kSimd) {
    internal::SimdSigmoid(x, out, n);
    return;
  }
  const float* __restrict__ in = x;
  float* __restrict__ o = out;
#pragma GCC ivdep
  for (size_t i = 0; i < n; ++i) {
    o[i] = 1.0f / (1.0f + internal::FastExp(-in[i]));
  }
}

void SigmoidBernoulliVec(const float* logits, size_t n, util::Rng& rng,
                         float* bits) {
  thread_local std::vector<float> probs;
  if (probs.size() < n) probs.resize(n);
  SigmoidVec(logits, probs.data(), n);
  // The RNG is a serial stream by contract: one Bernoulli draw per element
  // in index order, exactly like the scalar loop this replaces.
  for (size_t i = 0; i < n; ++i) {
    bits[i] = rng.Bernoulli(probs[i]) ? 1.0f : 0.0f;
  }
}

}  // namespace deepaqp::nn
