#ifndef DEEPAQP_NN_KERNELS_H_
#define DEEPAQP_NN_KERNELS_H_

#include <cstddef>
#include <string_view>

#include "nn/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::util {
class Flags;
}  // namespace deepaqp::util

namespace deepaqp::nn {

/// Which GEMM implementation backs nn::Gemm / nn::ShardedGemmTN and the
/// fused forward kernels.
///
/// * kSimd: hand-vectorized micro-kernel (AVX2+FMA intrinsics on x86, NEON
///   on aarch64) over the same packed-panel layout as kBlocked. Selected by
///   default when the running CPU supports it (runtime detection via
///   util::CpuInfo — never compile flags, so one binary runs everywhere).
///   Differs from kBlocked only by FMA contraction inside each k step;
///   bit-identical at every `--threads` setting and within the same 1e-5
///   reference-relative contract (tests/nn_simd_backend_test.cc).
/// * kBlocked: cache-blocked, panel-packed, register-tiled kernel compiled
///   for the portable baseline ISA (auto-vectorized). Default on CPUs
///   without a supported vector extension. Results differ from the naive
///   kernel only by floating-point summation grouping (<= ~1e-5 relative on
///   realistic shapes) and are bit-identical at every `--threads` setting
///   for a fixed shape, because the block layout is a pure function of the
///   shape and each output element keeps one fixed accumulation order.
/// * kNaive: the original triple-loop reference kernels, kept as an escape
///   hatch for debugging kernel regressions (`DEEPAQP_KERNEL=naive`).
enum class GemmKernelKind { kNaive, kBlocked, kSimd };

/// Active kernel. Initialized once from the DEEPAQP_KERNEL environment
/// variable ("naive", "blocked", or "simd"); unset picks the best backend
/// the running CPU supports (simd where available, else blocked). "simd"
/// on hardware without a supported vector ISA warns and falls back to
/// blocked — requesting a faster kernel must never turn into SIGILL.
/// Unrecognized values warn to stderr and keep the auto-selected default;
/// binaries that take --kernel get a hard error via ApplyKernelFlag.
GemmKernelKind ActiveGemmKernel();

/// True when the SIMD backend is usable in this process: the binary carries
/// the intrinsics TU *and* the running CPU reports the ISA (util::CpuInfo,
/// maskable with DEEPAQP_CPU_DISABLE for fallback testing).
bool SimdKernelAvailable();

/// Overrides the active kernel. Fails with FailedPrecondition when `kind`
/// is kSimd and SimdKernelAvailable() is false; the active kernel is left
/// unchanged on error. Not safe while parallel compute is in flight; set it
/// up front (tests, benches, main()).
[[nodiscard]] util::Status SetGemmKernelKind(GemmKernelKind kind);

/// CHECK-failing convenience wrapper over SetGemmKernelKind for call sites
/// that have already verified availability (tests, benches).
void SetGemmKernel(GemmKernelKind kind);

/// "naive" / "blocked" / "simd".
const char* GemmKernelKindName(GemmKernelKind kind);

/// Parses "naive" / "blocked" / "simd" / "auto" (auto = best available).
/// Returns InvalidArgument on anything else; `*kind` is untouched on error.
[[nodiscard]] util::Status ParseGemmKernelKind(std::string_view name,
                                               GemmKernelKind* kind);

/// Reads the `--kernel=naive|blocked|simd|auto` flag and applies it
/// (deepaqp_cli and the bench/tool binaries; mirrors util::ApplyThreadsFlag).
/// Unknown values and `--kernel=simd` on hardware without the ISA return a
/// descriptive error instead of silently falling back — the explicit flag
/// is a stronger statement of intent than the environment variable.
[[nodiscard]] util::Status ApplyKernelFlag(const util::Flags& flags);

/// The seed repository's triple-loop GEMM, byte-for-byte semantics:
/// C = alpha * op(A) @ op(B) + beta * C, row-parallel over large outputs.
/// Retained as the correctness reference for the blocked and simd kernels
/// and as the kNaive escape hatch.
void ReferenceGemm(const Matrix& a, bool trans_a, const Matrix& b,
                   bool trans_b, float alpha, float beta, Matrix* c);

/// Activations the fused forward kernel can apply in its epilogue. The
/// epilogue arithmetic is identical to the standalone layer loops
/// (std::exp / std::tanh based), so fusing never changes values, only
/// the number of passes over memory.
enum class Activation { kIdentity, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// out = act(x @ W + bias): one fused pass under the blocked and simd
/// kernels (bias add and activation run on each row block while it is
/// cache-hot, no intermediate matrix is materialized). `bias` must be
/// 1 x W.cols, may be null-shaped (0 x 0) to skip the bias add. Under
/// kNaive this decomposes into ReferenceGemm + broadcast + scalar
/// activation with identical results. For every kernel kind the fused
/// result is bit-identical to the unfused Gemm + AddRowBroadcast +
/// ApplyActivation pipeline under that same kind. `out` must not alias
/// `x`, `w`, or `bias`.
void FusedLinearForward(const Matrix& x, const Matrix& w, const Matrix& bias,
                        Activation act, float leaky_slope, Matrix* out);

/// In-place activation over a raw buffer (exactly the arithmetic the layer
/// classes use).
void ApplyActivation(Activation act, float leaky_slope, float* data,
                     size_t n);

/// out[i] = sigmoid(x[i]). Under the blocked kernel this uses a
/// polynomial exp2-based expf (pure float arithmetic, auto-vectorizable,
/// |error| < 1e-5 absolute on the sigmoid); under kSimd the same polynomial
/// is evaluated with explicit vector intrinsics; under kNaive it is the
/// scalar 1/(1+std::exp(-x)) loop. Either way the result is a pure function
/// of the input and the kernel kind — never of the thread count.
void SigmoidVec(const float* x, float* out, size_t n);

/// bits[i] = Bernoulli(sigmoid(logits[i])) as 0.0f/1.0f. The sigmoid pass
/// is vectorized (SigmoidVec); the Bernoulli draws consume exactly one
/// rng.Bernoulli(p) per element in index order, matching the scalar loop's
/// RNG stream consumption. Replaces the per-element exp+draw loop on the
/// sampling hot path.
void SigmoidBernoulliVec(const float* logits, size_t n, util::Rng& rng,
                         float* bits);

}  // namespace deepaqp::nn

#endif  // DEEPAQP_NN_KERNELS_H_
