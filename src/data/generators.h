#ifndef DEEPAQP_DATA_GENERATORS_H_
#define DEEPAQP_DATA_GENERATORS_H_

#include <cstdint>

#include "relation/table.h"

namespace deepaqp::data {

/// Synthetic stand-in for the UCI Adult ("Census") dataset used in the paper:
/// 8 categorical + 6 numeric attributes with planted correlations and
/// conditional dependencies (education drives education_num and occupation,
/// age drives marital status, workclass and sex drive hours_per_week,
/// capital gains are zero-inflated and education-skewed). The generative
/// process is fixed given the seed, so scaling `rows` plays the role of the
/// IDEBench data scaler: more tuples from the same joint distribution.
struct CensusConfig {
  size_t rows = 10000;
  uint64_t seed = 1;
};

relation::Table GenerateCensus(const CensusConfig& config);

/// Synthetic stand-in for the BTS on-time-performance ("Flights") dataset:
/// 6 categorical + 6 numeric attributes. Includes a large-cardinality
/// attribute (flight_number) to reproduce the paper's observation that naive
/// one-hot encoding breaks down when domains reach the thousands, plus the
/// strong delay correlations (arr_delay tracks dep_delay; air_time tracks
/// distance) that make AQP on this dataset hard.
struct FlightsConfig {
  size_t rows = 10000;
  uint64_t seed = 2;
  /// Domain size of the flight_number attribute.
  int32_t flight_number_cardinality = 1000;
};

relation::Table GenerateFlights(const FlightsConfig& config);

/// Small mixed-type table for examples and unit tests: a taxi-trip style
/// relation (pickup borough, hour, passengers, trip distance, duration,
/// fare) with hour/duration and distance/fare correlations. Mirrors the
/// paper's NYC-taxi case study in the introduction.
struct TaxiConfig {
  size_t rows = 10000;
  uint64_t seed = 3;
};

relation::Table GenerateTaxi(const TaxiConfig& config);

}  // namespace deepaqp::data

#endif  // DEEPAQP_DATA_GENERATORS_H_
