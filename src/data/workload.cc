#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "aqp/executor.h"

namespace deepaqp::data {

using aqp::AggFunc;
using aqp::AggregateQuery;
using aqp::CmpOp;
using aqp::Condition;

namespace {

/// Draws a filter constant for numeric attribute `attr` from the empirical
/// distribution of the column (a random order statistic), so thresholds are
/// always inside the data range.
double NumericConstant(const relation::Table& table, size_t attr,
                       util::Rng& rng) {
  const auto& col = table.NumColumn(attr);
  return col[rng.NextIndex(col.size())];
}

Condition RandomCondition(const relation::Table& table, util::Rng& rng) {
  const relation::Schema& schema = table.schema();
  const size_t attr = rng.NextIndex(schema.num_attributes());
  Condition c;
  c.attr = attr;
  if (schema.IsCategorical(attr)) {
    // Mostly equality; occasional inequality / ordered comparison on codes.
    const double u = rng.NextDouble();
    if (u < 0.7) {
      c.op = CmpOp::kEq;
    } else if (u < 0.8) {
      c.op = CmpOp::kNe;
    } else {
      constexpr CmpOp kOrdered[] = {CmpOp::kLt, CmpOp::kGt, CmpOp::kLe,
                                    CmpOp::kGe};
      c.op = kOrdered[rng.NextIndex(4)];
    }
    // Draw the constant from the data so equality predicates hit existing
    // codes with data-proportional frequency.
    const auto& col = table.CatColumn(attr);
    c.value = static_cast<double>(col[rng.NextIndex(col.size())]);
  } else {
    constexpr CmpOp kOps[] = {CmpOp::kLt, CmpOp::kGt, CmpOp::kLe, CmpOp::kGe};
    c.op = kOps[rng.NextIndex(4)];
    c.value = NumericConstant(table, attr, rng);
  }
  return c;
}

}  // namespace

std::vector<AggregateQuery> GenerateWorkload(const relation::Table& table,
                                             const WorkloadConfig& config) {
  util::Rng rng(config.seed);
  const relation::Schema& schema = table.schema();
  const std::vector<size_t> numeric = schema.NumericIndices();
  std::vector<size_t> groupable;
  for (size_t c : schema.CategoricalIndices()) {
    if (table.Cardinality(c) <= config.max_group_cardinality) {
      groupable.push_back(c);
    }
  }

  std::vector<AggregateQuery> workload;
  size_t attempts = 0;
  const size_t max_attempts = config.num_queries * 50 + 1000;
  while (workload.size() < config.num_queries && attempts < max_attempts) {
    ++attempts;
    AggregateQuery q;
    const double agg_u = rng.NextDouble();
    if (numeric.empty() || agg_u < 0.34) {
      q.agg = AggFunc::kCount;
    } else {
      q.agg = agg_u < 0.67 ? AggFunc::kSum : AggFunc::kAvg;
      q.measure_attr =
          static_cast<int>(numeric[rng.NextIndex(numeric.size())]);
      if (config.quantile_prob > 0.0 &&
          rng.Bernoulli(config.quantile_prob)) {
        q.agg = AggFunc::kQuantile;
        constexpr double kLevels[] = {0.25, 0.5, 0.9};
        q.quantile = kLevels[rng.NextIndex(3)];
      }
    }

    const int num_preds =
        static_cast<int>(rng.NextIndex(config.max_predicates + 1));
    for (int i = 0; i < num_preds; ++i) {
      q.filter.conditions.push_back(RandomCondition(table, rng));
    }
    q.filter.conjunctive =
        q.filter.conditions.size() < 2 ||
        rng.Bernoulli(config.conjunctive_prob);

    if (!groupable.empty() && rng.Bernoulli(config.group_by_prob)) {
      q.group_by_attr =
          static_cast<int>(groupable[rng.NextIndex(groupable.size())]);
    }

    if (aqp::Selectivity(q, table) < config.min_selectivity) continue;
    workload.push_back(std::move(q));
  }
  return workload;
}

SelectivityBuckets BucketBySelectivity(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table) {
  SelectivityBuckets buckets;
  for (size_t i = 0; i < workload.size(); ++i) {
    const double s = aqp::Selectivity(workload[i], table);
    if (s <= 0.0) continue;
    if (s >= 0.1) {
      buckets.high.push_back(i);
    } else if (s >= 0.01) {
      buckets.mid.push_back(i);
    } else {
      buckets.low.push_back(i);
    }
  }
  return buckets;
}

}  // namespace deepaqp::data
