#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace deepaqp::data {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

namespace {

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

void InternDomain(Table& table, size_t col, const char* prefix, int32_t n) {
  for (int32_t i = 0; i < n; ++i) {
    table.InternLabel(col, std::string(prefix) + std::to_string(i));
  }
}

}  // namespace

Table GenerateCensus(const CensusConfig& config) {
  Schema schema;
  // 8 categorical attributes.
  (void)schema.AddAttribute("workclass", AttrType::kCategorical);       // 0
  (void)schema.AddAttribute("education", AttrType::kCategorical);       // 1
  (void)schema.AddAttribute("marital_status", AttrType::kCategorical);  // 2
  (void)schema.AddAttribute("occupation", AttrType::kCategorical);      // 3
  (void)schema.AddAttribute("relationship", AttrType::kCategorical);    // 4
  (void)schema.AddAttribute("race", AttrType::kCategorical);            // 5
  (void)schema.AddAttribute("sex", AttrType::kCategorical);             // 6
  (void)schema.AddAttribute("native_region", AttrType::kCategorical);   // 7
  // 6 numeric attributes.
  (void)schema.AddAttribute("age", AttrType::kNumeric);             // 8
  (void)schema.AddAttribute("fnlwgt", AttrType::kNumeric);          // 9
  (void)schema.AddAttribute("education_num", AttrType::kNumeric);   // 10
  (void)schema.AddAttribute("capital_gain", AttrType::kNumeric);    // 11
  (void)schema.AddAttribute("capital_loss", AttrType::kNumeric);    // 12
  (void)schema.AddAttribute("hours_per_week", AttrType::kNumeric);  // 13

  constexpr int32_t kWorkclass = 8, kEducation = 16, kMarital = 7,
                    kOccupation = 14, kRelationship = 6, kRace = 5, kSex = 2,
                    kRegion = 10;

  Table table(schema);
  InternDomain(table, 0, "work", kWorkclass);
  InternDomain(table, 1, "edu", kEducation);
  InternDomain(table, 2, "marital", kMarital);
  InternDomain(table, 3, "occ", kOccupation);
  InternDomain(table, 4, "rel", kRelationship);
  InternDomain(table, 5, "race", kRace);
  InternDomain(table, 6, "sex", kSex);
  InternDomain(table, 7, "region", kRegion);

  util::Rng rng(config.seed);
  const util::ZipfDistribution workclass_dist(kWorkclass, 1.1);
  const util::ZipfDistribution education_dist(kEducation, 0.7);
  const util::ZipfDistribution race_dist(kRace, 1.4);
  const util::ZipfDistribution region_dist(kRegion, 1.2);

  for (size_t i = 0; i < config.rows; ++i) {
    // Age: mixture of young workers and a broad middle-age bulk.
    const double age =
        rng.Bernoulli(0.3) ? Clamp(rng.Gaussian(25, 4), 17, 90)
                           : Clamp(rng.Gaussian(45, 12), 17, 90);

    // Marital status strongly age-dependent (the conditional dependency the
    // paper's partitioning experiments exploit).
    int32_t marital;
    if (age < 26) {
      marital = rng.Bernoulli(0.8) ? 0 : static_cast<int32_t>(
                                             rng.UniformInt(1, kMarital - 1));
    } else if (age < 50) {
      marital = rng.Bernoulli(0.6) ? 1 : static_cast<int32_t>(
                                             rng.UniformInt(0, kMarital - 1));
    } else {
      const double u = rng.NextDouble();
      marital = u < 0.5 ? 1 : (u < 0.75 ? 2 : static_cast<int32_t>(
                                                  rng.UniformInt(3,
                                                                 kMarital - 1)));
    }

    const auto education =
        static_cast<int32_t>(education_dist.Sample(rng));
    // education_num is a noisy monotone function of the education category.
    const double education_num =
        Clamp(1.0 + (kEducation - 1 - education) + rng.Gaussian(0, 0.7), 1,
              16);

    const auto workclass = static_cast<int32_t>(workclass_dist.Sample(rng));
    // Occupation depends on education band and workclass.
    int32_t occupation;
    if (education_num >= 12) {
      occupation = static_cast<int32_t>(rng.UniformInt(0, 4));  // white collar
    } else if (workclass >= 5) {
      occupation = static_cast<int32_t>(rng.UniformInt(9, kOccupation - 1));
    } else {
      occupation = static_cast<int32_t>(rng.UniformInt(4, 10));
    }

    const int32_t sex = rng.Bernoulli(0.52) ? 0 : 1;
    // Relationship loosely tracks marital status.
    const int32_t relationship =
        marital == 1 ? (sex == 0 ? 0 : 1)
                     : static_cast<int32_t>(rng.UniformInt(2,
                                                           kRelationship - 1));
    const auto race = static_cast<int32_t>(race_dist.Sample(rng));
    const auto region = static_cast<int32_t>(region_dist.Sample(rng));

    // Hours: full-time bulk at 40; self-employed (workclass >= 6) work more;
    // second sex category slightly fewer on average (mirrors Adult data).
    double hours = 40.0;
    const double u = rng.NextDouble();
    if (u < 0.15) {
      hours = rng.Uniform(5, 35);
    } else if (u < 0.85) {
      hours = Clamp(rng.Gaussian(40, 3), 20, 60);
    } else {
      hours = Clamp(rng.Gaussian(52, 6), 40, 99);
    }
    if (workclass >= 6) hours = Clamp(hours + rng.Uniform(0, 10), 5, 99);
    if (sex == 1) hours = Clamp(hours - rng.Uniform(0, 6), 5, 99);

    // Zero-inflated capital gain/loss, education-skewed.
    const double gain_p = 0.05 + 0.15 * (education_num / 16.0);
    const double capital_gain =
        rng.Bernoulli(gain_p) ? rng.Exponential(1.0 / 8000.0) : 0.0;
    const double capital_loss =
        rng.Bernoulli(0.05) ? rng.Exponential(1.0 / 1800.0) : 0.0;

    const double fnlwgt = Clamp(rng.Gaussian(190000, 90000), 12000, 1500000);

    table.AppendRow({
        Datum::Categorical(workclass),
        Datum::Categorical(education),
        Datum::Categorical(marital),
        Datum::Categorical(occupation),
        Datum::Categorical(relationship),
        Datum::Categorical(race),
        Datum::Categorical(sex),
        Datum::Categorical(region),
        Datum::Numeric(std::round(age)),
        Datum::Numeric(std::round(fnlwgt)),
        Datum::Numeric(std::round(education_num)),
        Datum::Numeric(std::round(capital_gain)),
        Datum::Numeric(std::round(capital_loss)),
        Datum::Numeric(std::round(hours)),
    });
  }
  return table;
}

Table GenerateFlights(const FlightsConfig& config) {
  Schema schema;
  // 6 categorical attributes.
  (void)schema.AddAttribute("origin_state", AttrType::kCategorical);  // 0
  (void)schema.AddAttribute("dest_state", AttrType::kCategorical);    // 1
  (void)schema.AddAttribute("carrier", AttrType::kCategorical);       // 2
  (void)schema.AddAttribute("flight_number", AttrType::kCategorical);  // 3
  (void)schema.AddAttribute("day_of_week", AttrType::kCategorical);   // 4
  (void)schema.AddAttribute("month", AttrType::kCategorical);         // 5
  // 6 numeric attributes.
  (void)schema.AddAttribute("dep_delay", AttrType::kNumeric);  // 6
  (void)schema.AddAttribute("arr_delay", AttrType::kNumeric);  // 7
  (void)schema.AddAttribute("distance", AttrType::kNumeric);   // 8
  (void)schema.AddAttribute("air_time", AttrType::kNumeric);   // 9
  (void)schema.AddAttribute("taxi_out", AttrType::kNumeric);   // 10
  (void)schema.AddAttribute("dep_hour", AttrType::kNumeric);   // 11

  constexpr int32_t kStates = 50, kCarriers = 18, kDays = 7, kMonths = 12;
  const int32_t kFlights = config.flight_number_cardinality;

  Table table(schema);
  InternDomain(table, 0, "st", kStates);
  InternDomain(table, 1, "st", kStates);
  InternDomain(table, 2, "carrier", kCarriers);
  table.DeclareCardinality(3, kFlights);
  InternDomain(table, 4, "dow", kDays);
  InternDomain(table, 5, "mon", kMonths);

  util::Rng rng(config.seed);
  const util::ZipfDistribution state_dist(kStates, 1.05);
  const util::ZipfDistribution carrier_dist(kCarriers, 0.9);
  const util::ZipfDistribution flight_dist(
      static_cast<uint64_t>(kFlights), 0.6);

  for (size_t i = 0; i < config.rows; ++i) {
    const auto origin = static_cast<int32_t>(state_dist.Sample(rng));
    auto dest = static_cast<int32_t>(state_dist.Sample(rng));
    if (dest == origin) dest = (dest + 1) % kStates;
    const auto carrier = static_cast<int32_t>(carrier_dist.Sample(rng));
    // Flight numbers cluster per carrier: block-offset the zipf sample so
    // filters on carrier induce correlated filters on flight number.
    const int32_t block = kFlights / kCarriers;
    const int32_t flight =
        (carrier * block +
         static_cast<int32_t>(flight_dist.Sample(rng)) % std::max(block, 1)) %
        kFlights;
    const auto dow = static_cast<int32_t>(rng.NextIndex(kDays));
    const auto month = static_cast<int32_t>(rng.NextIndex(kMonths));

    // Distance depends on the origin/dest pair deterministically plus noise,
    // so (origin, dest) -> distance is a near-functional dependency.
    const double base_distance =
        150.0 + 40.0 * std::abs(origin - dest) +
        17.0 * ((origin * 7 + dest * 13) % 29);
    const double distance = Clamp(
        base_distance + rng.Gaussian(0, 30), 80, 3000);

    const double dep_hour = Clamp(rng.Gaussian(13, 4.5), 0, 23);

    // Departure delay: mostly small, heavy right tail; worse in evenings,
    // summer months, and for the tail carriers.
    double dep_delay = rng.Gaussian(0, 4);
    if (rng.Bernoulli(0.22 + 0.01 * carrier)) {
      dep_delay += rng.Exponential(1.0 / (18.0 + 2.5 * (dep_hour - 6)));
    }
    if (month >= 5 && month <= 7) dep_delay += rng.Exponential(1.0 / 6.0);
    dep_delay = Clamp(dep_delay, -15, 600);

    const double air_time =
        Clamp(distance / 7.5 + rng.Gaussian(0, 6), 20, 500);
    const double taxi_out = Clamp(rng.Exponential(1.0 / 14.0) + 5, 5, 120);
    // Arrival delay tracks departure delay with en-route slack.
    const double arr_delay =
        Clamp(dep_delay + rng.Gaussian(-3, 8), -60, 650);

    table.AppendRow({
        Datum::Categorical(origin),
        Datum::Categorical(dest),
        Datum::Categorical(carrier),
        Datum::Categorical(flight),
        Datum::Categorical(dow),
        Datum::Categorical(month),
        Datum::Numeric(std::round(dep_delay)),
        Datum::Numeric(std::round(arr_delay)),
        Datum::Numeric(std::round(distance)),
        Datum::Numeric(std::round(air_time)),
        Datum::Numeric(std::round(taxi_out)),
        Datum::Numeric(std::floor(dep_hour)),
    });
  }
  return table;
}

Table GenerateTaxi(const TaxiConfig& config) {
  Schema schema;
  (void)schema.AddAttribute("pickup_borough", AttrType::kCategorical);  // 0
  (void)schema.AddAttribute("payment_type", AttrType::kCategorical);    // 1
  (void)schema.AddAttribute("hour", AttrType::kCategorical);            // 2
  (void)schema.AddAttribute("passengers", AttrType::kNumeric);          // 3
  (void)schema.AddAttribute("trip_distance", AttrType::kNumeric);       // 4
  (void)schema.AddAttribute("duration_min", AttrType::kNumeric);        // 5
  (void)schema.AddAttribute("fare", AttrType::kNumeric);                // 6

  Table table(schema);
  const char* boroughs[] = {"Manhattan", "Brooklyn", "Queens", "Bronx",
                            "StatenIsland"};
  for (const char* b : boroughs) table.InternLabel(0, b);
  for (const char* p : {"card", "cash", "other"}) table.InternLabel(1, p);
  for (int h = 0; h < 24; ++h) table.InternLabel(2, "h" + std::to_string(h));

  util::Rng rng(config.seed);
  const std::vector<double> borough_w = {0.55, 0.2, 0.15, 0.07, 0.03};

  for (size_t i = 0; i < config.rows; ++i) {
    const auto borough = static_cast<int32_t>(rng.Categorical(borough_w));
    const int32_t payment = rng.Bernoulli(0.7) ? 0 : (rng.Bernoulli(0.9) ? 1
                                                                         : 2);
    // Two daily demand peaks.
    const double peak = rng.Bernoulli(0.5) ? 8.5 : 18.0;
    const auto hour = static_cast<int32_t>(
        Clamp(std::round(rng.Gaussian(peak, 3.5)), 0, 23));
    const double passengers =
        rng.Bernoulli(0.7) ? 1 : std::round(rng.Uniform(2, 6));
    // Manhattan trips are shorter; outer boroughs longer.
    const double dist_mean = borough == 0 ? 2.2 : 4.5 + borough;
    const double trip_distance =
        Clamp(rng.Exponential(1.0 / dist_mean) + 0.3, 0.3, 40);
    // Rush-hour trips are slower per mile.
    const bool rush = (hour >= 7 && hour <= 9) || (hour >= 16 && hour <= 19);
    const double pace = rush ? 6.0 : 3.5;  // minutes per mile
    const double duration =
        Clamp(trip_distance * pace + rng.Gaussian(4, 3), 2, 180);
    const double fare =
        Clamp(2.5 + 2.6 * trip_distance + 0.35 * duration +
                  rng.Gaussian(0, 1.5),
              3, 250);

    table.AppendRow({
        Datum::Categorical(borough),
        Datum::Categorical(payment),
        Datum::Categorical(hour),
        Datum::Numeric(passengers),
        Datum::Numeric(trip_distance),
        Datum::Numeric(duration),
        Datum::Numeric(fare),
    });
  }
  return table;
}

}  // namespace deepaqp::data
