#ifndef DEEPAQP_DATA_WORKLOAD_H_
#define DEEPAQP_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "aqp/query.h"
#include "relation/table.h"
#include "util/rng.h"

namespace deepaqp::data {

/// IDEBench-style random aggregate-query generation (Sec. VI-A: "queries
/// that are diverse in various facets such as number of predicates,
/// selectivity, number of groups, attribute correlation").
struct WorkloadConfig {
  size_t num_queries = 100;
  uint64_t seed = 7;
  /// Max filter conditions per query (0..max, drawn uniformly).
  int max_predicates = 3;
  /// Probability a query has a GROUP BY clause.
  double group_by_prob = 0.4;
  /// Probability a multi-condition filter is conjunctive (else disjunctive).
  double conjunctive_prob = 0.8;
  /// Discard queries whose exact selectivity is below this floor (queries
  /// matching nothing exercise neither estimator).
  double min_selectivity = 0.0005;
  /// Skip group-by attributes with more than this many distinct values to
  /// keep per-group supports meaningful.
  int32_t max_group_cardinality = 64;
  /// Probability that a SUM/AVG query becomes a QUANTILE query instead
  /// (level drawn from {0.25, 0.5, 0.9}). 0 keeps the paper's workload mix.
  double quantile_prob = 0.0;
};

/// Generates a workload against `table`. Filter constants are drawn from the
/// data itself (codes that occur, numeric quantiles), so selectivities span
/// several orders of magnitude without degenerating to zero.
std::vector<aqp::AggregateQuery> GenerateWorkload(
    const relation::Table& table, const WorkloadConfig& config);

/// Splits `workload` indices into the paper's Fig. 3 selectivity buckets:
/// [0.1, 1.0], [0.01, 0.1), (0, 0.01). Queries with zero selectivity are
/// dropped.
struct SelectivityBuckets {
  std::vector<size_t> high;  // 0.1 - 1.0
  std::vector<size_t> mid;   // 0.01 - 0.1
  std::vector<size_t> low;   // < 0.01
};

SelectivityBuckets BucketBySelectivity(
    const std::vector<aqp::AggregateQuery>& workload,
    const relation::Table& table);

}  // namespace deepaqp::data

#endif  // DEEPAQP_DATA_WORKLOAD_H_
