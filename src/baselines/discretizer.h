#ifndef DEEPAQP_BASELINES_DISCRETIZER_H_
#define DEEPAQP_BASELINES_DISCRETIZER_H_

#include <vector>

#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Maps every attribute of a relation onto a small discrete domain:
/// categorical attributes pass through (codes), numeric attributes are
/// discretized into at most `max_bins` bins whose boundaries are chosen by
/// recursive entropy-balancing splits of the empirical distribution ([12]'s
/// unsupervised entropy discretization: each split point maximizes the
/// entropy of the induced two-way partition, i.e., balances probability
/// mass, recursively to the bin budget). Shared by the Bayesian-network and
/// MSPN baselines.
class Discretizer {
 public:
  static util::Result<Discretizer> Fit(const relation::Table& table,
                                       int max_bins);

  /// Discrete code of cell (row, attr).
  int32_t CodeOf(const relation::Table& table, size_t row,
                 size_t attr) const;

  /// Domain size of attribute `attr` after discretization.
  int32_t Cardinality(size_t attr) const;

  /// Value range [lo, hi] of a numeric attribute's bin `code`.
  std::pair<double, double> BinRange(size_t attr, int32_t code) const;

  /// True if attribute `attr` is numeric (discretized rather than native).
  bool IsNumeric(size_t attr) const { return attrs_[attr].is_numeric; }

  /// Materializes a representative value for (attr, code): the code itself
  /// for categorical attributes; a uniform draw within the bin for numeric
  /// ones.
  relation::Datum Materialize(size_t attr, int32_t code,
                              util::Rng& rng) const;

  const relation::Schema& schema() const { return schema_; }

 private:
  struct AttrInfo {
    bool is_numeric = false;
    int32_t cardinality = 0;
    std::vector<double> edges;  // numeric: cardinality + 1 entries
  };

  relation::Schema schema_;
  std::vector<AttrInfo> attrs_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_DISCRETIZER_H_
