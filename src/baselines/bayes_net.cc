#include "baselines/bayes_net.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace deepaqp::baselines {

namespace {

/// Pairwise mutual information between discretized attributes a and b.
double MutualInformation(const std::vector<int32_t>& a, int32_t card_a,
                         const std::vector<int32_t>& b, int32_t card_b) {
  const size_t n = a.size();
  std::vector<double> joint(static_cast<size_t>(card_a) * card_b, 0.0);
  std::vector<double> pa(card_a, 0.0), pb(card_b, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    joint[a[i] * card_b + b[i]] += inv_n;
    pa[a[i]] += inv_n;
    pb[b[i]] += inv_n;
  }
  double mi = 0.0;
  for (int32_t x = 0; x < card_a; ++x) {
    for (int32_t y = 0; y < card_b; ++y) {
      const double j = joint[x * card_b + y];
      if (j > 0.0) mi += j * std::log(j / (pa[x] * pb[y]));
    }
  }
  return mi;
}

}  // namespace

util::Result<std::unique_ptr<BayesNetModel>> BayesNetModel::Train(
    const relation::Table& table, const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot train BN on empty table");
  }
  auto model = std::unique_ptr<BayesNetModel>(new BayesNetModel());
  DEEPAQP_ASSIGN_OR_RETURN(model->discretizer_,
                           Discretizer::Fit(table, options.max_bins));
  const size_t m = table.num_attributes();
  const size_t n = table.num_rows();

  // Discretize all cells once.
  std::vector<std::vector<int32_t>> codes(m, std::vector<int32_t>(n));
  std::vector<int32_t> card(m);
  for (size_t c = 0; c < m; ++c) {
    card[c] = model->discretizer_.Cardinality(c);
    for (size_t r = 0; r < n; ++r) {
      codes[c][r] = model->discretizer_.CodeOf(table, r, c);
    }
  }

  // Chow-Liu: maximum spanning tree over pairwise mutual information,
  // grown Prim-style from attribute 0.
  model->parent_.assign(m, -1);
  std::vector<bool> in_tree(m, false);
  std::vector<double> best_mi(m, -1.0);
  std::vector<int> best_link(m, -1);
  in_tree[0] = true;
  for (size_t c = 1; c < m; ++c) {
    best_mi[c] = MutualInformation(codes[0], card[0], codes[c], card[c]);
    best_link[c] = 0;
  }
  for (size_t added = 1; added < m; ++added) {
    int pick = -1;
    for (size_t c = 0; c < m; ++c) {
      if (!in_tree[c] && (pick < 0 || best_mi[c] > best_mi[pick])) {
        pick = static_cast<int>(c);
      }
    }
    in_tree[pick] = true;
    model->parent_[pick] = best_link[pick];
    for (size_t c = 0; c < m; ++c) {
      if (in_tree[c]) continue;
      const double mi = MutualInformation(codes[pick], card[pick], codes[c],
                                          card[c]);
      if (mi > best_mi[c]) {
        best_mi[c] = mi;
        best_link[c] = pick;
      }
    }
  }

  // Ancestral order: BFS from the root.
  model->order_.clear();
  std::queue<size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const size_t cur = frontier.front();
    frontier.pop();
    model->order_.push_back(cur);
    for (size_t c = 0; c < m; ++c) {
      if (model->parent_[c] == static_cast<int>(cur)) frontier.push(c);
    }
  }
  DEEPAQP_CHECK_EQ(model->order_.size(), m);

  // CPTs with Laplace smoothing.
  model->cpt_.resize(m);
  for (size_t c = 0; c < m; ++c) {
    const int parent = model->parent_[c];
    const int32_t pcard = parent < 0 ? 1 : card[parent];
    std::vector<double>& cpt = model->cpt_[c];
    cpt.assign(static_cast<size_t>(pcard) * card[c], options.laplace);
    for (size_t r = 0; r < n; ++r) {
      const int32_t p = parent < 0 ? 0 : codes[parent][r];
      cpt[static_cast<size_t>(p) * card[c] + codes[c][r]] += 1.0;
    }
    for (int32_t p = 0; p < pcard; ++p) {
      double total = 0.0;
      for (int32_t v = 0; v < card[c]; ++v) {
        total += cpt[static_cast<size_t>(p) * card[c] + v];
      }
      for (int32_t v = 0; v < card[c]; ++v) {
        cpt[static_cast<size_t>(p) * card[c] + v] /= total;
      }
    }
  }
  return model;
}

relation::Table BayesNetModel::Generate(size_t n, util::Rng& rng) {
  const relation::Schema& schema = discretizer_.schema();
  relation::Table out(schema);
  const size_t m = schema.num_attributes();
  for (size_t c = 0; c < m; ++c) {
    if (schema.IsCategorical(c)) {
      out.DeclareCardinality(c, discretizer_.Cardinality(c));
    }
  }
  std::vector<int32_t> sampled(m);
  std::vector<relation::Datum> row(m);
  std::vector<double> probs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t c : order_) {
      const int parent = parent_[c];
      const int32_t card = discretizer_.Cardinality(c);
      const int32_t p = parent < 0 ? 0 : sampled[parent];
      probs.assign(cpt_[c].begin() + static_cast<size_t>(p) * card,
                   cpt_[c].begin() + static_cast<size_t>(p + 1) * card);
      sampled[c] = static_cast<int32_t>(rng.Categorical(probs));
      row[c] = discretizer_.Materialize(c, sampled[c], rng);
    }
    out.AppendRow(row);
  }
  return out;
}

aqp::SampleFn BayesNetModel::MakeSampler(uint64_t seed) {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, rng);
  };
}

size_t BayesNetModel::SizeBytes() const {
  size_t entries = 0;
  for (const auto& cpt : cpt_) entries += cpt.size();
  return entries * sizeof(double);
}

}  // namespace deepaqp::baselines
