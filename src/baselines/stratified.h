#ifndef DEEPAQP_BASELINES_STRATIFIED_H_
#define DEEPAQP_BASELINES_STRATIFIED_H_

#include <vector>

#include "aqp/evaluation.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Classic server-side pre-computed stratified sample (Chaudhuri et al. [8],
/// the "traditional AQP" family of Sec. VII). The relation is stratified on
/// one categorical attribute; each stratum receives an allocation between
/// proportional ("house") and equal ("senate") controlled by
/// `senate_fraction`, guaranteeing minority groups representation that
/// uniform samples lose. Unlike the generative model, the sample is fixed
/// at build time: a client cannot grow it on demand.
class StratifiedSample {
 public:
  struct Options {
    /// Stratification attribute (categorical).
    size_t strata_attr = 0;
    /// Total stored sample rows.
    size_t sample_rows = 1000;
    /// 0 = fully proportional, 1 = equal allocation per stratum.
    double senate_fraction = 0.5;
    uint64_t seed = 101;
  };

  static util::Result<StratifiedSample> Build(const relation::Table& table,
                                              const Options& options);

  /// The materialized sample with per-row scale-up weights aligned by row:
  /// weight[i] = stratum_population / stratum_sample_size. Weighted
  /// estimators (Horvitz-Thompson) use these; the plain harness can also
  /// resample rows proportionally to weight to get an unbiased uniform-like
  /// sample of bounded size.
  const relation::Table& sample() const { return sample_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Draws `rows` tuples from the stored sample with probability
  /// proportional to weight (with replacement): distributed approximately
  /// like uniform draws from the original relation, so the standard
  /// estimator applies unchanged.
  relation::Table ResampleUniformLike(size_t rows, util::Rng& rng) const;

  aqp::SampleFn MakeSampler(uint64_t seed = 103) const;

 private:
  relation::Table sample_{relation::Schema()};
  std::vector<double> weights_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_STRATIFIED_H_
