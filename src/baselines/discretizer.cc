#include "baselines/discretizer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepaqp::baselines {

namespace {

/// Recursively splits sorted values into bins by entropy-balancing: each
/// split point divides the current range's mass as evenly as possible
/// (maximizing split entropy), recursing until the bin budget is used.
void EntropySplit(const std::vector<double>& sorted, size_t lo, size_t hi,
                  int budget, std::vector<double>* edges) {
  if (budget <= 1 || hi - lo < 2) return;
  // Balanced-mass split point (ties collapse to the nearest distinct value).
  size_t mid = lo + (hi - lo) / 2;
  // Move mid forward past duplicates so the edge separates distinct values.
  size_t fwd = mid;
  while (fwd < hi && sorted[fwd] == sorted[mid - 1]) ++fwd;
  size_t back = mid;
  while (back > lo + 1 && sorted[back - 1] == sorted[mid - 1]) --back;
  if (fwd < hi && (mid - back > fwd - mid || back == lo + 1)) {
    mid = fwd;
  } else if (back > lo) {
    mid = back;
  }
  if (mid <= lo || mid >= hi) return;
  if (sorted[mid] == sorted[lo]) return;
  edges->push_back(sorted[mid]);
  const int left_budget = budget / 2;
  EntropySplit(sorted, lo, mid, left_budget, edges);
  EntropySplit(sorted, mid, hi, budget - left_budget, edges);
}

}  // namespace

util::Result<Discretizer> Discretizer::Fit(const relation::Table& table,
                                           int max_bins) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot fit discretizer on empty table");
  }
  if (max_bins < 2) {
    return util::Status::InvalidArgument("max_bins must be >= 2");
  }
  Discretizer d;
  d.schema_ = table.schema();
  d.attrs_.resize(table.num_attributes());
  for (size_t c = 0; c < table.num_attributes(); ++c) {
    AttrInfo& info = d.attrs_[c];
    if (table.schema().IsCategorical(c)) {
      info.is_numeric = false;
      info.cardinality = std::max<int32_t>(1, table.Cardinality(c));
      continue;
    }
    info.is_numeric = true;
    const auto& col = table.NumColumn(c);
    std::vector<double> values(col.begin(), col.end());
    std::sort(values.begin(), values.end());
    std::vector<double> interior;
    EntropySplit(values, 0, values.size(), max_bins, &interior);
    std::sort(interior.begin(), interior.end());
    interior.erase(std::unique(interior.begin(), interior.end()),
                   interior.end());
    info.edges.push_back(values.front());
    for (double e : interior) {
      if (e > info.edges.back()) info.edges.push_back(e);
    }
    info.edges.push_back(std::max(values.back(), info.edges.back()));
    info.cardinality =
        std::max<int32_t>(1, static_cast<int32_t>(info.edges.size()) - 1);
  }
  return d;
}

int32_t Discretizer::CodeOf(const relation::Table& table, size_t row,
                            size_t attr) const {
  const AttrInfo& info = attrs_[attr];
  if (!info.is_numeric) return table.CatCode(row, attr);
  const double v = table.NumValue(row, attr);
  const auto& e = info.edges;
  const auto it = std::upper_bound(e.begin() + 1, e.end() - 1, v);
  return static_cast<int32_t>(it - (e.begin() + 1));
}

int32_t Discretizer::Cardinality(size_t attr) const {
  return attrs_[attr].cardinality;
}

std::pair<double, double> Discretizer::BinRange(size_t attr,
                                                int32_t code) const {
  const AttrInfo& info = attrs_[attr];
  DEEPAQP_CHECK(info.is_numeric);
  code = std::clamp(code, 0, info.cardinality - 1);
  return {info.edges[code], info.edges[code + 1]};
}

relation::Datum Discretizer::Materialize(size_t attr, int32_t code,
                                         util::Rng& rng) const {
  const AttrInfo& info = attrs_[attr];
  if (!info.is_numeric) return relation::Datum::Categorical(code);
  code = std::clamp(code, 0, info.cardinality - 1);
  const double lo = info.edges[code];
  const double hi = info.edges[code + 1];
  return relation::Datum::Numeric(lo == hi ? lo : rng.Uniform(lo, hi));
}

}  // namespace deepaqp::baselines
