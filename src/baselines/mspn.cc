#include "baselines/mspn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace deepaqp::baselines {

namespace {

/// Mutual information between two discretized attributes over a row subset.
double SubsetMi(const std::vector<int32_t>& a, int32_t card_a,
                const std::vector<int32_t>& b, int32_t card_b,
                const std::vector<size_t>& rows) {
  std::vector<double> joint(static_cast<size_t>(card_a) * card_b, 0.0);
  std::vector<double> pa(card_a, 0.0), pb(card_b, 0.0);
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (size_t r : rows) {
    joint[a[r] * card_b + b[r]] += inv_n;
    pa[a[r]] += inv_n;
    pb[b[r]] += inv_n;
  }
  double mi = 0.0;
  for (int32_t x = 0; x < card_a; ++x) {
    for (int32_t y = 0; y < card_b; ++y) {
      const double j = joint[x * card_b + y];
      if (j > 0.0) mi += j * std::log(j / (pa[x] * pb[y]));
    }
  }
  return mi;
}

/// Union-find over attribute indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

int MspnModel::MakeLeaf(const std::vector<std::vector<int32_t>>& codes,
                        const std::vector<size_t>& rows, size_t attr) {
  Node leaf;
  leaf.type = NodeType::kLeaf;
  leaf.attr = attr;
  const int32_t card = discretizer_.Cardinality(attr);
  leaf.probs.assign(card, 0.5);  // light smoothing
  for (size_t r : rows) leaf.probs[codes[attr][r]] += 1.0;
  double total = 0.0;
  for (double p : leaf.probs) total += p;
  for (double& p : leaf.probs) p /= total;
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size()) - 1;
}

int MspnModel::BuildNode(const relation::Table& table,
                         const std::vector<std::vector<int32_t>>& codes,
                         const std::vector<size_t>& rows,
                         const std::vector<size_t>& attrs, int depth,
                         util::Rng& rng, const Options& options) {
  DEEPAQP_CHECK(!attrs.empty());
  if (attrs.size() == 1) {
    return MakeLeaf(codes, rows, attrs[0]);
  }

  const bool can_split_rows =
      rows.size() >= 2 * options.min_instances && depth < options.max_depth;

  // Try a product split: cluster attributes by pairwise dependency.
  {
    UnionFind uf(attrs.size());
    for (size_t i = 0; i < attrs.size(); ++i) {
      for (size_t j = i + 1; j < attrs.size(); ++j) {
        const double mi =
            SubsetMi(codes[attrs[i]], discretizer_.Cardinality(attrs[i]),
                     codes[attrs[j]], discretizer_.Cardinality(attrs[j]),
                     rows);
        if (mi > options.dependency_threshold) uf.Union(i, j);
      }
    }
    std::vector<std::vector<size_t>> clusters;
    std::vector<int> cluster_of(attrs.size(), -1);
    for (size_t i = 0; i < attrs.size(); ++i) {
      const size_t root = uf.Find(i);
      if (cluster_of[root] < 0) {
        cluster_of[root] = static_cast<int>(clusters.size());
        clusters.emplace_back();
      }
      clusters[cluster_of[root]].push_back(attrs[i]);
    }
    if (clusters.size() > 1) {
      Node prod;
      prod.type = NodeType::kProduct;
      const int id = static_cast<int>(nodes_.size());
      nodes_.push_back(std::move(prod));
      std::vector<int> children;
      for (const auto& cluster : clusters) {
        children.push_back(
            BuildNode(table, codes, rows, cluster, depth + 1, rng, options));
      }
      nodes_[id].children = std::move(children);
      return id;
    }
  }

  if (!can_split_rows) {
    // Cannot split rows further: factorize fully (independence fallback).
    Node prod;
    prod.type = NodeType::kProduct;
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(prod));
    std::vector<int> children;
    for (size_t attr : attrs) {
      children.push_back(MakeLeaf(codes, rows, attr));
    }
    nodes_[id].children = std::move(children);
    return id;
  }

  // Sum split: 2-means over the discretized codes (normalized).
  std::vector<size_t> left, right;
  {
    const size_t d = attrs.size();
    auto feature = [&](size_t row, size_t k) {
      const size_t attr = attrs[k];
      const int32_t card = discretizer_.Cardinality(attr);
      return card <= 1 ? 0.0
                       : static_cast<double>(codes[attr][row]) /
                             static_cast<double>(card - 1);
    };
    std::vector<double> c0(d), c1(d);
    const size_t seed0 = rows[rng.NextIndex(rows.size())];
    size_t seed1 = rows[rng.NextIndex(rows.size())];
    for (int tries = 0; seed1 == seed0 && tries < 8; ++tries) {
      seed1 = rows[rng.NextIndex(rows.size())];
    }
    for (size_t k = 0; k < d; ++k) {
      c0[k] = feature(seed0, k);
      c1[k] = feature(seed1, k);
    }
    for (int iter = 0; iter < options.kmeans_iterations; ++iter) {
      left.clear();
      right.clear();
      std::vector<double> s0(d, 0.0), s1(d, 0.0);
      for (size_t r : rows) {
        double d0 = 0.0, d1 = 0.0;
        for (size_t k = 0; k < d; ++k) {
          const double f = feature(r, k);
          d0 += (f - c0[k]) * (f - c0[k]);
          d1 += (f - c1[k]) * (f - c1[k]);
        }
        if (d0 <= d1) {
          left.push_back(r);
          for (size_t k = 0; k < d; ++k) s0[k] += feature(r, k);
        } else {
          right.push_back(r);
          for (size_t k = 0; k < d; ++k) s1[k] += feature(r, k);
        }
      }
      if (left.empty() || right.empty()) break;
      for (size_t k = 0; k < d; ++k) {
        c0[k] = s0[k] / static_cast<double>(left.size());
        c1[k] = s1[k] / static_cast<double>(right.size());
      }
    }
  }
  if (left.empty() || right.empty() ||
      left.size() < options.min_instances / 4 ||
      right.size() < options.min_instances / 4) {
    // Degenerate clustering: factorize.
    Node prod;
    prod.type = NodeType::kProduct;
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(prod));
    std::vector<int> children;
    for (size_t attr : attrs) {
      children.push_back(MakeLeaf(codes, rows, attr));
    }
    nodes_[id].children = std::move(children);
    return id;
  }

  Node sum;
  sum.type = NodeType::kSum;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(sum));
  const double total = static_cast<double>(rows.size());
  const int left_child =
      BuildNode(table, codes, left, attrs, depth + 1, rng, options);
  const int right_child =
      BuildNode(table, codes, right, attrs, depth + 1, rng, options);
  nodes_[id].children = {left_child, right_child};
  nodes_[id].weights = {static_cast<double>(left.size()) / total,
                        static_cast<double>(right.size()) / total};
  return id;
}

util::Result<std::unique_ptr<MspnModel>> MspnModel::Train(
    const relation::Table& table, const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot train MSPN on empty table");
  }
  auto model = std::unique_ptr<MspnModel>(new MspnModel());
  DEEPAQP_ASSIGN_OR_RETURN(model->discretizer_,
                           Discretizer::Fit(table, options.max_bins));
  const size_t m = table.num_attributes();
  const size_t n = table.num_rows();
  std::vector<std::vector<int32_t>> codes(m, std::vector<int32_t>(n));
  for (size_t c = 0; c < m; ++c) {
    for (size_t r = 0; r < n; ++r) {
      codes[c][r] = model->discretizer_.CodeOf(table, r, c);
    }
  }
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<size_t> attrs(m);
  std::iota(attrs.begin(), attrs.end(), 0);
  util::Rng rng(options.seed);
  model->root_ =
      model->BuildNode(table, codes, rows, attrs, 0, rng, options);
  return model;
}

void MspnModel::SampleInto(int node, std::vector<int32_t>* sampled,
                           util::Rng& rng) const {
  const Node& n = nodes_[node];
  switch (n.type) {
    case NodeType::kLeaf:
      (*sampled)[n.attr] =
          static_cast<int32_t>(rng.Categorical(n.probs));
      break;
    case NodeType::kSum:
      SampleInto(n.children[rng.Categorical(n.weights)], sampled, rng);
      break;
    case NodeType::kProduct:
      for (int child : n.children) SampleInto(child, sampled, rng);
      break;
  }
}

relation::Table MspnModel::Generate(size_t n, util::Rng& rng) {
  const relation::Schema& schema = discretizer_.schema();
  relation::Table out(schema);
  const size_t m = schema.num_attributes();
  for (size_t c = 0; c < m; ++c) {
    if (schema.IsCategorical(c)) {
      out.DeclareCardinality(c, discretizer_.Cardinality(c));
    }
  }
  std::vector<int32_t> sampled(m);
  std::vector<relation::Datum> row(m);
  for (size_t i = 0; i < n; ++i) {
    SampleInto(root_, &sampled, rng);
    for (size_t c = 0; c < m; ++c) {
      row[c] = discretizer_.Materialize(c, sampled[c], rng);
    }
    out.AppendRow(row);
  }
  return out;
}

aqp::SampleFn MspnModel::MakeSampler(uint64_t seed) {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, rng);
  };
}

size_t MspnModel::num_leaves() const {
  size_t leaves = 0;
  for (const auto& n : nodes_) leaves += n.type == NodeType::kLeaf;
  return leaves;
}

size_t MspnModel::SizeBytes() const {
  size_t total = 0;
  for (const auto& n : nodes_) {
    total += sizeof(int) * n.children.size();
    total += sizeof(double) * (n.weights.size() + n.probs.size());
  }
  return total;
}

}  // namespace deepaqp::baselines
