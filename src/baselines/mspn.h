#ifndef DEEPAQP_BASELINES_MSPN_H_
#define DEEPAQP_BASELINES_MSPN_H_

#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "baselines/discretizer.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Mixed sum-product network baseline (Molina et al. [36], used for AQP in
/// Kulessa et al. [32]; Fig. 11's "MSPN" bar). Structure learning follows
/// the LearnSPN recipe: product nodes split attributes into clusters that
/// test as independent (pairwise mutual information under a threshold);
/// sum nodes split rows by 2-means clustering; leaves are per-attribute
/// histograms. Sampling is top-down: sum nodes choose a child by weight,
/// product nodes sample every child, leaves sample their histogram.
class MspnModel {
 public:
  struct Options {
    /// Stop row-splitting below this many instances.
    size_t min_instances = 256;
    /// Attributes with pairwise MI above this are considered dependent.
    double dependency_threshold = 0.05;
    /// Discretization budget for numeric attributes (leaves and MI tests).
    int max_bins = 16;
    int max_depth = 16;
    int kmeans_iterations = 8;
    uint64_t seed = 59;
  };

  static util::Result<std::unique_ptr<MspnModel>> Train(
      const relation::Table& table, const Options& options);

  relation::Table Generate(size_t n, util::Rng& rng);

  aqp::SampleFn MakeSampler(uint64_t seed = 61);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t SizeBytes() const;

 private:
  MspnModel() = default;

  enum class NodeType { kSum, kProduct, kLeaf };

  struct Node {
    NodeType type = NodeType::kLeaf;
    std::vector<int> children;
    std::vector<double> weights;  // sum nodes, parallel to children
    // Leaf payload.
    size_t attr = 0;
    std::vector<double> probs;  // histogram over discretized codes
  };

  int BuildNode(const relation::Table& table,
                const std::vector<std::vector<int32_t>>& codes,
                const std::vector<size_t>& rows,
                const std::vector<size_t>& attrs, int depth,
                util::Rng& rng, const Options& options);

  int MakeLeaf(const std::vector<std::vector<int32_t>>& codes,
               const std::vector<size_t>& rows, size_t attr);

  void SampleInto(int node, std::vector<int32_t>* sampled,
                  util::Rng& rng) const;

  Discretizer discretizer_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_MSPN_H_
