#include "baselines/dbest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/logging.h"

namespace deepaqp::baselines {

using aqp::AggFunc;
using aqp::AggregateQuery;
using aqp::CmpOp;
using aqp::GroupValue;
using aqp::QueryResult;

DbestModel::TemplateKey DbestModel::KeyOf(const AggregateQuery& query) {
  std::set<size_t> attrs;
  for (const auto& cond : query.filter.conditions) attrs.insert(cond.attr);
  if (query.IsGroupBy()) {
    attrs.insert(static_cast<size_t>(query.group_by_attr));
  }
  return TemplateKey(attrs.begin(), attrs.end());
}

const DbestModel::Template* DbestModel::FindTemplate(
    const TemplateKey& key) const {
  for (const auto& t : templates_) {
    if (t.attrs == key) return &t;
  }
  return nullptr;
}

util::Result<std::unique_ptr<DbestModel>> DbestModel::Build(
    const relation::Table& table,
    const std::vector<AggregateQuery>& training_workload,
    const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot build DBEst on empty table");
  }
  auto model = std::unique_ptr<DbestModel>(new DbestModel());
  DEEPAQP_ASSIGN_OR_RETURN(model->discretizer_,
                           Discretizer::Fit(table, options.max_bins));
  model->measure_attrs_ = table.schema().NumericIndices();
  model->total_rows_ = table.num_rows();

  // Distinct templates from the training workload.
  std::set<TemplateKey> keys;
  for (const auto& q : training_workload) {
    if (keys.size() >= options.max_templates) break;
    keys.insert(KeyOf(q));
  }

  for (const TemplateKey& key : keys) {
    Template tmpl;
    tmpl.attrs = key;
    uint64_t cells = 1;
    bool feasible = true;
    for (size_t attr : key) {
      const auto card =
          static_cast<uint64_t>(model->discretizer_.Cardinality(attr));
      tmpl.dims.push_back(static_cast<int32_t>(card));
      if (cells > options.max_cells_per_template / std::max<uint64_t>(card,
                                                                      1)) {
        feasible = false;
        break;
      }
      cells *= card;
    }
    if (!feasible) continue;  // template too wide for the size budget

    for (size_t r = 0; r < table.num_rows(); ++r) {
      uint64_t id = 0;
      for (size_t k = 0; k < key.size(); ++k) {
        id = id * static_cast<uint64_t>(tmpl.dims[k]) +
             static_cast<uint64_t>(
                 model->discretizer_.CodeOf(table, r, key[k]));
      }
      Cell& cell = tmpl.cells[id];
      if (cell.measure_sums.empty()) {
        cell.measure_sums.assign(model->measure_attrs_.size(), 0.0);
      }
      cell.count += 1.0;
      for (size_t mi = 0; mi < model->measure_attrs_.size(); ++mi) {
        cell.measure_sums[mi] +=
            table.NumValue(r, model->measure_attrs_[mi]);
      }
    }
    model->templates_.push_back(std::move(tmpl));
  }
  return model;
}

util::Result<QueryResult> DbestModel::Answer(
    const AggregateQuery& query) const {
  if (!query.filter.conjunctive && query.filter.conditions.size() > 1) {
    return util::Status::Unimplemented(
        "DBEst templates cover conjunctive filters only");
  }
  if (query.agg == AggFunc::kQuantile) {
    return util::Status::Unimplemented(
        "DBEst cells store counts and sums; quantiles are not served");
  }
  const TemplateKey key = KeyOf(query);
  const Template* tmpl = FindTemplate(key);
  if (tmpl == nullptr) {
    return util::Status::NotFound("unknown query template");
  }
  // Index of the measure among stored sums.
  int measure_index = -1;
  if (query.agg != AggFunc::kCount) {
    for (size_t mi = 0; mi < measure_attrs_.size(); ++mi) {
      if (measure_attrs_[mi] == static_cast<size_t>(query.measure_attr)) {
        measure_index = static_cast<int>(mi);
      }
    }
    if (measure_index < 0) {
      return util::Status::InvalidArgument("measure is not numeric");
    }
  }

  struct GroupAcc {
    double count = 0.0;
    double sum = 0.0;
  };
  std::map<int32_t, GroupAcc> acc;
  std::vector<int32_t> codes(key.size());

  for (const auto& [id, cell] : tmpl->cells) {
    // Unpack the mixed-radix cell id into per-attribute codes.
    uint64_t rest = id;
    for (size_t k = key.size(); k-- > 0;) {
      codes[k] = static_cast<int32_t>(
          rest % static_cast<uint64_t>(tmpl->dims[k]));
      rest /= static_cast<uint64_t>(tmpl->dims[k]);
    }
    // Fraction of the cell satisfying the filter: exact for categorical
    // codes, interval overlap (uniform-within-bin) for numeric bins.
    double frac = 1.0;
    for (size_t k = 0; k < key.size() && frac > 0.0; ++k) {
      const size_t attr = key[k];
      if (!discretizer_.IsNumeric(attr)) {
        const double code = codes[k];
        for (const auto& cond : query.filter.conditions) {
          if (cond.attr == attr && !cond.Matches(code)) frac = 0.0;
        }
        continue;
      }
      auto [lo, hi] = discretizer_.BinRange(attr, codes[k]);
      double a = lo, b = hi;
      for (const auto& cond : query.filter.conditions) {
        if (cond.attr != attr) continue;
        switch (cond.op) {
          case CmpOp::kLt:
          case CmpOp::kLe:
            b = std::min(b, cond.value);
            break;
          case CmpOp::kGt:
          case CmpOp::kGe:
            a = std::max(a, cond.value);
            break;
          case CmpOp::kEq:
            // Point predicate on a continuous bin: zero mass unless the
            // bin is degenerate.
            if (lo == hi && cond.value == lo) break;
            frac = 0.0;
            break;
          case CmpOp::kNe:
            break;  // removes measure-zero mass
        }
      }
      if (frac == 0.0) break;
      frac *= hi == lo ? (a <= lo && lo <= b ? 1.0 : 0.0)
                       : std::clamp((b - a) / (hi - lo), 0.0, 1.0);
    }
    if (frac <= 0.0) continue;

    int32_t group = -1;
    if (query.IsGroupBy()) {
      for (size_t k = 0; k < key.size(); ++k) {
        if (key[k] == static_cast<size_t>(query.group_by_attr)) {
          group = codes[k];
        }
      }
    }
    GroupAcc& g = acc[group];
    g.count += cell.count * frac;
    if (measure_index >= 0) {
      g.sum += cell.measure_sums[measure_index] * frac;
    }
  }

  QueryResult result;
  for (const auto& [group, g] : acc) {
    if (g.count <= 0.0) continue;
    GroupValue v;
    v.group = group;
    v.support = static_cast<size_t>(g.count);
    switch (query.agg) {
      case AggFunc::kCount:
        v.value = g.count;
        break;
      case AggFunc::kSum:
        v.value = g.sum;
        break;
      case AggFunc::kAvg:
        v.value = g.sum / g.count;
        break;
      case AggFunc::kQuantile:
        break;  // rejected above
    }
    result.groups.push_back(v);
  }
  if (!query.IsGroupBy() && result.groups.empty() &&
      query.agg != AggFunc::kAvg) {
    result.groups.push_back(GroupValue{-1, 0.0, 0, 0.0});
  }
  return result;
}

aqp::AnswerFn DbestModel::MakeAnswerer() const {
  return [this](const AggregateQuery& query) { return Answer(query); };
}

size_t DbestModel::SizeBytes() const {
  size_t total = 0;
  for (const auto& t : templates_) {
    total += t.cells.size() *
             (sizeof(uint64_t) + sizeof(double) * (1 + measure_attrs_.size()));
  }
  return total;
}

}  // namespace deepaqp::baselines
