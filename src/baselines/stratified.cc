#include "baselines/stratified.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepaqp::baselines {

util::Result<StratifiedSample> StratifiedSample::Build(
    const relation::Table& table, const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot stratify an empty table");
  }
  if (options.strata_attr >= table.num_attributes() ||
      !table.schema().IsCategorical(options.strata_attr)) {
    return util::Status::InvalidArgument(
        "stratification attribute must be categorical");
  }
  if (options.senate_fraction < 0.0 || options.senate_fraction > 1.0) {
    return util::Status::InvalidArgument("senate_fraction must be in [0,1]");
  }

  // Collect strata.
  const int32_t card = table.Cardinality(options.strata_attr);
  std::vector<std::vector<size_t>> strata(card);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    strata[table.CatCode(r, options.strata_attr)].push_back(r);
  }
  size_t non_empty = 0;
  for (const auto& s : strata) non_empty += !s.empty();
  if (non_empty == 0) {
    return util::Status::Internal("no strata found");
  }

  // Allocation: blend of proportional and equal shares, at least 1 row per
  // non-empty stratum, capped by stratum size.
  util::Rng rng(options.seed);
  StratifiedSample out;
  out.sample_ = relation::Table(table.schema());
  const double total = static_cast<double>(table.num_rows());
  std::vector<size_t> rows_to_take;
  for (const auto& stratum : strata) {
    if (stratum.empty()) continue;
    const double proportional =
        static_cast<double>(options.sample_rows) * stratum.size() / total;
    const double equal = static_cast<double>(options.sample_rows) /
                         static_cast<double>(non_empty);
    auto take = static_cast<size_t>(std::llround(
        (1.0 - options.senate_fraction) * proportional +
        options.senate_fraction * equal));
    take = std::clamp<size_t>(take, 1, stratum.size());
    const auto pick = rng.SampleWithoutReplacement(stratum.size(), take);
    const double weight =
        static_cast<double>(stratum.size()) / static_cast<double>(take);
    for (size_t i : pick) {
      rows_to_take.push_back(stratum[i]);
      out.weights_.push_back(weight);
    }
  }
  out.sample_ = table.Gather(rows_to_take);
  return out;
}

relation::Table StratifiedSample::ResampleUniformLike(
    size_t rows, util::Rng& rng) const {
  DEEPAQP_CHECK_GT(sample_.num_rows(), 0u);
  const util::AliasTable alias(weights_);
  std::vector<size_t> pick(rows);
  for (size_t i = 0; i < rows; ++i) pick[i] = alias.Sample(rng);
  return sample_.Gather(pick);
}

aqp::SampleFn StratifiedSample::MakeSampler(uint64_t seed) const {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return ResampleUniformLike(rows, rng);
  };
}

}  // namespace deepaqp::baselines
