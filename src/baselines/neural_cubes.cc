#include "baselines/neural_cubes.h"

#include <algorithm>
#include <cmath>

#include "aqp/executor.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace deepaqp::baselines {

using aqp::AggFunc;
using aqp::AggregateQuery;
using aqp::CmpOp;
using aqp::QueryResult;
using nn::Matrix;

size_t NeuralCubesModel::feature_dim() const {
  // Per attribute: [active, lo, hi]; plus agg one-hot (3) and measure
  // one-hot (numeric attrs + "none").
  return 3 * schema_.num_attributes() + 3 + measure_attrs_.size() + 1;
}

bool NeuralCubesModel::Featurize(const AggregateQuery& query,
                                 float* out) const {
  if (!query.filter.conjunctive && query.filter.conditions.size() > 1) {
    return false;
  }
  // The query encoding carries one-hot slots for COUNT/SUM/AVG only.
  if (query.agg == AggFunc::kQuantile) return false;
  const size_t m = schema_.num_attributes();
  std::fill(out, out + feature_dim(), 0.0f);
  // Per-attribute normalized intervals.
  for (size_t a = 0; a < m; ++a) {
    out[3 * a + 1] = 0.0f;
    out[3 * a + 2] = 1.0f;
  }
  for (const auto& cond : query.filter.conditions) {
    const size_t a = cond.attr;
    const auto [lo, hi] = attr_range_[a];
    const double span = hi > lo ? hi - lo : 1.0;
    const double c =
        std::clamp((cond.value - lo) / span, 0.0, 1.0);
    float& flo = out[3 * a + 1];
    float& fhi = out[3 * a + 2];
    out[3 * a] = 1.0f;  // active
    switch (cond.op) {
      case CmpOp::kLt:
      case CmpOp::kLe:
        fhi = std::min(fhi, static_cast<float>(c));
        break;
      case CmpOp::kGt:
      case CmpOp::kGe:
        flo = std::max(flo, static_cast<float>(c));
        break;
      case CmpOp::kEq:
        flo = fhi = static_cast<float>(c);
        break;
      case CmpOp::kNe:
        break;  // full interval minus a point; keep full
    }
  }
  // Aggregate one-hot.
  out[3 * m + static_cast<size_t>(query.agg)] = 1.0f;
  // Measure one-hot.
  size_t measure_slot = measure_attrs_.size();  // "none"
  if (query.agg != AggFunc::kCount) {
    for (size_t mi = 0; mi < measure_attrs_.size(); ++mi) {
      if (measure_attrs_[mi] == static_cast<size_t>(query.measure_attr)) {
        measure_slot = mi;
      }
    }
  }
  out[3 * m + 3 + measure_slot] = 1.0f;
  return true;
}

util::Result<std::unique_ptr<NeuralCubesModel>> NeuralCubesModel::Train(
    const relation::Table& table,
    const std::vector<AggregateQuery>& training_workload,
    const Options& options) {
  if (table.num_rows() == 0 || training_workload.empty()) {
    return util::Status::InvalidArgument(
        "NeuralCubes needs data and a training workload");
  }
  auto model = std::unique_ptr<NeuralCubesModel>(new NeuralCubesModel());
  model->options_ = options;
  model->schema_ = table.schema();
  model->total_rows_ = table.num_rows();
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    if (table.schema().IsCategorical(a)) {
      model->attr_range_.emplace_back(
          0.0, std::max<double>(table.Cardinality(a) - 1, 1.0));
    } else {
      auto [lo, hi] = table.NumericRange(a);
      model->attr_range_.emplace_back(lo, hi);
    }
  }
  model->measure_attrs_ = table.schema().NumericIndices();
  for (size_t a : model->measure_attrs_) {
    model->measure_range_.push_back(table.NumericRange(a));
  }

  // Expand the workload into scalar training examples with exact labels.
  std::vector<AggregateQuery> scalars;
  for (const AggregateQuery& q : training_workload) {
    if (!q.filter.conjunctive && q.filter.conditions.size() > 1) continue;
    if (!q.IsGroupBy()) {
      scalars.push_back(q);
      continue;
    }
    const auto gattr = static_cast<size_t>(q.group_by_attr);
    const int32_t card = table.Cardinality(gattr);
    if (card > options.max_group_cardinality) continue;
    for (int32_t code = 0; code < card; ++code) {
      AggregateQuery scalar = q;
      scalar.group_by_attr = -1;
      scalar.filter.conditions.push_back(
          {gattr, CmpOp::kEq, static_cast<double>(code)});
      scalars.push_back(std::move(scalar));
    }
  }
  if (scalars.empty()) {
    return util::Status::InvalidArgument("no trainable queries in workload");
  }

  const size_t fd = model->feature_dim();
  Matrix features(scalars.size(), fd);
  Matrix targets(scalars.size(), 2);  // [count fraction, avg normalized]
  size_t kept = 0;
  for (const AggregateQuery& q : scalars) {
    if (!model->Featurize(q, features.Row(kept))) continue;
    AggregateQuery count_q = q;
    count_q.agg = AggFunc::kCount;
    count_q.measure_attr = -1;
    DEEPAQP_ASSIGN_OR_RETURN(QueryResult count_r,
                             aqp::ExecuteExact(count_q, table));
    const double count = count_r.Scalar();
    targets.At(kept, 0) =
        static_cast<float>(count / static_cast<double>(table.num_rows()));
    double avg_norm = 0.0;
    if (q.agg != AggFunc::kCount && count > 0) {
      AggregateQuery avg_q = q;
      avg_q.agg = AggFunc::kAvg;
      DEEPAQP_ASSIGN_OR_RETURN(QueryResult avg_r,
                               aqp::ExecuteExact(avg_q, table));
      if (!avg_r.groups.empty()) {
        size_t mi = 0;
        for (size_t i = 0; i < model->measure_attrs_.size(); ++i) {
          if (model->measure_attrs_[i] ==
              static_cast<size_t>(q.measure_attr)) {
            mi = i;
          }
        }
        const auto [lo, hi] = model->measure_range_[mi];
        avg_norm = hi > lo ? (avg_r.Scalar() - lo) / (hi - lo) : 0.0;
      }
    }
    targets.At(kept, 1) = static_cast<float>(avg_norm);
    ++kept;
  }
  if (kept == 0) {
    return util::Status::InvalidArgument("no featurizable queries");
  }

  util::Rng rng(options.seed);
  model->net_ = nn::MakeMlpTrunk(fd, options.hidden_dim, options.depth, rng);
  model->net_->Add(
      std::make_unique<nn::Linear>(options.hidden_dim, 2, rng));
  model->net_->Add(std::make_unique<nn::Sigmoid>());

  std::vector<nn::Parameter*> params;
  model->net_->CollectParameters(&params);
  nn::Adam opt(params, options.learning_rate);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto perm = rng.Permutation(kept);
    for (size_t start = 0; start < kept; start += options.batch_size) {
      const size_t end = std::min(kept, start + options.batch_size);
      std::vector<size_t> idx(perm.begin() + start, perm.begin() + end);
      opt.ZeroGrad();
      Matrix out = model->net_->Forward(features.GatherRows(idx));
      auto loss = nn::MeanSquaredError(out, targets.GatherRows(idx));
      model->net_->Backward(loss.grad);
      opt.Step();
    }
  }
  return model;
}

util::Result<double> NeuralCubesModel::AnswerScalar(
    const AggregateQuery& query) {
  Matrix features(1, feature_dim());
  if (!Featurize(query, features.Row(0))) {
    return util::Status::Unimplemented(
        "NeuralCubes serves conjunctive filters only");
  }
  Matrix out = net_->Forward(features);
  const double count_frac = std::clamp<double>(out.At(0, 0), 0.0, 1.0);
  const double count = count_frac * static_cast<double>(total_rows_);
  if (query.agg == AggFunc::kCount) return count;
  size_t mi = 0;
  for (size_t i = 0; i < measure_attrs_.size(); ++i) {
    if (measure_attrs_[i] == static_cast<size_t>(query.measure_attr)) {
      mi = i;
    }
  }
  const auto [lo, hi] = measure_range_[mi];
  const double avg =
      lo + std::clamp<double>(out.At(0, 1), 0.0, 1.0) * (hi - lo);
  return query.agg == AggFunc::kAvg ? avg : avg * count;
}

util::Result<QueryResult> NeuralCubesModel::Answer(
    const AggregateQuery& query) {
  QueryResult result;
  if (!query.IsGroupBy()) {
    DEEPAQP_ASSIGN_OR_RETURN(double value, AnswerScalar(query));
    result.groups.push_back(aqp::GroupValue{-1, value, 0, 0.0});
    return result;
  }
  const auto gattr = static_cast<size_t>(query.group_by_attr);
  const auto [glo, ghi] = attr_range_[gattr];
  const auto card = static_cast<int32_t>(ghi - glo) + 1;
  if (card > options_.max_group_cardinality) {
    return util::Status::Unimplemented("group cardinality too large");
  }
  for (int32_t code = 0; code < card; ++code) {
    AggregateQuery scalar = query;
    scalar.group_by_attr = -1;
    scalar.filter.conditions.push_back(
        {gattr, CmpOp::kEq, static_cast<double>(code)});
    // Estimated group support gates membership (the model never knows
    // exactly which groups are empty).
    AggregateQuery count_q = scalar;
    count_q.agg = AggFunc::kCount;
    count_q.measure_attr = -1;
    DEEPAQP_ASSIGN_OR_RETURN(double count, AnswerScalar(count_q));
    if (count < 0.5) continue;
    DEEPAQP_ASSIGN_OR_RETURN(double value, AnswerScalar(scalar));
    result.groups.push_back(
        aqp::GroupValue{code, value, static_cast<size_t>(count), 0.0});
  }
  return result;
}

aqp::AnswerFn NeuralCubesModel::MakeAnswerer() {
  return [this](const AggregateQuery& query) { return Answer(query); };
}

size_t NeuralCubesModel::NumParameters() {
  return nn::CountParameters(*net_);
}

}  // namespace deepaqp::baselines
