#ifndef DEEPAQP_BASELINES_BAYES_NET_H_
#define DEEPAQP_BASELINES_BAYES_NET_H_

#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "baselines/discretizer.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Discrete Bayesian-network baseline (Fig. 11's "BN" bar). Numeric
/// attributes are entropy-discretized ([12]); the structure is the Chow-Liu
/// maximum-mutual-information spanning tree; CPTs use Laplace smoothing.
/// Generation is ancestral sampling from the tree root. Tree-shaped BNs are
/// the classic tractable middle ground the paper compares against: easy to
/// train on discrete data, but forced to coarsen large hybrid domains when
/// the model-size budget is strict.
class BayesNetModel {
 public:
  struct Options {
    /// Discretization budget per numeric attribute; also bounds CPT sizes.
    int max_bins = 12;
    double laplace = 1.0;
    uint64_t seed = 47;
  };

  static util::Result<std::unique_ptr<BayesNetModel>> Train(
      const relation::Table& table, const Options& options);

  relation::Table Generate(size_t n, util::Rng& rng);

  aqp::SampleFn MakeSampler(uint64_t seed = 53);

  /// Total CPT entries * sizeof(double): the shipped model size.
  size_t SizeBytes() const;

  /// Parent attribute of each attribute in the learned tree (-1 for the
  /// root). Exposed for tests.
  const std::vector<int>& parents() const { return parent_; }

 private:
  BayesNetModel() = default;

  Discretizer discretizer_;
  /// parent_[a] = attribute index of a's parent, or -1 for the root.
  std::vector<int> parent_;
  /// Ancestral sampling order (root first).
  std::vector<size_t> order_;
  /// cpt_[a][p_code * card_a + code] = P(a = code | parent = p_code);
  /// the root uses p_code = 0 only.
  std::vector<std::vector<double>> cpt_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_BAYES_NET_H_
