#ifndef DEEPAQP_BASELINES_DBEST_H_
#define DEEPAQP_BASELINES_DBEST_H_

#include <map>
#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "baselines/discretizer.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// DBEst-style baseline (Ma & Triantafillou [33]; Fig. 11's "DBEst" bar):
/// instead of samples, it pre-builds compact per-template models — here a
/// joint density over each template's filter/group attributes, discretized,
/// with per-cell tuple counts and measure sums — and answers matching
/// queries directly. Queries whose template (set of filter attributes plus
/// group-by attribute) was not in the training workload, or that use
/// disjunctive filters, are refused: exactly the ad-hoc-query weakness the
/// paper reports for this family.
class DbestModel {
 public:
  struct Options {
    /// Discretization budget per numeric attribute.
    int max_bins = 16;
    /// Upper bound on cells per template (coarser bins if exceeded).
    size_t max_cells_per_template = 65536;
    /// Upper bound on stored templates.
    size_t max_templates = 256;
  };

  /// Builds per-template models for every distinct template appearing in
  /// `training_workload` (the known query templates of the DBEst setup).
  static util::Result<std::unique_ptr<DbestModel>> Build(
      const relation::Table& table,
      const std::vector<aqp::AggregateQuery>& training_workload,
      const Options& options);

  /// Answers `query` if its template is known; NotFound otherwise.
  util::Result<aqp::QueryResult> Answer(
      const aqp::AggregateQuery& query) const;

  aqp::AnswerFn MakeAnswerer() const;

  size_t num_templates() const { return templates_.size(); }
  size_t SizeBytes() const;

 private:
  DbestModel() = default;

  /// Sorted attribute set identifying a template.
  using TemplateKey = std::vector<size_t>;

  struct Cell {
    double count = 0.0;
    /// Sum of each numeric attribute's value over the cell's tuples,
    /// indexed like `measure_attrs`.
    std::vector<double> measure_sums;
  };

  struct Template {
    TemplateKey attrs;
    /// Per-attribute number of buckets (product bounded by options).
    std::vector<int32_t> dims;
    std::map<uint64_t, Cell> cells;
  };

  static TemplateKey KeyOf(const aqp::AggregateQuery& query);

  const Template* FindTemplate(const TemplateKey& key) const;

  Discretizer discretizer_;
  std::vector<size_t> measure_attrs_;  // all numeric attributes
  size_t total_rows_ = 0;
  std::vector<Template> templates_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_DBEST_H_
