#include "baselines/gan.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "util/logging.h"

namespace deepaqp::baselines {

using nn::Matrix;

namespace {

Matrix GaussianNoise(size_t rows, size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

double Mean(const Matrix& column) {
  double acc = 0.0;
  for (size_t r = 0; r < column.rows(); ++r) acc += column.At(r, 0);
  return acc / static_cast<double>(std::max<size_t>(column.rows(), 1));
}

}  // namespace

util::Result<std::unique_ptr<WganModel>> WganModel::Train(
    const relation::Table& table, const Options& options,
    TrainDiagnostics* diag) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot train WGAN on empty table");
  }
  auto model = std::unique_ptr<WganModel>(new WganModel());
  model->options_ = options;
  DEEPAQP_ASSIGN_OR_RETURN(
      model->encoder_, encoding::TupleEncoder::Fit(table, options.encoder));
  const size_t dim = model->encoder_.encoded_dim();

  util::Rng rng(options.seed);
  // Generator: noise -> hidden trunk -> sigmoid probabilities over bits.
  model->generator_ = nn::MakeMlpTrunk(options.noise_dim, options.hidden_dim,
                                       options.depth, rng);
  model->generator_->Add(
      std::make_unique<nn::Linear>(options.hidden_dim, dim, rng));
  model->generator_->Add(std::make_unique<nn::Sigmoid>());
  // Critic: bits -> LeakyReLU trunk -> scalar score (no sigmoid: WGAN).
  model->critic_ = std::make_unique<nn::Sequential>();
  size_t d = dim;
  for (int i = 0; i < options.depth; ++i) {
    model->critic_->Add(std::make_unique<nn::Linear>(
        d, options.hidden_dim, rng));
    model->critic_->Add(std::make_unique<nn::LeakyRelu>(0.2f));
    d = options.hidden_dim;
  }
  model->critic_->Add(std::make_unique<nn::Linear>(d, 1, rng));

  std::vector<nn::Parameter*> gen_params, critic_params;
  model->generator_->CollectParameters(&gen_params);
  model->critic_->CollectParameters(&critic_params);
  nn::RmsProp gen_opt(gen_params, options.learning_rate);
  nn::RmsProp critic_opt(critic_params, options.learning_rate);

  Matrix data = model->encoder_.EncodeAll(table);
  const size_t n = data.rows();
  const size_t batch = std::min(options.batch_size, n);

  auto real_batch = [&] {
    std::vector<size_t> idx(batch);
    for (auto& i : idx) i = rng.NextIndex(n);
    return data.GatherRows(idx);
  };

  const size_t steps_per_epoch = std::max<size_t>(1, n / batch);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double wasserstein = 0.0;
    size_t measures = 0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      // Critic updates: maximize E[f(real)] - E[f(fake)].
      for (int cs = 0; cs < options.critic_steps; ++cs) {
        critic_opt.ZeroGrad();
        Matrix real = real_batch();
        Matrix real_scores = model->critic_->Forward(real);
        // Gradient of (-mean(real_scores)) w.r.t. scores is -1/b.
        Matrix grad_real(real_scores.rows(), 1,
                         -1.0f / static_cast<float>(real_scores.rows()));
        model->critic_->Backward(grad_real);

        Matrix noise = GaussianNoise(batch, options.noise_dim, rng);
        Matrix fake = model->generator_->Forward(noise);
        Matrix fake_scores = model->critic_->Forward(fake);
        Matrix grad_fake(fake_scores.rows(), 1,
                         1.0f / static_cast<float>(fake_scores.rows()));
        model->critic_->Backward(grad_fake);
        critic_opt.Step();
        nn::ClipParameters(critic_params, options.clip);
        wasserstein += Mean(real_scores) - Mean(fake_scores);
        ++measures;
      }
      // Generator update: maximize E[f(fake)].
      gen_opt.ZeroGrad();
      critic_opt.ZeroGrad();  // critic grads are scratch here
      Matrix noise = GaussianNoise(batch, options.noise_dim, rng);
      Matrix fake = model->generator_->Forward(noise);
      Matrix fake_scores = model->critic_->Forward(fake);
      Matrix grad(fake_scores.rows(), 1,
                  -1.0f / static_cast<float>(fake_scores.rows()));
      Matrix dfake = model->critic_->Backward(grad);
      model->generator_->Backward(dfake);
      gen_opt.Step();
    }
    if (diag != nullptr) {
      diag->wasserstein.push_back(wasserstein /
                                  static_cast<double>(measures));
    }
  }
  return model;
}

relation::Table WganModel::Generate(size_t n, util::Rng& rng) {
  relation::Table out(encoder_.schema());
  for (size_t c = 0; c < encoder_.schema().num_attributes(); ++c) {
    if (encoder_.schema().IsCategorical(c)) {
      out.DeclareCardinality(c, encoder_.layout()[c].cardinality);
    }
  }
  const size_t window = 512;
  while (out.num_rows() < n) {
    const size_t batch = std::min(window, n - out.num_rows());
    Matrix noise = GaussianNoise(batch, options_.noise_dim, rng);
    Matrix probs = generator_->Forward(noise);
    // DecodeLogits expects logits; invert the generator's sigmoid.
    Matrix logits(probs.rows(), probs.cols());
    for (size_t i = 0; i < probs.size(); ++i) {
      const float p = std::clamp(probs.data()[i], 1e-6f, 1.0f - 1e-6f);
      logits.data()[i] = std::log(p / (1.0f - p));
    }
    relation::Table decoded =
        encoder_.DecodeLogits(logits, options_.decode, rng);
    DEEPAQP_CHECK(out.Append(decoded).ok());
  }
  return out;
}

aqp::SampleFn WganModel::MakeSampler(uint64_t seed) {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, rng);
  };
}

size_t WganModel::GeneratorParameters() {
  return nn::CountParameters(*generator_);
}

}  // namespace deepaqp::baselines
