#ifndef DEEPAQP_BASELINES_NEURAL_CUBES_H_
#define DEEPAQP_BASELINES_NEURAL_CUBES_H_

#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "nn/layers.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// NeuralCubes-style baseline (Wang et al. [49]; Fig. 11's "NC" bar): a
/// neural network trained to map a query description (per-attribute filter
/// intervals + aggregate spec) directly to the normalized aggregate value.
/// Answers arrive without touching data or samples, but accuracy is limited
/// to the query distribution it was trained on and degrades on ad-hoc
/// shapes; disjunctive filters are refused.
class NeuralCubesModel {
 public:
  struct Options {
    size_t hidden_dim = 64;
    int depth = 2;
    int epochs = 60;
    size_t batch_size = 64;
    float learning_rate = 2e-3f;
    /// Group-by answering enumerates group codes up to this cardinality.
    int32_t max_group_cardinality = 256;
    uint64_t seed = 67;
  };

  /// Trains on `training_workload` against exact answers computed on
  /// `table` (the server-side precomputation of the NeuralCubes setup).
  /// Group-by queries are decomposed into per-group scalar examples.
  static util::Result<std::unique_ptr<NeuralCubesModel>> Train(
      const relation::Table& table,
      const std::vector<aqp::AggregateQuery>& training_workload,
      const Options& options);

  /// Answers a query; Unimplemented for disjunctive filters.
  util::Result<aqp::QueryResult> Answer(const aqp::AggregateQuery& query);

  aqp::AnswerFn MakeAnswerer();

  size_t NumParameters();

 private:
  NeuralCubesModel() = default;

  /// Encodes a scalar conjunctive query as a feature row; false if the
  /// query cannot be encoded.
  bool Featurize(const aqp::AggregateQuery& query, float* out) const;

  util::Result<double> AnswerScalar(const aqp::AggregateQuery& query);

  size_t feature_dim() const;

  Options options_;
  relation::Schema schema_;
  size_t total_rows_ = 0;
  /// Per-attribute normalization: numeric [min, max]; categorical
  /// cardinality encoded as [0, card - 1].
  std::vector<std::pair<double, double>> attr_range_;
  std::vector<size_t> measure_attrs_;
  /// Per-measure value range for AVG denormalization.
  std::vector<std::pair<double, double>> measure_range_;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_NEURAL_CUBES_H_
