#ifndef DEEPAQP_BASELINES_WAVELET_H_
#define DEEPAQP_BASELINES_WAVELET_H_

#include <vector>

#include "aqp/evaluation.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Haar-wavelet synopsis (Fig. 11's "Wavelets" bar): each attribute's
/// frequency vector (categorical codes or numeric equi-width bins, padded
/// to a power of two) is Haar-transformed and only the `coefficients_kept`
/// largest-magnitude coefficients are retained. Reconstruction clips
/// negative frequencies to zero and renormalizes. Attributes are sampled
/// independently, like the histogram synopsis.
class WaveletModel {
 public:
  struct Options {
    /// Coefficients retained per attribute.
    int coefficients_kept = 12;
    /// Numeric attributes are gridded into this many equi-width bins before
    /// the transform.
    int numeric_bins = 64;
  };

  static util::Result<WaveletModel> Build(const relation::Table& table,
                                          const Options& options);

  relation::Table Generate(size_t n, util::Rng& rng) const;

  aqp::SampleFn MakeSampler(uint64_t seed = 19) const;

  size_t SizeBytes() const;

  /// Forward/inverse 1-D Haar transform (in place, length must be a power
  /// of two). Exposed for tests.
  static void HaarForward(std::vector<double>* values);
  static void HaarInverse(std::vector<double>* values);

 private:
  struct AttrSynopsis {
    bool is_numeric = false;
    /// Sparse retained coefficients: (index, value).
    std::vector<std::pair<int, double>> coefficients;
    size_t transform_length = 0;  // power-of-two padded length
    size_t num_buckets = 0;       // true domain size before padding
    /// Reconstructed bucket probabilities (materialized at build).
    std::vector<double> probs;
    std::vector<double> edges;  // numeric bin edges (equi-width)
  };

  relation::Schema schema_;
  std::vector<AttrSynopsis> attrs_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_WAVELET_H_
