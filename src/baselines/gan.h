#ifndef DEEPAQP_BASELINES_GAN_H_
#define DEEPAQP_BASELINES_GAN_H_

#include <memory>

#include "aqp/evaluation.h"
#include "encoding/tuple_encoder.h"
#include "nn/layers.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Wasserstein GAN baseline (Fig. 11's "GAN" bar, per Sec. VI-C: WGAN
/// architecture [20] trained with RMSProp and weight clipping). The
/// generator maps N(0,I) noise to Bernoulli probabilities over the encoded
/// tuple bits; the critic scores encoded tuples. Training feeds the critic
/// soft generator outputs (the standard relaxation for discrete data);
/// generation samples hard bits and decodes with the shared TupleEncoder.
class WganModel {
 public:
  struct Options {
    encoding::EncoderOptions encoder;
    size_t noise_dim = 32;
    size_t hidden_dim = 64;
    int depth = 2;
    int epochs = 15;
    size_t batch_size = 128;
    float learning_rate = 5e-4f;
    /// Critic updates per generator update (WGAN convention).
    int critic_steps = 3;
    /// Weight-clipping limit for the critic.
    float clip = 0.01f;
    uint64_t seed = 41;
    encoding::DecodeOptions decode;
  };

  struct TrainDiagnostics {
    /// Per-epoch critic Wasserstein estimate E[f(real)] - E[f(fake)].
    std::vector<double> wasserstein;
  };

  static util::Result<std::unique_ptr<WganModel>> Train(
      const relation::Table& table, const Options& options,
      TrainDiagnostics* diag = nullptr);

  relation::Table Generate(size_t n, util::Rng& rng);

  aqp::SampleFn MakeSampler(uint64_t seed = 43);

  /// Generator parameter count (the artifact shipped to clients; the critic
  /// is training-only, as in the paper's model-size accounting).
  size_t GeneratorParameters();

 private:
  WganModel() = default;

  Options options_;
  encoding::TupleEncoder encoder_;
  std::unique_ptr<nn::Sequential> generator_;
  std::unique_ptr<nn::Sequential> critic_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_GAN_H_
