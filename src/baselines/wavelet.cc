#include "baselines/wavelet.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepaqp::baselines {

using relation::Datum;
using relation::Table;

void WaveletModel::HaarForward(std::vector<double>* values) {
  const size_t n = values->size();
  DEEPAQP_CHECK((n & (n - 1)) == 0 && n > 0);
  std::vector<double> tmp(n);
  size_t len = n;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  while (len > 1) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[i] = ((*values)[2 * i] + (*values)[2 * i + 1]) * inv_sqrt2;
      tmp[len / 2 + i] =
          ((*values)[2 * i] - (*values)[2 * i + 1]) * inv_sqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + len, values->begin());
    len /= 2;
  }
}

void WaveletModel::HaarInverse(std::vector<double>* values) {
  const size_t n = values->size();
  DEEPAQP_CHECK((n & (n - 1)) == 0 && n > 0);
  std::vector<double> tmp(n);
  size_t len = 2;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  while (len <= n) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[2 * i] = ((*values)[i] + (*values)[len / 2 + i]) * inv_sqrt2;
      tmp[2 * i + 1] = ((*values)[i] - (*values)[len / 2 + i]) * inv_sqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + len, values->begin());
    len *= 2;
  }
}

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

util::Result<WaveletModel> WaveletModel::Build(const Table& table,
                                               const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot build wavelet synopsis on empty table");
  }
  WaveletModel model;
  model.schema_ = table.schema();
  const size_t m = table.num_attributes();
  model.attrs_.resize(m);

  for (size_t c = 0; c < m; ++c) {
    AttrSynopsis& syn = model.attrs_[c];
    std::vector<double> freq;
    if (table.schema().IsCategorical(c)) {
      syn.is_numeric = false;
      syn.num_buckets = static_cast<size_t>(table.Cardinality(c));
      freq.assign(syn.num_buckets, 0.0);
      for (int32_t code : table.CatColumn(c)) freq[code] += 1.0;
    } else {
      syn.is_numeric = true;
      auto [lo, hi] = table.NumericRange(c);
      if (hi == lo) hi = lo + 1.0;
      syn.num_buckets = static_cast<size_t>(options.numeric_bins);
      syn.edges.resize(syn.num_buckets + 1);
      for (size_t b = 0; b <= syn.num_buckets; ++b) {
        syn.edges[b] = lo + (hi - lo) * static_cast<double>(b) /
                                static_cast<double>(syn.num_buckets);
      }
      freq.assign(syn.num_buckets, 0.0);
      for (double v : table.NumColumn(c)) {
        auto b = static_cast<size_t>((v - lo) / (hi - lo) *
                                     static_cast<double>(syn.num_buckets));
        freq[std::min(b, syn.num_buckets - 1)] += 1.0;
      }
    }
    syn.transform_length = NextPowerOfTwo(freq.size());
    freq.resize(syn.transform_length, 0.0);
    HaarForward(&freq);

    // Keep the largest-magnitude coefficients (always keep index 0, the
    // overall average, so reconstruction preserves total mass).
    std::vector<int> order(freq.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (a == 0) return true;
      if (b == 0) return false;
      return std::abs(freq[a]) > std::abs(freq[b]);
    });
    const size_t keep =
        std::min<size_t>(options.coefficients_kept, freq.size());
    std::vector<double> kept(freq.size(), 0.0);
    for (size_t i = 0; i < keep; ++i) {
      syn.coefficients.emplace_back(order[i], freq[order[i]]);
      kept[order[i]] = freq[order[i]];
    }

    HaarInverse(&kept);
    kept.resize(syn.num_buckets);
    double total = 0.0;
    for (double& v : kept) {
      v = std::max(v, 0.0);
      total += v;
    }
    if (total <= 0.0) {
      kept.assign(syn.num_buckets, 1.0);
      total = static_cast<double>(syn.num_buckets);
    }
    for (double& v : kept) v /= total;
    syn.probs = std::move(kept);
  }
  return model;
}

Table WaveletModel::Generate(size_t n, util::Rng& rng) const {
  Table out(schema_);
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    if (schema_.IsCategorical(c)) {
      out.DeclareCardinality(c,
                             static_cast<int32_t>(attrs_[c].num_buckets));
    }
  }
  std::vector<Datum> row(schema_.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      const AttrSynopsis& syn = attrs_[c];
      const size_t bucket = rng.Categorical(syn.probs);
      if (syn.is_numeric) {
        row[c] = Datum::Numeric(
            rng.Uniform(syn.edges[bucket], syn.edges[bucket + 1]));
      } else {
        row[c] = Datum::Categorical(static_cast<int32_t>(bucket));
      }
    }
    out.AppendRow(row);
  }
  return out;
}

aqp::SampleFn WaveletModel::MakeSampler(uint64_t seed) const {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, rng);
  };
}

size_t WaveletModel::SizeBytes() const {
  size_t total = 0;
  for (const auto& syn : attrs_) {
    total += syn.coefficients.size() * (sizeof(int) + sizeof(double));
    total += syn.edges.size() * sizeof(double);
  }
  return total;
}

}  // namespace deepaqp::baselines
