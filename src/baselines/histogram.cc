#include "baselines/histogram.h"

#include <algorithm>

#include "util/logging.h"

namespace deepaqp::baselines {

using relation::Datum;
using relation::Table;

util::Result<HistogramModel> HistogramModel::Build(const Table& table,
                                                   const Options& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot build histogram on empty table");
  }
  HistogramModel model;
  model.schema_ = table.schema();
  const size_t m = table.num_attributes();
  model.attrs_.resize(m);
  const double n = static_cast<double>(table.num_rows());

  for (size_t c = 0; c < m; ++c) {
    AttrHistogram& h = model.attrs_[c];
    if (table.schema().IsCategorical(c)) {
      h.is_numeric = false;
      h.probs.assign(table.Cardinality(c), 0.0);
      for (int32_t code : table.CatColumn(c)) {
        h.probs[code] += 1.0 / n;
      }
    } else {
      h.is_numeric = true;
      const auto& col = table.NumColumn(c);
      std::vector<double> values(col.begin(), col.end());
      std::sort(values.begin(), values.end());
      h.edges.push_back(values.front());
      for (int b = 1; b < options.numeric_bins; ++b) {
        const double e = values[b * values.size() / options.numeric_bins];
        if (e > h.edges.back()) h.edges.push_back(e);
      }
      if (values.back() > h.edges.back()) {
        h.edges.push_back(values.back());
      } else {
        h.edges.push_back(h.edges.back());
      }
      h.probs.assign(h.edges.size() - 1, 0.0);
      for (double v : values) {
        const auto it = std::upper_bound(h.edges.begin() + 1,
                                         h.edges.end() - 1, v);
        h.probs[it - (h.edges.begin() + 1)] += 1.0 / n;
      }
    }
  }
  return model;
}

Table HistogramModel::Generate(size_t n, util::Rng& rng) const {
  Table out(schema_);
  std::vector<Datum> row(schema_.num_attributes());
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    if (schema_.IsCategorical(c)) {
      out.DeclareCardinality(
          c, static_cast<int32_t>(attrs_[c].probs.size()));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      const AttrHistogram& h = attrs_[c];
      const size_t bucket = rng.Categorical(h.probs);
      if (h.is_numeric) {
        const double lo = h.edges[bucket];
        const double hi = h.edges[bucket + 1];
        row[c] = Datum::Numeric(lo == hi ? lo : rng.Uniform(lo, hi));
      } else {
        row[c] = Datum::Categorical(static_cast<int32_t>(bucket));
      }
    }
    out.AppendRow(row);
  }
  return out;
}

aqp::SampleFn HistogramModel::MakeSampler(uint64_t seed) const {
  return [this, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, rng);
  };
}

size_t HistogramModel::SizeBytes() const {
  size_t total = 0;
  for (const auto& h : attrs_) {
    total += sizeof(double) * (h.probs.size() + h.edges.size());
  }
  return total;
}

}  // namespace deepaqp::baselines
