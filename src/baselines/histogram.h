#ifndef DEEPAQP_BASELINES_HISTOGRAM_H_
#define DEEPAQP_BASELINES_HISTOGRAM_H_

#include <vector>

#include "aqp/evaluation.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::baselines {

/// Classic per-attribute histogram synopsis (the "Hist" bar of Fig. 11).
/// Each attribute keeps an equi-depth (numeric) or exact (categorical)
/// frequency histogram; the joint distribution is approximated under the
/// attribute-independence assumption. Cheap, tiny, and exactly as weak on
/// correlated predicates as the paper reports.
class HistogramModel {
 public:
  struct Options {
    int numeric_bins = 32;
    uint64_t seed = 11;
  };

  static util::Result<HistogramModel> Build(const relation::Table& table,
                                            const Options& options);

  /// Draws `n` synthetic tuples (attributes sampled independently).
  relation::Table Generate(size_t n, util::Rng& rng) const;

  aqp::SampleFn MakeSampler(uint64_t seed = 13) const;

  /// Serialized-synopsis size in bytes (for the equal-model-size budget of
  /// Fig. 11).
  size_t SizeBytes() const;

 private:
  struct AttrHistogram {
    bool is_numeric = false;
    /// Bucket probabilities (categorical: one per code; numeric: per bin).
    std::vector<double> probs;
    /// Numeric bin edges (probs.size() + 1).
    std::vector<double> edges;
  };

  relation::Schema schema_;
  std::vector<AttrHistogram> attrs_;
};

}  // namespace deepaqp::baselines

#endif  // DEEPAQP_BASELINES_HISTOGRAM_H_
