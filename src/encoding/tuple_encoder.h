#ifndef DEEPAQP_ENCODING_TUPLE_ENCODER_H_
#define DEEPAQP_ENCODING_TUPLE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace deepaqp::encoding {

/// Input encodings studied in the paper (Sec. IV-A / IV-E and Fig. 6).
enum class EncodingKind {
  /// One slot per domain value; value v sets slot v to 1.
  kOneHot,
  /// ceil(log2 |Dom|) bits holding the zero-indexed position in binary —
  /// the paper's recommended dense encoding.
  kBinary,
  /// A single slot holding the position normalized into [0, 1].
  kInteger,
};

const char* EncodingKindName(EncodingKind kind);

/// Output-decoding strategies (Sec. IV-E "Effective Decoding" and Fig. 7).
enum class DecodeStrategy {
  /// One stochastic draw from the decoder's Bernoulli outputs; can produce
  /// invalid tuples (e.g., a binary code outside the domain), which are then
  /// clamped — this is the paper's strawman.
  kNaive,
  /// `draws` stochastic samples per latent point; each attribute takes its
  /// most frequent decoded value (the paper's "max" aggregation).
  kMaxVote,
  /// `draws` samples; each attribute value is drawn from the empirical
  /// frequency distribution of the draws (the paper's "weighted random").
  kWeightedRandom,
};

struct DecodeOptions {
  /// Weighted-random is the library default: max-vote aggregation amplifies
  /// majority modes whenever the decoder is not sharply confident per
  /// latent point, which biases categorical marginals; weighted-random
  /// keeps the robustness benefit without that bias.
  DecodeStrategy strategy = DecodeStrategy::kWeightedRandom;
  /// Number of decoder output draws aggregated per tuple (ignored by kNaive).
  int draws = 8;
};

struct EncoderOptions {
  EncodingKind kind = EncodingKind::kBinary;
  /// Numeric attributes are discretized into this many equi-depth bins
  /// before categorical encoding; decoded values are drawn uniformly within
  /// the original bin's value range.
  int numeric_bins = 32;
};

/// Maps tuples of a fixed relational schema to fixed-width float vectors
/// consumable by the VAE/GAN substrate, and decodes network outputs
/// (Bernoulli logits) back to tuples. Fit once on the training relation;
/// the fitted state (bin edges, cardinalities, layout) serializes with the
/// model so a client can decode samples without the data.
class TupleEncoder {
 public:
  /// Creates an unfitted encoder (encoded_dim() == 0); assign from Fit() or
  /// Deserialize() before use.
  TupleEncoder() = default;

  /// Layout of one attribute inside the encoded vector.
  struct AttrLayout {
    size_t offset = 0;
    size_t width = 0;
    /// Discrete domain size being encoded (categorical cardinality, or
    /// number of numeric bins).
    int32_t cardinality = 0;
    bool is_numeric = false;
    /// Bin edges (cardinality + 1 entries) for numeric attributes.
    std::vector<double> bin_edges;
    /// Categorical labels captured at Fit time (may be shorter than
    /// cardinality when the training table used bare codes). Shipped with
    /// the model so decoded tables are human-readable on the client.
    std::vector<std::string> labels;
  };

  /// Learns the layout from `table`: categorical cardinalities and
  /// equi-depth numeric bin edges. The table must be non-empty.
  static util::Result<TupleEncoder> Fit(const relation::Table& table,
                                        const EncoderOptions& options);

  /// Total encoded dimensionality d (paper: sum of per-attribute widths).
  size_t encoded_dim() const { return encoded_dim_; }

  const relation::Schema& schema() const { return schema_; }
  EncodingKind kind() const { return options_.kind; }
  const std::vector<AttrLayout>& layout() const { return layout_; }

  /// Encodes the given rows into a (rows x encoded_dim) matrix of values in
  /// [0, 1].
  nn::Matrix EncodeRows(const relation::Table& table,
                        const std::vector<size_t>& rows) const;

  /// Encodes every row of `table`.
  nn::Matrix EncodeAll(const relation::Table& table) const;

  /// Decodes a batch of decoder-output logits into tuples of the original
  /// schema. Invalid decoded codes (possible under kNaive with binary
  /// encoding) are clamped into the domain, mirroring the robustness issue
  /// the paper's aggregated decoding fixes.
  relation::Table DecodeLogits(const nn::Matrix& logits,
                               const DecodeOptions& options,
                               util::Rng& rng) const;

  /// Decodes one already-sampled binary activation row into per-attribute
  /// codes (exposed for tests; `bits` has encoded_dim entries in [0,1]).
  std::vector<int32_t> DecodeBitsToCodes(const float* bits) const;

  void Serialize(util::ByteWriter& w) const;
  static util::Result<TupleEncoder> Deserialize(util::ByteReader& r);

 private:
  /// Encodes a single discrete code into `out + layout.offset`.
  void EncodeCode(const AttrLayout& layout, int32_t code, float* out) const;

  /// Numeric value -> bin index via the fitted equi-depth edges.
  int32_t BinOf(const AttrLayout& layout, double value) const;

  /// Bin index -> representative value (uniform within the bin).
  double ValueOfBin(const AttrLayout& layout, int32_t bin,
                    util::Rng& rng) const;

  relation::Schema schema_;
  EncoderOptions options_;
  std::vector<AttrLayout> layout_;
  size_t encoded_dim_ = 0;
};

}  // namespace deepaqp::encoding

#endif  // DEEPAQP_ENCODING_TUPLE_ENCODER_H_
