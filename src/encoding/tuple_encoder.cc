#include "encoding/tuple_encoder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace deepaqp::encoding {

using relation::Datum;
using relation::Table;

const char* EncodingKindName(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::kOneHot:
      return "one-hot";
    case EncodingKind::kBinary:
      return "binary";
    case EncodingKind::kInteger:
      return "integer";
  }
  return "?";
}

namespace {

size_t WidthFor(EncodingKind kind, int32_t cardinality) {
  switch (kind) {
    case EncodingKind::kOneHot:
      return static_cast<size_t>(cardinality);
    case EncodingKind::kBinary: {
      size_t bits = 1;
      while ((int64_t{1} << bits) < cardinality) ++bits;
      return bits;
    }
    case EncodingKind::kInteger:
      return 1;
  }
  return 0;
}

}  // namespace

util::Result<TupleEncoder> TupleEncoder::Fit(const Table& table,
                                             const EncoderOptions& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot fit encoder on empty table");
  }
  if (options.numeric_bins < 2) {
    return util::Status::InvalidArgument("numeric_bins must be >= 2");
  }
  TupleEncoder enc;
  enc.schema_ = table.schema();
  enc.options_ = options;

  size_t offset = 0;
  for (size_t c = 0; c < enc.schema_.num_attributes(); ++c) {
    AttrLayout layout;
    layout.offset = offset;
    if (enc.schema_.IsCategorical(c)) {
      layout.is_numeric = false;
      layout.cardinality = std::max<int32_t>(1, table.Cardinality(c));
      layout.labels = table.dict(c).labels();
    } else {
      layout.is_numeric = true;
      // Equi-depth bin edges from the empirical distribution.
      const auto& col = table.NumColumn(c);
      std::vector<double> values(col.begin(), col.end());
      std::sort(values.begin(), values.end());
      const size_t n = values.size();
      std::vector<double> edges;
      edges.push_back(values.front());
      for (int b = 1; b < options.numeric_bins; ++b) {
        const size_t idx = b * n / options.numeric_bins;
        const double e = values[std::min(idx, n - 1)];
        if (e > edges.back()) edges.push_back(e);
      }
      if (values.back() > edges.back()) {
        edges.push_back(values.back());
      } else {
        // Degenerate constant column: one bin covering the single value.
        edges.push_back(edges.back());
      }
      layout.bin_edges = std::move(edges);
      layout.cardinality =
          std::max<int32_t>(1,
                            static_cast<int32_t>(layout.bin_edges.size()) - 1);
    }
    layout.width = WidthFor(options.kind, layout.cardinality);
    offset += layout.width;
    enc.layout_.push_back(std::move(layout));
  }
  enc.encoded_dim_ = offset;
  return enc;
}

void TupleEncoder::EncodeCode(const AttrLayout& layout, int32_t code,
                              float* out) const {
  code = std::clamp(code, 0, layout.cardinality - 1);
  float* dst = out + layout.offset;
  switch (options_.kind) {
    case EncodingKind::kOneHot:
      dst[code] = 1.0f;
      break;
    case EncodingKind::kBinary:
      for (size_t b = 0; b < layout.width; ++b) {
        dst[b] = static_cast<float>((code >> b) & 1);
      }
      break;
    case EncodingKind::kInteger:
      dst[0] = layout.cardinality <= 1
                   ? 0.0f
                   : static_cast<float>(code) /
                         static_cast<float>(layout.cardinality - 1);
      break;
  }
}

int32_t TupleEncoder::BinOf(const AttrLayout& layout, double value) const {
  const auto& e = layout.bin_edges;
  // First interior edge strictly above `value` delimits the bin.
  const auto it = std::upper_bound(e.begin() + 1, e.end() - 1, value);
  return static_cast<int32_t>(it - (e.begin() + 1));
}

double TupleEncoder::ValueOfBin(const AttrLayout& layout, int32_t bin,
                                util::Rng& rng) const {
  bin = std::clamp(bin, 0, layout.cardinality - 1);
  const double lo = layout.bin_edges[bin];
  const double hi = layout.bin_edges[bin + 1];
  return lo == hi ? lo : rng.Uniform(lo, hi);
}

nn::Matrix TupleEncoder::EncodeRows(const Table& table,
                                    const std::vector<size_t>& rows) const {
  DEEPAQP_CHECK(table.schema() == schema_);
  nn::Matrix out(rows.size(), encoded_dim_);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    float* dst = out.Row(i);
    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      const AttrLayout& layout = layout_[c];
      const int32_t code = layout.is_numeric
                               ? BinOf(layout, table.NumValue(r, c))
                               : table.CatCode(r, c);
      EncodeCode(layout, code, dst);
    }
  }
  return out;
}

nn::Matrix TupleEncoder::EncodeAll(const Table& table) const {
  std::vector<size_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return EncodeRows(table, rows);
}

std::vector<int32_t> TupleEncoder::DecodeBitsToCodes(
    const float* bits) const {
  std::vector<int32_t> codes(layout_.size());
  for (size_t c = 0; c < layout_.size(); ++c) {
    const AttrLayout& layout = layout_[c];
    const float* src = bits + layout.offset;
    int32_t code = 0;
    switch (options_.kind) {
      case EncodingKind::kOneHot: {
        size_t best = 0;
        for (size_t s = 1; s < layout.width; ++s) {
          if (src[s] > src[best]) best = s;
        }
        code = static_cast<int32_t>(best);
        break;
      }
      case EncodingKind::kBinary:
        for (size_t b = 0; b < layout.width; ++b) {
          if (src[b] > 0.5f) code |= (1 << b);
        }
        break;
      case EncodingKind::kInteger:
        code = static_cast<int32_t>(
            std::lround(static_cast<double>(src[0]) *
                        (layout.cardinality - 1)));
        break;
    }
    codes[c] = std::clamp(code, 0, layout.cardinality - 1);
  }
  return codes;
}

namespace {

float SigmoidF(float z) { return 1.0f / (1.0f + std::exp(-z)); }

}  // namespace

relation::Table TupleEncoder::DecodeLogits(const nn::Matrix& logits,
                                           const DecodeOptions& options,
                                           util::Rng& rng) const {
  DEEPAQP_CHECK_EQ(logits.cols(), encoded_dim_);
  Table out(schema_);
  std::vector<float> probs(encoded_dim_);
  std::vector<Datum> row(schema_.num_attributes());

  // Per-draw stochastic decode of one attribute from probabilities.
  auto draw_code = [&](const AttrLayout& layout,
                       const float* p) -> int32_t {
    switch (options_.kind) {
      case EncodingKind::kOneHot: {
        // Sample each slot; choose uniformly among the set slots. All-zero
        // draws fall back to the most probable slot.
        int32_t chosen = -1;
        int set_count = 0;
        for (size_t s = 0; s < layout.width; ++s) {
          if (rng.Bernoulli(p[s])) {
            ++set_count;
            if (rng.NextIndex(static_cast<uint64_t>(set_count)) == 0) {
              chosen = static_cast<int32_t>(s);
            }
          }
        }
        if (chosen >= 0) return chosen;
        size_t best = 0;
        for (size_t s = 1; s < layout.width; ++s) {
          if (p[s] > p[best]) best = s;
        }
        return static_cast<int32_t>(best);
      }
      case EncodingKind::kBinary: {
        int32_t code = 0;
        for (size_t b = 0; b < layout.width; ++b) {
          if (rng.Bernoulli(p[b])) code |= (1 << b);
        }
        // Out-of-domain codes are the "invalid tuple" failure mode; clamp.
        return std::min(code, layout.cardinality - 1);
      }
      case EncodingKind::kInteger: {
        const double v = std::clamp<double>(
            p[0] + rng.Gaussian(0.0, 0.02), 0.0, 1.0);
        return static_cast<int32_t>(
            std::lround(v * (layout.cardinality - 1)));
      }
    }
    return 0;
  };

  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* z = logits.Row(r);
    for (size_t i = 0; i < encoded_dim_; ++i) probs[i] = SigmoidF(z[i]);

    for (size_t c = 0; c < schema_.num_attributes(); ++c) {
      const AttrLayout& layout = layout_[c];
      const float* p = probs.data() + layout.offset;
      int32_t code = 0;
      if (options.strategy == DecodeStrategy::kNaive) {
        code = draw_code(layout, p);
      } else {
        // Aggregate `draws` stochastic decodes per attribute (Sec. IV-E).
        std::unordered_map<int32_t, int> counts;
        for (int d = 0; d < std::max(1, options.draws); ++d) {
          ++counts[draw_code(layout, p)];
        }
        if (options.strategy == DecodeStrategy::kMaxVote) {
          int best_count = -1;
          for (const auto& [value, count] : counts) {
            if (count > best_count ||
                (count == best_count && value < code)) {
              best_count = count;
              code = value;
            }
          }
        } else {  // kWeightedRandom
          int total = 0;
          for (const auto& [value, count] : counts) total += count;
          int64_t pick = static_cast<int64_t>(
              rng.NextIndex(static_cast<uint64_t>(total)));
          for (const auto& [value, count] : counts) {
            pick -= count;
            if (pick < 0) {
              code = value;
              break;
            }
          }
        }
      }
      if (layout.is_numeric) {
        row[c] = Datum::Numeric(ValueOfBin(layout, code, rng));
      } else {
        row[c] = Datum::Categorical(std::clamp(code, 0,
                                               layout.cardinality - 1));
      }
    }
    out.AppendRow(row);
  }
  // Synthetic tables advertise the training-time domain sizes and carry
  // the training-time labels, so clients see readable values.
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    if (schema_.IsCategorical(c)) {
      out.DeclareCardinality(c, layout_[c].cardinality);
      for (const std::string& label : layout_[c].labels) {
        out.InternLabel(c, label);
      }
    }
  }
  return out;
}

/// Bump when the serialized layout below changes; Deserialize rejects
/// mismatches with a diagnosable error instead of misparsing the layout.
static constexpr uint32_t kEncoderSchemaVersion = 1;

void TupleEncoder::Serialize(util::ByteWriter& w) const {
  w.WriteU32(kEncoderSchemaVersion);
  w.WriteU8(static_cast<uint8_t>(options_.kind));
  w.WriteI32(options_.numeric_bins);
  w.WriteU64(schema_.num_attributes());
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    w.WriteString(schema_.attribute(c).name);
    w.WriteU8(schema_.IsCategorical(c) ? 0 : 1);
    const AttrLayout& layout = layout_[c];
    w.WriteU64(layout.offset);
    w.WriteU64(layout.width);
    w.WriteI32(layout.cardinality);
    w.WriteF64Vector(layout.bin_edges);
    w.WriteU64(layout.labels.size());
    for (const std::string& label : layout.labels) w.WriteString(label);
  }
}

util::Result<TupleEncoder> TupleEncoder::Deserialize(util::ByteReader& r) {
  TupleEncoder enc;
  DEEPAQP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kEncoderSchemaVersion) {
    return util::Status::InvalidArgument(
        "unsupported tuple-encoder schema version " +
        std::to_string(version) + " (expected " +
        std::to_string(kEncoderSchemaVersion) + ")");
  }
  DEEPAQP_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(EncodingKind::kInteger)) {
    return util::Status::InvalidArgument("bad encoding kind");
  }
  enc.options_.kind = static_cast<EncodingKind>(kind);
  DEEPAQP_ASSIGN_OR_RETURN(enc.options_.numeric_bins, r.ReadI32());
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t m, r.ReadU64());
  size_t offset = 0;
  for (uint64_t c = 0; c < m; ++c) {
    DEEPAQP_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    DEEPAQP_ASSIGN_OR_RETURN(uint8_t is_numeric, r.ReadU8());
    DEEPAQP_RETURN_IF_ERROR(enc.schema_.AddAttribute(
        name, is_numeric ? relation::AttrType::kNumeric
                         : relation::AttrType::kCategorical));
    AttrLayout layout;
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t off, r.ReadU64());
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t width, r.ReadU64());
    layout.offset = off;
    layout.width = width;
    DEEPAQP_ASSIGN_OR_RETURN(layout.cardinality, r.ReadI32());
    DEEPAQP_ASSIGN_OR_RETURN(layout.bin_edges, r.ReadF64Vector());
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t num_labels, r.ReadU64());
    for (uint64_t l = 0; l < num_labels; ++l) {
      DEEPAQP_ASSIGN_OR_RETURN(std::string label, r.ReadString());
      layout.labels.push_back(std::move(label));
    }
    layout.is_numeric = is_numeric != 0;
    if (layout.offset != offset) {
      return util::Status::InvalidArgument("encoder layout corrupt");
    }
    offset += layout.width;
    enc.layout_.push_back(std::move(layout));
  }
  enc.encoded_dim_ = offset;
  return enc;
}

}  // namespace deepaqp::encoding
