#ifndef DEEPAQP_STATS_MATCHING_H_
#define DEEPAQP_STATS_MATCHING_H_

#include <vector>

#include "util/status.h"

namespace deepaqp::stats {

/// Symmetric pairwise-distance matrix (row-major, n x n).
using DistanceMatrix = std::vector<std::vector<double>>;

/// Computes a minimum-weight perfect matching of the complete graph given by
/// `dist` (n must be even). Returns mate[i] = j with mate[j] = i.
///
/// Algorithm: deterministic greedy construction (globally cheapest edge
/// first) followed by 2-opt pair-exchange refinement to a local optimum.
/// For the cross-match test this is sufficient: Rosenbaum's exact null
/// distribution (Eq. 9) holds for ANY matching computed blindly from the
/// pooled points — optimality affects only the test's power, and the 2-opt
/// local optimum is within a few percent of the exact optimum on Euclidean
/// instances (verified against the exact DP in tests). The exact O(2^n)
/// solver below is used for n <= 20.
util::Result<std::vector<int>> MinWeightPerfectMatching(
    const DistanceMatrix& dist);

/// Exact minimum-weight perfect matching by bitmask dynamic programming.
/// Exponential; requires even n <= 22. Reference implementation for tests
/// and for small test-sample sizes.
util::Result<std::vector<int>> ExactMinWeightPerfectMatching(
    const DistanceMatrix& dist);

/// Total weight of a matching returned by either solver.
double MatchingWeight(const DistanceMatrix& dist,
                      const std::vector<int>& mate);

/// Euclidean distance matrix of `points` (n rows, d columns flattened:
/// points[i] is the i-th row). Rows are computed in parallel on the global
/// thread pool; the result is independent of the thread count.
DistanceMatrix EuclideanDistances(const std::vector<std::vector<double>>& points);

}  // namespace deepaqp::stats

#endif  // DEEPAQP_STATS_MATCHING_H_
