#ifndef DEEPAQP_STATS_CROSS_MATCH_H_
#define DEEPAQP_STATS_CROSS_MATCH_H_

#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::stats {

/// Result of Rosenbaum's cross-match two-sample test (paper Sec. IV-C,
/// Eq. 9). The pooled points are paired by a minimum-weight perfect
/// matching; under H0 (both samples from the same distribution) the count
/// of cross-sample pairs a_DM follows an exact distribution. Unusually FEW
/// cross pairs indicate the samples separate in space, i.e., H0 is false.
struct CrossMatchResult {
  int a_dd = 0;  ///< pairs with both points from the first sample
  int a_mm = 0;  ///< pairs with both points from the second sample
  int a_dm = 0;  ///< cross pairs (the test statistic)
  /// One-sided p-value P(A_DM <= a_dm | H0).
  double p_value = 1.0;
  /// Expected a_dm under H0 (for reporting).
  double expected_a_dm = 0.0;

  bool Reject(double alpha) const { return p_value < alpha; }
};

/// Runs the cross-match test on two point sets (rows are points, all of the
/// same dimension). If the pooled count is odd one point is dropped at
/// random (Rosenbaum's convention). Sizes need not be equal. The matching
/// uses the exact solver for pooled n <= 20, the 2-opt heuristic otherwise
/// (validity is unaffected; see matching.h).
util::Result<CrossMatchResult> CrossMatchTest(
    const std::vector<std::vector<double>>& sample_d,
    const std::vector<std::vector<double>>& sample_m, util::Rng& rng);

/// Exact null probability P(A_DM = a) for pooled sizes n1, n2 (paper
/// Eq. 9, in the standard corrected form
///   P(a) = 2^a (N/2)! / [ C(N, n1) * a_dd! * a_mm! * a! ]
/// with N = n1 + n2 even, a_dd = (n1-a)/2, a_mm = (n2-a)/2). Returns 0 for
/// infeasible a (wrong parity or negative group counts).
double CrossMatchNullPmf(int n1, int n2, int a);

}  // namespace deepaqp::stats

#endif  // DEEPAQP_STATS_CROSS_MATCH_H_
