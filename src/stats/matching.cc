#include "stats/matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepaqp::stats {

namespace {

util::Status ValidateDistances(const DistanceMatrix& dist) {
  const size_t n = dist.size();
  if (n == 0 || n % 2 != 0) {
    return util::Status::InvalidArgument(
        "matching requires a non-empty even number of nodes");
  }
  for (const auto& row : dist) {
    if (row.size() != n) {
      return util::Status::InvalidArgument("distance matrix must be square");
    }
  }
  return util::Status::OK();
}

}  // namespace

util::Result<std::vector<int>> MinWeightPerfectMatching(
    const DistanceMatrix& dist) {
  DEEPAQP_RETURN_IF_ERROR(ValidateDistances(dist));
  const int n = static_cast<int>(dist.size());

  // Greedy: cheapest edges first.
  struct Edge {
    double w;
    int u, v;
  };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back({dist[i][j], i, j});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  std::vector<int> mate(n, -1);
  int matched = 0;
  for (const Edge& e : edges) {
    if (mate[e.u] < 0 && mate[e.v] < 0) {
      mate[e.u] = e.v;
      mate[e.v] = e.u;
      matched += 2;
      if (matched == n) break;
    }
  }

  // Local refinement. 2-opt: for every pair of matched edges try the two
  // alternative pairings. 3-opt: for every triple of matched edges, re-match
  // the 6 endpoints exactly (15 candidate matchings via the DP solver).
  // Both strictly decrease total weight, so the loop terminates.
  auto collect_pairs = [&] {
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(n / 2);
    for (int i = 0; i < n; ++i) {
      if (i < mate[i]) pairs.emplace_back(i, mate[i]);
    }
    return pairs;
  };

  auto two_opt_pass = [&] {
    bool improved = false;
    const auto pairs = collect_pairs();
    for (size_t p = 0; p < pairs.size(); ++p) {
      for (size_t q = p + 1; q < pairs.size(); ++q) {
        const auto [a, b] = pairs[p];
        const auto [c, d] = pairs[q];
        // mate may have changed within this pass; skip stale entries.
        if (mate[a] != b || mate[c] != d) continue;
        const double current = dist[a][b] + dist[c][d];
        const double alt1 = dist[a][c] + dist[b][d];
        const double alt2 = dist[a][d] + dist[b][c];
        if (alt1 < current - 1e-12 && alt1 <= alt2) {
          mate[a] = c;
          mate[c] = a;
          mate[b] = d;
          mate[d] = b;
          improved = true;
        } else if (alt2 < current - 1e-12) {
          mate[a] = d;
          mate[d] = a;
          mate[b] = c;
          mate[c] = b;
          improved = true;
        }
      }
    }
    return improved;
  };

  auto three_opt_pass = [&] {
    bool improved = false;
    const auto pairs = collect_pairs();
    const size_t k = pairs.size();
    DistanceMatrix sub(6, std::vector<double>(6));
    for (size_t p = 0; p < k; ++p) {
      for (size_t q = p + 1; q < k; ++q) {
        for (size_t s = q + 1; s < k; ++s) {
          const int nodes[6] = {pairs[p].first,  pairs[p].second,
                                pairs[q].first,  pairs[q].second,
                                pairs[s].first,  pairs[s].second};
          if (mate[nodes[0]] != nodes[1] || mate[nodes[2]] != nodes[3] ||
              mate[nodes[4]] != nodes[5]) {
            continue;
          }
          const double current = dist[nodes[0]][nodes[1]] +
                                 dist[nodes[2]][nodes[3]] +
                                 dist[nodes[4]][nodes[5]];
          for (int i = 0; i < 6; ++i) {
            for (int j = 0; j < 6; ++j) {
              sub[i][j] = dist[nodes[i]][nodes[j]];
            }
          }
          auto best = ExactMinWeightPerfectMatching(sub);
          DEEPAQP_CHECK(best.ok());
          if (MatchingWeight(sub, *best) < current - 1e-12) {
            for (int i = 0; i < 6; ++i) {
              mate[nodes[i]] = nodes[(*best)[i]];
            }
            improved = true;
          }
        }
      }
    }
    return improved;
  };

  for (;;) {
    while (two_opt_pass()) {
    }
    if (!three_opt_pass()) break;
  }
  return mate;
}

util::Result<std::vector<int>> ExactMinWeightPerfectMatching(
    const DistanceMatrix& dist) {
  DEEPAQP_RETURN_IF_ERROR(ValidateDistances(dist));
  const int n = static_cast<int>(dist.size());
  if (n > 22) {
    return util::Status::InvalidArgument(
        "exact matching limited to n <= 22 nodes");
  }
  const uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(full + 1, kInf);
  std::vector<std::pair<int, int>> choice(full + 1, {-1, -1});
  best[0] = 0.0;
  for (uint32_t mask = 0; mask < full; ++mask) {
    if (best[mask] == kInf) continue;
    // First unmatched node must pair with someone: canonical ordering
    // prevents revisiting permutations.
    int i = 0;
    while (mask & (1u << i)) ++i;
    for (int j = i + 1; j < n; ++j) {
      if (mask & (1u << j)) continue;
      const uint32_t next = mask | (1u << i) | (1u << j);
      const double w = best[mask] + dist[i][j];
      if (w < best[next]) {
        best[next] = w;
        choice[next] = {i, j};
      }
    }
  }
  std::vector<int> mate(n, -1);
  uint32_t mask = full;
  while (mask != 0) {
    const auto [i, j] = choice[mask];
    DEEPAQP_CHECK_GE(i, 0);
    mate[i] = j;
    mate[j] = i;
    mask &= ~(1u << i);
    mask &= ~(1u << j);
  }
  return mate;
}

double MatchingWeight(const DistanceMatrix& dist,
                      const std::vector<int>& mate) {
  double total = 0.0;
  for (size_t i = 0; i < mate.size(); ++i) {
    if (static_cast<size_t>(mate[i]) > i) {
      total += dist[i][mate[i]];
    }
  }
  return total;
}

DistanceMatrix EuclideanDistances(
    const std::vector<std::vector<double>>& points) {
  const size_t n = points.size();
  DistanceMatrix dist(n, std::vector<double>(n, 0.0));
  // The O(n^2 d) matrix build is the cross-match test's hot loop; rows are
  // farmed out to the global pool. Every (i, j) cell is a pure function of
  // the two points and is written exactly once (row i owns the j > i
  // wedge, mirroring into column i), so the result is identical at every
  // thread count.
  util::ParallelFor(0, n, [&](size_t i) {
    for (size_t j = i + 1; j < n; ++j) {
      DEEPAQP_CHECK_EQ(points[i].size(), points[j].size());
      double acc = 0.0;
      for (size_t k = 0; k < points[i].size(); ++k) {
        const double d = points[i][k] - points[j][k];
        acc += d * d;
      }
      dist[i][j] = dist[j][i] = std::sqrt(acc);
    }
  });
  return dist;
}

}  // namespace deepaqp::stats
