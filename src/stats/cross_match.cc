#include "stats/cross_match.h"

#include <algorithm>
#include <cmath>

#include "stats/matching.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace deepaqp::stats {

namespace {

double LogFactorial(int n) { return std::lgamma(static_cast<double>(n) + 1); }

double LogChoose(int n, int k) {
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

}  // namespace

double CrossMatchNullPmf(int n1, int n2, int a) {
  const int total = n1 + n2;
  if (total % 2 != 0 || a < 0) return 0.0;
  if ((n1 - a) % 2 != 0 || (n2 - a) % 2 != 0) return 0.0;
  const int a_dd = (n1 - a) / 2;
  const int a_mm = (n2 - a) / 2;
  if (a_dd < 0 || a_mm < 0) return 0.0;
  const double log_p = a * std::log(2.0) + LogFactorial(total / 2) -
                       LogChoose(total, n1) - LogFactorial(a_dd) -
                       LogFactorial(a_mm) - LogFactorial(a);
  return std::exp(log_p);
}

util::Result<CrossMatchResult> CrossMatchTest(
    const std::vector<std::vector<double>>& sample_d,
    const std::vector<std::vector<double>>& sample_m, util::Rng& rng) {
  if (sample_d.size() < 2 || sample_m.size() < 2) {
    return util::Status::InvalidArgument(
        "cross-match test needs at least 2 points per sample");
  }
  // Chaos site: simulated matcher failure mid-bias-elimination; the caller
  // (EliminateModelBias) must degrade rather than abort the workflow.
  if (util::FailpointTriggered("stats/cross_match")) {
    return util::FailpointError("stats/cross_match");
  }
  // Pool points with labels; drop one at random if the total is odd.
  std::vector<std::vector<double>> points;
  std::vector<int> label;
  points.reserve(sample_d.size() + sample_m.size());
  for (const auto& p : sample_d) {
    points.push_back(p);
    label.push_back(0);
  }
  for (const auto& p : sample_m) {
    points.push_back(p);
    label.push_back(1);
  }
  if (points.size() % 2 != 0) {
    const size_t drop = rng.NextIndex(points.size());
    points.erase(points.begin() + drop);
    label.erase(label.begin() + drop);
  }
  const int n1 = static_cast<int>(std::count(label.begin(), label.end(), 0));
  const int n2 = static_cast<int>(label.size()) - n1;
  if (n1 == 0 || n2 == 0) {
    return util::Status::InvalidArgument(
        "one sample vanished after odd-pool drop");
  }

  // Distance construction is the O(n^2) hot path; it runs on the global
  // thread pool and is bit-identical at every thread count, so the p-value
  // below is reproducible from the rng seed alone.
  const DistanceMatrix dist = EuclideanDistances(points);
  std::vector<int> mate;
  if (points.size() <= 20) {
    DEEPAQP_ASSIGN_OR_RETURN(mate, ExactMinWeightPerfectMatching(dist));
  } else {
    DEEPAQP_ASSIGN_OR_RETURN(mate, MinWeightPerfectMatching(dist));
  }

  CrossMatchResult result;
  for (size_t i = 0; i < mate.size(); ++i) {
    if (static_cast<size_t>(mate[i]) < i) continue;
    const int li = label[i];
    const int lj = label[mate[i]];
    if (li == 0 && lj == 0) {
      ++result.a_dd;
    } else if (li == 1 && lj == 1) {
      ++result.a_mm;
    } else {
      ++result.a_dm;
    }
  }

  // One-sided p-value: small a_dm is evidence against H0.
  double p = 0.0;
  for (int a = result.a_dm; a >= 0; a -= 2) {
    p += CrossMatchNullPmf(n1, n2, a);
  }
  result.p_value = std::min(1.0, p);

  // E[A_DM] = n1 * n2 / (N - 1) under H0.
  const int total = n1 + n2;
  result.expected_a_dm =
      static_cast<double>(n1) * n2 / static_cast<double>(total - 1);
  return result;
}

}  // namespace deepaqp::stats
