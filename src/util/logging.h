#ifndef DEEPAQP_UTIL_LOGGING_H_
#define DEEPAQP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace deepaqp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by DEEPAQP_LOG; messages below it are
/// dropped. Default is kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Emits "<LEVEL> file:line] message\n" to stderr at
/// destruction; aborts the process after emitting when `fatal` is true.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace deepaqp::util

#define DEEPAQP_LOG(level)                                             \
  ::deepaqp::util::internal_logging::LogMessage(                       \
      ::deepaqp::util::LogLevel::k##level, __FILE__, __LINE__)         \
      .stream()

/// Internal-invariant check: logs and aborts on failure. Used for programmer
/// errors that cannot be meaningfully reported to the caller; recoverable
/// conditions use Status instead.
#define DEEPAQP_CHECK(cond)                                            \
  if (!(cond))                                                         \
  ::deepaqp::util::internal_logging::LogMessage(                       \
      ::deepaqp::util::LogLevel::kError, __FILE__, __LINE__, true)     \
          .stream()                                                    \
      << "Check failed: " #cond " "

#define DEEPAQP_CHECK_EQ(a, b) DEEPAQP_CHECK((a) == (b))
#define DEEPAQP_CHECK_NE(a, b) DEEPAQP_CHECK((a) != (b))
#define DEEPAQP_CHECK_LT(a, b) DEEPAQP_CHECK((a) < (b))
#define DEEPAQP_CHECK_LE(a, b) DEEPAQP_CHECK((a) <= (b))
#define DEEPAQP_CHECK_GT(a, b) DEEPAQP_CHECK((a) > (b))
#define DEEPAQP_CHECK_GE(a, b) DEEPAQP_CHECK((a) >= (b))

#endif  // DEEPAQP_UTIL_LOGGING_H_
