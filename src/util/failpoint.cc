#include "util/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepaqp::util {

namespace internal_failpoint {
std::atomic<bool> g_enabled{false};
}  // namespace internal_failpoint

namespace {

enum class TriggerMode { kOff, kAlways, kOnce, kTimes, kProb };

struct SiteConfig {
  TriggerMode mode = TriggerMode::kOff;
  uint64_t times = 0;     // kTimes: fire on the first `times` evaluations
  double probability = 0; // kProb
  bool has_arg = false;   // @<arg> filter present
  uint64_t arg = 0;
  uint64_t seed = 0;      // per-site stream seed (global seed x site name)
  std::string spec;       // original trigger fragment, for the report
};

struct SiteState {
  SiteConfig config;
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::map<std::string, SiteState> sites;
  uint64_t seed = 0x8BADF00DDEADBEEFull;
};

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

Registry& GlobalRegistry() {
  static Registry registry;
  return registry;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Deterministic uniform in [0, 1) for the site's `evaluation`-th draw.
double SiteDraw(uint64_t site_seed, uint64_t evaluation) {
  const uint64_t bits = SplitMix64(site_seed ^ SplitMix64(evaluation));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Status ParseEntry(const std::string& entry, Registry* out) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + entry +
                                   "' is not <site>=<trigger>");
  }
  const std::string site = Trim(entry.substr(0, eq));
  std::string trigger = Trim(entry.substr(eq + 1));
  if (site == "seed") {
    int64_t seed = 0;
    if (!ParseInt64(trigger, &seed)) {
      return Status::InvalidArgument("failpoint seed '" + trigger +
                                     "' is not an integer");
    }
    out->seed = static_cast<uint64_t>(seed);
    return Status::OK();
  }

  SiteConfig config;
  config.spec = trigger;
  const size_t at = trigger.rfind('@');
  if (at != std::string::npos) {
    int64_t arg = 0;
    if (!ParseInt64(trigger.substr(at + 1), &arg) || arg < 0) {
      return Status::InvalidArgument("failpoint arg filter in '" + entry +
                                     "' is not a non-negative integer");
    }
    config.has_arg = true;
    config.arg = static_cast<uint64_t>(arg);
    trigger = trigger.substr(0, at);
  }

  if (trigger == "off") {
    config.mode = TriggerMode::kOff;
  } else if (trigger == "always") {
    config.mode = TriggerMode::kAlways;
  } else if (trigger == "once") {
    config.mode = TriggerMode::kOnce;
  } else if (StartsWith(trigger, "times:")) {
    int64_t n = 0;
    if (!ParseInt64(trigger.substr(6), &n) || n < 0) {
      return Status::InvalidArgument("failpoint trigger '" + trigger +
                                     "' needs times:<N> with N >= 0");
    }
    config.mode = TriggerMode::kTimes;
    config.times = static_cast<uint64_t>(n);
  } else if (StartsWith(trigger, "p:")) {
    double p = 0;
    if (!ParseDouble(trigger.substr(2), &p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("failpoint trigger '" + trigger +
                                     "' needs p:<probability in [0,1]>");
    }
    config.mode = TriggerMode::kProb;
    config.probability = p;
  } else {
    return Status::InvalidArgument(
        "failpoint trigger '" + trigger +
        "' not recognized (off|always|once|times:<N>|p:<P>)");
  }
  out->sites[site].config = config;
  return Status::OK();
}

}  // namespace

namespace internal_failpoint {

bool ShouldFire(const char* site, uint64_t arg) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry& registry = GlobalRegistry();
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  SiteState& state = it->second;
  const SiteConfig& config = state.config;
  const uint64_t evaluation = state.evaluations++;
  if (config.has_arg && arg != config.arg) return false;

  bool fire = false;
  switch (config.mode) {
    case TriggerMode::kOff:
      break;
    case TriggerMode::kAlways:
      fire = true;
      break;
    case TriggerMode::kOnce:
      fire = state.fires == 0;
      break;
    case TriggerMode::kTimes:
      fire = state.fires < config.times;
      break;
    case TriggerMode::kProb:
      fire = SiteDraw(config.seed, evaluation) < config.probability;
      break;
  }
  if (fire) ++state.fires;
  return fire;
}

}  // namespace internal_failpoint

Status FailpointError(const char* site) {
  return Status::Internal(std::string("injected fault at fail point '") +
                          site + "'");
}

Status ConfigureFailpoints(const std::string& spec) {
  Registry fresh;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string entry = Trim(raw);
    if (entry.empty()) continue;
    DEEPAQP_RETURN_IF_ERROR(ParseEntry(entry, &fresh));
  }
  for (auto& [name, state] : fresh.sites) {
    state.config.seed = SplitMix64(fresh.seed ^ HashName(name));
  }
  const bool enabled = !fresh.sites.empty();
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    GlobalRegistry() = std::move(fresh);
  }
  internal_failpoint::g_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    DEEPAQP_LOG(Warning) << "fail points ACTIVE: " << spec;
  }
  return Status::OK();
}

void DisableFailpoints() {
  internal_failpoint::g_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(RegistryMutex());
  GlobalRegistry() = Registry();
}

void ApplyFailpointsFlag(const Flags& flags) {
  const std::string spec = flags.GetString("failpoints", "");
  if (spec.empty()) return;
  const Status status = ConfigureFailpoints(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "--failpoints: %s\n", status.ToString().c_str());
    std::exit(2);
  }
}

std::vector<FailpointSiteStats> FailpointReport() {
  std::vector<FailpointSiteStats> report;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const auto& [name, state] : GlobalRegistry().sites) {
    FailpointSiteStats stats;
    stats.site = name;
    stats.trigger = state.config.spec;
    stats.evaluations = state.evaluations;
    stats.fires = state.fires;
    report.push_back(std::move(stats));
  }
  return report;
}

std::string FailpointReportJson() {
  std::string json = "{\"failpoints\":[";
  bool first = true;
  for (const FailpointSiteStats& s : FailpointReport()) {
    if (!first) json += ",";
    first = false;
    json += "{\"site\":\"" + s.site + "\",\"trigger\":\"" + s.trigger +
            "\",\"evaluations\":" + std::to_string(s.evaluations) +
            ",\"fires\":" + std::to_string(s.fires) + "}";
  }
  json += "]}\n";
  return json;
}

void ResetFailpointCounters() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, state] : GlobalRegistry().sites) {
    state.evaluations = 0;
    state.fires = 0;
  }
}

namespace {

/// Reads DEEPAQP_FAILPOINTS once at process start; an unparsable spec warns
/// and leaves fail points disabled (a chaos knob must never take down a
/// production binary by itself).
struct EnvInitializer {
  EnvInitializer() {
    const char* env = std::getenv("DEEPAQP_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    const Status status = ConfigureFailpoints(env);
    if (!status.ok()) {
      std::fprintf(stderr, "DEEPAQP_FAILPOINTS ignored: %s\n",
                   status.ToString().c_str());
    }
  }
};
const EnvInitializer g_env_initializer;

}  // namespace

}  // namespace deepaqp::util
