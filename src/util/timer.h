#ifndef DEEPAQP_UTIL_TIMER_H_
#define DEEPAQP_UTIL_TIMER_H_

#include <chrono>

namespace deepaqp::util {

/// Wall-clock stopwatch for bench harnesses; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_TIMER_H_
