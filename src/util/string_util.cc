#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace deepaqp::util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

bool ParseDouble(std::string_view s, double* out) {
  const std::string tmp(s);
  char* end = nullptr;
  // strtod saturates (to +/-HUGE_VAL or 0) and sets ERANGE instead of
  // failing; reset errno before the call and reject overflow so "1e999" is
  // a parse error rather than silently becoming infinity. ERANGE with a
  // finite result is gradual underflow (e.g. "1e-320" -> denormal) — those
  // stay accepted.
  errno = 0;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0') return false;
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  const std::string tmp(s);
  char* end = nullptr;
  // strtoll saturates to LLONG_MIN/LLONG_MAX and sets ERANGE on overflow;
  // reject that instead of returning the clamped value as a success.
  errno = 0;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (end == tmp.c_str() || *end != '\0') return false;
  if (errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace deepaqp::util
