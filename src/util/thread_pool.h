#ifndef DEEPAQP_UTIL_THREAD_POOL_H_
#define DEEPAQP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/topology.h"

namespace deepaqp::util {

class Flags;

/// Fixed-size thread pool used by every parallel hot path (training GEMMs,
/// synthetic-sample generation, pairwise distances, per-partition ensemble
/// training).
///
/// Determinism contract: the pool itself never introduces nondeterminism.
/// ParallelFor hands out loop indices dynamically, so *which* thread runs an
/// index varies — callers must make each index's work self-contained:
/// disjoint output slots per index and, where randomness is needed, a child
/// Rng stream derived from (master seed, index) via Rng::ChildStream. Under
/// that discipline results are bit-identical at every thread count,
/// including 1.
///
/// Placement: when util::ActivePinPolicy() is not kOff at construction
/// time, each worker lane is pinned to one CPU of the placement plan
/// (util::PlanPlacement over util::Topology()) and remembers the NUMA node
/// it lives on. Pinning failures (containers denying sched_setaffinity,
/// non-Linux) degrade silently to unpinned lanes; the node assignment is
/// kept, since ParallelForSharded only uses it as a scheduling preference.
/// Placement never changes what an index computes — only which lane runs
/// it — so every policy stays bit-identical to kOff under the contract
/// above.
class ThreadPool {
 public:
  /// `parallelism` counts the calling thread: a pool of parallelism N spawns
  /// N-1 workers and ParallelFor uses the caller as the N-th lane.
  /// Values < 1 are clamped to 1 (fully serial, no worker threads).
  explicit ThreadPool(int parallelism);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return parallelism_; }

  /// Placement introspection (benches, logs, tests). `pinned_workers` is
  /// the number of workers successfully pinned; `shard_count` the number of
  /// distinct NUMA nodes the lanes cover (1 when placement is off or the
  /// machine is single-node).
  int pinned_workers() const { return pinned_workers_; }
  int shard_count() const { return shard_count_; }
  const std::vector<LanePlacement>& placement() const { return placement_; }

  /// Enqueues a fire-and-forget task. With parallelism 1 the task runs
  /// inline. Tasks must not block waiting for later-queued tasks.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end) and blocks until all complete.
  /// The calling thread participates. The first exception thrown by any body
  /// is rethrown on the caller (remaining indices are skipped best-effort).
  /// Safe to call from inside a pool task: nested calls run inline serially,
  /// so parallel regions compose without deadlock.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// ParallelFor with node-locality-aware scheduling: the index range is
  /// split into one contiguous shard per NUMA node (sized by that node's
  /// lane count) and each lane drains its own node's shard before stealing
  /// from the others. Callers lay data out so contiguous index blocks map
  /// to contiguous memory; once lanes are pinned and pages were
  /// first-touched under the same sharding, each node then reads mostly
  /// node-local rows. Semantics are exactly ParallelFor's — every index
  /// runs exactly once, exceptions propagate the same way — and with
  /// placement off or a single node it *is* ParallelFor, so results are
  /// bit-identical between the two at every thread count.
  void ParallelForSharded(size_t begin, size_t end,
                          const std::function<void(size_t)>& body);

 private:
  void WorkerLoop(size_t lane);

  const int parallelism_;
  // Per-lane placement (lane 0 = caller, never pinned; 1.. = workers),
  // empty when the policy is kOff. lane_shard_ maps each lane to a dense
  // shard slot; shard_weight_[s] counts the lanes of shard s.
  std::vector<LanePlacement> placement_;
  std::vector<int> lane_shard_;
  std::vector<int> shard_weight_;
  int shard_count_ = 1;
  int pinned_workers_ = 0;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool shared by all library parallel regions. Defaults to
/// hardware concurrency; resize with SetGlobalThreads before heavy work.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of the given parallelism (0 or negative
/// means hardware concurrency). Not safe while parallel work is in flight.
/// The new pool replans placement, so this is also how a SetPinPolicy or
/// SetTopologyForTest change takes effect.
void SetGlobalThreads(int parallelism);

/// Parallelism of the global pool.
int GlobalThreads();

/// Reads the global `--threads` flag (0 = hardware concurrency) and resizes
/// the global pool accordingly. Call once from main() after parsing flags
/// (and after ApplyPinFlag, so the pool picks the placement policy up).
void ApplyThreadsFlag(const Flags& flags);

/// ParallelFor on the global pool.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

/// ParallelForSharded on the global pool.
void ParallelForSharded(size_t begin, size_t end,
                        const std::function<void(size_t)>& body);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_THREAD_POOL_H_
