#ifndef DEEPAQP_UTIL_THREAD_POOL_H_
#define DEEPAQP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepaqp::util {

class Flags;

/// Fixed-size thread pool used by every parallel hot path (training GEMMs,
/// synthetic-sample generation, pairwise distances, per-partition ensemble
/// training).
///
/// Determinism contract: the pool itself never introduces nondeterminism.
/// ParallelFor hands out loop indices dynamically, so *which* thread runs an
/// index varies — callers must make each index's work self-contained:
/// disjoint output slots per index and, where randomness is needed, a child
/// Rng stream derived from (master seed, index) via Rng::ChildStream. Under
/// that discipline results are bit-identical at every thread count,
/// including 1.
class ThreadPool {
 public:
  /// `parallelism` counts the calling thread: a pool of parallelism N spawns
  /// N-1 workers and ParallelFor uses the caller as the N-th lane.
  /// Values < 1 are clamped to 1 (fully serial, no worker threads).
  explicit ThreadPool(int parallelism);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return parallelism_; }

  /// Enqueues a fire-and-forget task. With parallelism 1 the task runs
  /// inline. Tasks must not block waiting for later-queued tasks.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end) and blocks until all complete.
  /// The calling thread participates. The first exception thrown by any body
  /// is rethrown on the caller (remaining indices are skipped best-effort).
  /// Safe to call from inside a pool task: nested calls run inline serially,
  /// so parallel regions compose without deadlock.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  const int parallelism_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool shared by all library parallel regions. Defaults to
/// hardware concurrency; resize with SetGlobalThreads before heavy work.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of the given parallelism (0 or negative
/// means hardware concurrency). Not safe while parallel work is in flight.
void SetGlobalThreads(int parallelism);

/// Parallelism of the global pool.
int GlobalThreads();

/// Reads the global `--threads` flag (0 = hardware concurrency) and resizes
/// the global pool accordingly. Call once from main() after parsing flags.
void ApplyThreadsFlag(const Flags& flags);

/// ParallelFor on the global pool.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_THREAD_POOL_H_
