#ifndef DEEPAQP_UTIL_TOPOLOGY_H_
#define DEEPAQP_UTIL_TOPOLOGY_H_

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"

namespace deepaqp::util {

class Flags;

/// Canonical name of the placement flag: `--pin=off|compact|scatter` selects
/// the worker-placement policy of the shared thread pool (see PinPolicy).
/// Binaries parse it with Flags and apply it via util::ApplyPinFlag *before*
/// util::ApplyThreadsFlag, so the rebuilt pool picks the policy up.
inline constexpr char kPinFlag[] = "pin";

/// One NUMA node: its sysfs id and the online CPUs it owns (ascending).
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The CPU/NUMA shape of the machine as the execution layer sees it: only
/// nodes that own at least one usable CPU, node ids ascending, CPU lists
/// ascending. "Usable" means online and inside the process's affinity mask
/// (containers with a restricted cpuset see only their slice).
struct CpuTopology {
  std::vector<NumaNode> nodes;

  int num_cpus() const;
  bool multi_node() const { return nodes.size() > 1; }

  /// "2 nodes / 16 cpus (node0: 0-7, node1: 8-15)" — for logs and bench
  /// metadata.
  std::string ToString() const;
};

/// Parses the kernel's cpulist format ("0-3,8,10-11"; empty string is an
/// empty list). Returns InvalidArgument on malformed ranges; `*cpus` is
/// untouched on error.
[[nodiscard]] Status ParseCpuList(std::string_view text,
                                  std::vector<int>* cpus);

/// The CPUs the calling process may run on (sched_getaffinity). Empty when
/// the query is unavailable (non-Linux), which callers treat as "no
/// restriction".
std::vector<int> AllowedCpus();

/// Detects the topology by parsing `<sysfs_root>/node/*` and
/// `<sysfs_root>/cpu/online` (production root: "/sys/devices/system").
/// Missing or malformed files degrade stepwise: no node directory -> one
/// node covering `cpu/online`; no readable files at all -> one node
/// covering hardware_concurrency CPUs. Node CPU lists are intersected with
/// `cpu/online` (offline CPUs drop out) and, when `allowed_cpus` is
/// non-null, with that set (the affinity mask). Never fails: the result
/// always has at least one node with at least one CPU.
CpuTopology DetectTopology(const std::string& sysfs_root,
                           const std::vector<int>* allowed_cpus = nullptr);

/// The cached process topology: DetectTopology on the real sysfs root,
/// restricted to AllowedCpus(). Detected once on first use.
const CpuTopology& Topology();

/// Overrides Topology() for tests (pass nullptr to restore real detection).
/// The pointed-to struct must outlive the override. Rebuild the pool
/// (SetGlobalThreads) afterwards so placement replans; mirrors
/// SetCpuFeaturesForTest.
void SetTopologyForTest(const CpuTopology* topology);

/// Worker-placement policy of the thread pool.
///
/// * kOff (default): today's behavior — no pinning, no node sharding.
///   Bit-for-bit identical execution *and scheduling* to the pre-topology
///   code.
/// * kCompact: fill nodes one at a time (node 0's CPUs first). Minimizes
///   cross-node traffic when the pool is smaller than one node.
/// * kScatter: round-robin lanes across nodes. Maximizes aggregate memory
///   bandwidth for pools spanning the machine.
///
/// Placement only decides *where* a loop index runs, never what it
/// computes: under the PR 1 contract (disjoint output slots, per-index
/// child RNG streams, fixed-order reductions) every policy is bit-identical
/// to kOff at every thread count.
enum class PinPolicy { kOff, kCompact, kScatter };

/// "off" / "compact" / "scatter".
const char* PinPolicyName(PinPolicy policy);

/// Parses "off" / "compact" / "scatter". Returns InvalidArgument on
/// anything else; `*policy` is untouched on error.
[[nodiscard]] Status ParsePinPolicy(std::string_view name, PinPolicy* policy);

/// Active placement policy. Initialized once from the DEEPAQP_PIN
/// environment variable; unset or unrecognized values keep kOff (with a
/// stderr warning for the latter). Consulted by ThreadPool at construction
/// time.
PinPolicy ActivePinPolicy();

/// Overrides the active policy. Takes effect when the pool is next rebuilt
/// (SetGlobalThreads); not safe while parallel work is in flight.
void SetPinPolicy(PinPolicy policy);

/// Reads `--pin=off|compact|scatter` and applies it (deepaqp_cli and the
/// bench binaries; mirrors nn::ApplyKernelFlag: the explicit flag hard-
/// errors on unknown values where the env var only warns). Call before
/// ApplyThreadsFlag so the rebuilt pool plans placement under the policy.
[[nodiscard]] Status ApplyPinFlag(const Flags& flags);

/// Where one pool lane should run: a CPU to pin to (-1 = leave unpinned)
/// and the dense index into CpuTopology::nodes of the node that CPU
/// belongs to (0 when unpinned).
struct LanePlacement {
  int cpu = -1;
  int node = 0;
};

/// Deterministic placement plan for `lanes` pool lanes (lane 0 is the
/// caller, lanes 1.. are workers). kOff maps every lane to {-1, 0}; the
/// other policies enumerate the topology's CPUs in policy order and assign
/// lane i the i-th CPU (mod total), so a pool wider than the machine wraps
/// around. A pure function of (topology, policy, lanes).
std::vector<LanePlacement> PlanPlacement(const CpuTopology& topology,
                                         PinPolicy policy, int lanes);

/// Pins the calling thread to a single CPU. Returns false when pinning is
/// unavailable (non-Linux, CPU out of range, or sched_setaffinity denied —
/// e.g. a container's seccomp policy); never fatal, callers degrade to
/// unpinned execution.
bool PinCurrentThread(int cpu);

/// Pins the calling thread to a CPU set (used to restore a saved affinity
/// mask after a temporary pin). Empty set or failure returns false.
bool PinCurrentThreadToCpus(const std::vector<int>& cpus);

/// Pins another thread by native handle (the pool pins freshly spawned
/// workers from the constructor so the pinned count is known synchronously).
/// Same degradation contract as PinCurrentThread.
bool PinNativeThread(std::thread::native_handle_type handle, int cpu);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_TOPOLOGY_H_
