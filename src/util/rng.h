#ifndef DEEPAQP_UTIL_RNG_H_
#define DEEPAQP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepaqp::util {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64). One instance per logical stream; not thread-safe, share
/// nothing across threads. All library randomness flows through this class so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponential with the given rate.
  double Exponential(double rate);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of indices [0, n); returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Samples k distinct indices from [0, n) uniformly (k <= n), in arbitrary
  /// order, via partial Fisher-Yates.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child stream (e.g., one per worker or per model).
  Rng Fork();

  /// Deterministically derives the child stream for `stream_index` from a
  /// master seed via SplitMix64 mixing. Same (seed, index) always yields the
  /// same stream; distinct indices (or seeds) yield decorrelated streams.
  /// This is the seeding scheme of every parallel region: chunk i of a
  /// ParallelFor draws from ChildStream(master, i), so output depends only
  /// on the master seed and the fixed chunk layout — never on thread count
  /// or scheduling order.
  static Rng ChildStream(uint64_t master_seed, uint64_t stream_index);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// Zipf distribution over {0, ..., n-1} with exponent s >= 0 (s = 0 is
/// uniform). Precomputes the CDF once; sampling is O(log n) via binary
/// search. Rank 0 is the most frequent value.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double Pmf(uint64_t k) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Used on hot sampling paths (decoder output draws, synthetic data
/// generation) where Rng::Categorical's linear scan is too slow.
class AliasTable {
 public:
  /// Builds from unnormalized non-negative weights (at least one positive).
  explicit AliasTable(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_RNG_H_
