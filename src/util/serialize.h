#ifndef DEEPAQP_UTIL_SERIALIZE_H_
#define DEEPAQP_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepaqp::util {

/// Append-only little-endian binary writer. Used to serialize trained models
/// so examples/benches can report the "few hundred KBs" model-size claim and
/// round-trip models to disk.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF32(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s);
  void WriteF32Vector(const std::vector<float>& v);
  /// Same wire format as WriteF32Vector (u64 count + raw floats) for
  /// buffers that are not a plain std::vector<float> (e.g. the aligned
  /// Matrix storage) — byte-identical output for identical contents.
  void WriteF32Array(const float* p, size_t n);
  void WriteF64Vector(const std::vector<double>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  /// Appends `n` bytes verbatim (no length prefix) — for nesting an
  /// already-serialized payload, e.g. a member model inside a snapshot
  /// section.
  void WriteRaw(const void* p, size_t n) { AppendRaw(p, n); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void AppendRaw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer written by ByteWriter. All reads are
/// bounds-checked and return Status on truncation so corrupted model files
/// are reported rather than crashing.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadF32Vector();
  Result<std::vector<double>> ReadF64Vector();
  Result<std::vector<int32_t>> ReadI32Vector();

  /// Reads `n` raw bytes (the inverse of WriteRaw; the caller knows n, e.g.
  /// from remaining()).
  Result<std::vector<uint8_t>> ReadBytes(size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Writes `bytes` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

/// Writes `bytes` to `path` via a temp file + rename, so a crash or full
/// disk mid-write never leaves a truncated file at `path` (either the old
/// content or the new content is visible, never a prefix). Assumes a single
/// writer per path: the temp name is `path + ".tmp"`.
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// Reads the whole file at `path`.
Result<std::vector<uint8_t>> ReadFile(const std::string& path);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_SERIALIZE_H_
