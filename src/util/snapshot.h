#ifndef DEEPAQP_UTIL_SNAPSHOT_H_
#define DEEPAQP_UTIL_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace deepaqp::util {

/// Versioned, checksummed container for persisted models. The paper's
/// deployment story ships a few-hundred-KB generative model to clients
/// instead of data samples, which makes the model file a production artifact
/// that must survive partial writes, bit rot, and version skew. Layout
/// (little-endian, ByteWriter conventions):
///
///   magic            8 bytes  "DAQPSNAP"
///   format_version   u32      container layout version (this file's schema)
///   kind             string   payload identifier, e.g. "deepaqp.vae-model"
///   payload_version  u32      schema version of the payload sections
///   section_count    u32
///   per section:     string name, u64 size, u32 crc32(payload)
///   header_crc       u32      CRC-32 of every byte above
///   section payloads, concatenated in table order
///   file_crc         u32      CRC-32 of every preceding byte
///
/// The header CRC makes the section table trustworthy on its own, so a
/// reader can salvage intact sections from a file whose tail is corrupt
/// (degraded ensemble loading); the file CRC makes strict verification a
/// single pass.
inline constexpr char kSnapshotMagic[8] = {'D', 'A', 'Q', 'P',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Builds a snapshot: add named sections, serialize the payload into each
/// section's ByteWriter, then Finish(). Section writers remain valid until
/// the SnapshotWriter is destroyed.
class SnapshotWriter {
 public:
  /// `format_version` is overridable only so tests and migration tooling can
  /// fabricate future-version files; production callers use the default.
  SnapshotWriter(std::string kind, uint32_t payload_version,
                 uint32_t format_version = kSnapshotFormatVersion)
      : kind_(std::move(kind)),
        payload_version_(payload_version),
        format_version_(format_version) {}

  /// Appends a new section and returns its payload writer.
  ByteWriter& AddSection(std::string name);

  /// Assembles the container (header, section table, payloads, checksums).
  std::vector<uint8_t> Finish() const;

 private:
  std::string kind_;
  uint32_t payload_version_;
  uint32_t format_version_;
  /// deque: AddSection must not invalidate previously returned references.
  std::deque<std::pair<std::string, ByteWriter>> sections_;
};

/// One section-table entry, exposed so callers (and tests) can inspect and
/// target sections by offset.
struct SnapshotSection {
  std::string name;
  size_t offset = 0;  // absolute offset of the payload in the snapshot
  size_t size = 0;
  uint32_t crc32 = 0;
  /// False when the section table places the payload beyond the end of the
  /// buffer (truncated file opened tolerantly).
  bool in_bounds = true;
};

/// Loader diagnostics surfaced to logging and the CLI.
struct SnapshotStats {
  size_t total_bytes = 0;
  size_t num_sections = 0;
  /// Seconds spent computing/verifying checksums (open + section reads).
  double verify_seconds = 0.0;
  /// Whole-file checksum status; always true after a strict Open.
  bool file_checksum_ok = true;
};

/// Read side. Does not own the bytes: the buffer passed to Open must outlive
/// the reader and any ByteReader obtained from it.
class SnapshotReader {
 public:
  /// Strict open: bad magic, unsupported format version, header/table
  /// corruption, size mismatch, or a whole-file checksum failure all return
  /// a descriptive error. Per-section CRCs are still verified lazily by
  /// Section().
  static Result<SnapshotReader> Open(const std::vector<uint8_t>& bytes);

  /// Tolerant open for degraded loading: the header and section table must
  /// verify (their own CRC), but a missing/failed whole-file checksum or a
  /// truncated tail is recorded in stats() instead of failing, so intact
  /// sections remain readable via Section().
  static Result<SnapshotReader> OpenTolerant(
      const std::vector<uint8_t>& bytes);

  const std::string& kind() const { return kind_; }
  uint32_t format_version() const { return format_version_; }
  uint32_t payload_version() const { return payload_version_; }
  const std::vector<SnapshotSection>& sections() const { return sections_; }
  const SnapshotStats& stats() const { return stats_; }

  bool HasSection(const std::string& name) const;

  /// Verifies the named section's CRC-32 and returns a reader bounded to its
  /// payload. NotFound for unknown names; OutOfRange for truncated sections;
  /// IOError for checksum mismatches.
  Result<ByteReader> Section(const std::string& name) const;

 private:
  SnapshotReader() = default;
  static Result<SnapshotReader> OpenImpl(const std::vector<uint8_t>& bytes,
                                         bool tolerant);

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string kind_;
  uint32_t format_version_ = 0;
  uint32_t payload_version_ = 0;
  std::vector<SnapshotSection> sections_;
  mutable SnapshotStats stats_;  // Section() accumulates verify time
};

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_SNAPSHOT_H_
