#ifndef DEEPAQP_UTIL_CRC32_H_
#define DEEPAQP_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace deepaqp::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `size` bytes starting at
/// `data`. This is the checksum used for snapshot integrity: it matches
/// zlib's crc32(), so model files can be verified with standard tooling.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` the result of a previous call (or 0 for the
/// first chunk) to checksum data that is not contiguous in memory.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_CRC32_H_
