#ifndef DEEPAQP_UTIL_FAILPOINT_H_
#define DEEPAQP_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepaqp::util {

class Flags;

/// Deterministic fault-injection registry ("fail points"). Hot paths name a
/// site and ask whether an injected fault should fire there:
///
///   if (util::FailpointTriggered("snapshot/open")) {
///     return util::FailpointError("snapshot/open");
///   }
///
/// Sites are dormant by default: the disabled check is a single relaxed
/// atomic load and branch, so instrumented hot paths (GEMM dispatch, arena
/// acquisition, sample generation) pay nothing measurable in production.
/// Activation happens once, up front, via the DEEPAQP_FAILPOINTS environment
/// variable, the --failpoints flag (ApplyFailpointsFlag), or
/// ConfigureFailpoints directly in tests.
///
/// Spec grammar (comma-separated entries, applied in order):
///
///   <site>=<trigger>[@<arg>] , ...
///   seed=<N>                       (optional; reseeds the Bernoulli draws)
///
/// Triggers:
///   off        never fires (site stays instrumented but dormant)
///   always     fires on every evaluation
///   once       fires on the first evaluation only, then disarms
///   times:<N>  fires on the first N evaluations, then disarms
///   p:<0..1>   fires per-evaluation with probability p, from a per-site
///              deterministic stream (seeded by the global failpoint seed
///              mixed with the site name, never by wall-clock entropy)
///
/// The optional `@<arg>` suffix restricts the trigger to evaluations whose
/// call-site argument equals <arg> (e.g. `ensemble/train_member=always@2`
/// fails only member 2). Sites evaluated without an explicit argument use 0.
///
/// Determinism contract: with fail points disabled — or configured but with
/// no trigger firing — every instrumented path is bit-identical to the
/// uninstrumented library. Probabilistic triggers draw from a per-site
/// counter-based stream, so the *set* of firing evaluations for a given
/// (seed, site) is fixed; under a multi-threaded run the assignment of those
/// evaluations to logical operations follows scheduling order, which is the
/// intended chaos-mode behavior.

namespace internal_failpoint {
extern std::atomic<bool> g_enabled;
bool ShouldFire(const char* site, uint64_t arg);
}  // namespace internal_failpoint

/// True when any fail-point spec is active. Cheap enough for hot paths.
inline bool FailpointsEnabled() {
  return internal_failpoint::g_enabled.load(std::memory_order_relaxed);
}

/// True when the named site should inject a fault now. `arg` identifies the
/// evaluation to `@<arg>`-filtered triggers (member index, epoch, ...).
inline bool FailpointTriggered(const char* site, uint64_t arg = 0) {
  return FailpointsEnabled() && internal_failpoint::ShouldFire(site, arg);
}

/// Canonical status an instrumented path returns when its site fires.
Status FailpointError(const char* site);

/// Parses and installs `spec` (see grammar above), replacing any previous
/// configuration and resetting all counters. An empty spec disables the
/// subsystem. Unknown trigger forms or malformed probabilities return
/// InvalidArgument and leave the previous configuration untouched.
Status ConfigureFailpoints(const std::string& spec);

/// Disables the subsystem and clears the configuration and counters.
void DisableFailpoints();

/// Reads the --failpoints flag and applies it; an invalid spec aborts with a
/// usage message (mirrors aqp::ApplyEngineFlag). Without the flag the
/// DEEPAQP_FAILPOINTS environment variable (read once at startup) stands.
void ApplyFailpointsFlag(const Flags& flags);

/// Per-site evaluation/fire counters since the last configure/reset — the
/// structured fault log chaos runs persist as an artifact.
struct FailpointSiteStats {
  std::string site;
  std::string trigger;  ///< the spec fragment this site was configured with
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

/// Snapshot of every configured site's counters, sorted by site name.
std::vector<FailpointSiteStats> FailpointReport();

/// FailpointReport as a small JSON document:
/// {"failpoints":[{"site":...,"trigger":...,"evaluations":N,"fires":M}]}.
std::string FailpointReportJson();

/// Zeroes every site's evaluation and fire counters, which also re-arms
/// `once`/`times` triggers (their disarm state lives in the fire count).
/// The configuration itself is kept. Tests use it between scenarios.
void ResetFailpointCounters();

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_FAILPOINT_H_
