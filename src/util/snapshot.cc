#include "util/snapshot.h"

#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace deepaqp::util {

ByteWriter& SnapshotWriter::AddSection(std::string name) {
  sections_.emplace_back(std::move(name), ByteWriter());
  return sections_.back().second;
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  ByteWriter header;
  for (char c : kSnapshotMagic) header.WriteU8(static_cast<uint8_t>(c));
  header.WriteU32(format_version_);
  header.WriteString(kind_);
  header.WriteU32(payload_version_);
  header.WriteU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    header.WriteString(name);
    header.WriteU64(payload.size());
    header.WriteU32(Crc32(payload.bytes().data(), payload.size()));
  }
  header.WriteU32(Crc32(header.bytes().data(), header.size()));

  std::vector<uint8_t> out = header.bytes();
  for (const auto& [name, payload] : sections_) {
    out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
  }
  const uint32_t file_crc = Crc32(out.data(), out.size());
  ByteWriter trailer;
  trailer.WriteU32(file_crc);
  out.insert(out.end(), trailer.bytes().begin(), trailer.bytes().end());
  return out;
}

Result<SnapshotReader> SnapshotReader::Open(
    const std::vector<uint8_t>& bytes) {
  return OpenImpl(bytes, /*tolerant=*/false);
}

Result<SnapshotReader> SnapshotReader::OpenTolerant(
    const std::vector<uint8_t>& bytes) {
  return OpenImpl(bytes, /*tolerant=*/true);
}

Result<SnapshotReader> SnapshotReader::OpenImpl(
    const std::vector<uint8_t>& bytes, bool tolerant) {
  // Chaos site: simulated unreadable/corrupt snapshot header.
  if (FailpointTriggered("snapshot/open")) {
    return FailpointError("snapshot/open");
  }
  Stopwatch watch;
  constexpr size_t kMagicSize = sizeof(kSnapshotMagic);
  if (bytes.size() < kMagicSize + sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "snapshot too small to hold a header (" +
        std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, kMagicSize) != 0) {
    return Status::InvalidArgument(
        "not a deepaqp snapshot (bad magic; legacy or foreign file?)");
  }

  SnapshotReader snap;
  snap.data_ = bytes.data();
  snap.size_ = bytes.size();

  ByteReader r(bytes.data() + kMagicSize, bytes.size() - kMagicSize);
  // Absolute position in the snapshot buffer of the reader's cursor.
  const auto pos = [&r, &bytes] { return bytes.size() - r.remaining(); };

  DEEPAQP_ASSIGN_OR_RETURN(snap.format_version_, r.ReadU32());
  if (snap.format_version_ == 0 ||
      snap.format_version_ > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version " + std::to_string(snap.format_version_) +
        " is not supported (this reader handles up to version " +
        std::to_string(kSnapshotFormatVersion) +
        "); upgrade the library or re-save the model");
  }
  DEEPAQP_ASSIGN_OR_RETURN(snap.kind_, r.ReadString());
  DEEPAQP_ASSIGN_OR_RETURN(snap.payload_version_, r.ReadU32());
  DEEPAQP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotSection section;
    DEEPAQP_ASSIGN_OR_RETURN(section.name, r.ReadString());
    DEEPAQP_ASSIGN_OR_RETURN(uint64_t size, r.ReadU64());
    DEEPAQP_ASSIGN_OR_RETURN(section.crc32, r.ReadU32());
    section.size = static_cast<size_t>(size);
    snap.sections_.push_back(std::move(section));
  }

  const size_t header_end = pos();
  DEEPAQP_ASSIGN_OR_RETURN(uint32_t header_crc, r.ReadU32());
  if (Crc32(bytes.data(), header_end) != header_crc) {
    return Status::IOError(
        "snapshot header checksum mismatch (corrupt header/section table)");
  }

  // The section table is now trustworthy; lay out payload offsets. Once one
  // section falls outside the buffer every later one does too (payloads are
  // sequential), so `truncated` is sticky.
  size_t offset = pos();
  bool truncated = false;
  for (SnapshotSection& section : snap.sections_) {
    section.offset = offset;
    if (truncated || section.size > bytes.size() - offset) {
      if (!tolerant) {
        return Status::OutOfRange(
            "snapshot truncated: section '" + section.name +
            "' extends past the end of the file");
      }
      truncated = true;
      section.in_bounds = false;
      snap.stats_.file_checksum_ok = false;
      continue;
    }
    offset += section.size;
  }

  // Trailing whole-file checksum.
  const bool has_trailer =
      !truncated && offset + sizeof(uint32_t) == bytes.size();
  if (has_trailer) {
    uint32_t file_crc = 0;
    std::memcpy(&file_crc, bytes.data() + offset, sizeof(file_crc));
    if (Crc32(bytes.data(), offset) != file_crc) {
      if (!tolerant) {
        return Status::IOError(
            "snapshot file checksum mismatch (corrupt payload)");
      }
      snap.stats_.file_checksum_ok = false;
    }
  } else {
    if (!tolerant) {
      return Status::OutOfRange(
          "snapshot size does not match its section table "
          "(truncated or trailing garbage)");
    }
    snap.stats_.file_checksum_ok = false;
  }

  snap.stats_.total_bytes = bytes.size();
  snap.stats_.num_sections = snap.sections_.size();
  snap.stats_.verify_seconds = watch.ElapsedSeconds();
  DEEPAQP_LOG(Debug) << "snapshot open: kind=" << snap.kind_
                     << " payload_v" << snap.payload_version_ << " "
                     << snap.stats_.num_sections << " sections, "
                     << snap.stats_.total_bytes << " bytes, checksums "
                     << (snap.stats_.file_checksum_ok ? "ok" : "DEGRADED")
                     << " in " << snap.stats_.verify_seconds * 1e3 << " ms";
  return snap;
}

bool SnapshotReader::HasSection(const std::string& name) const {
  for (const SnapshotSection& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Result<ByteReader> SnapshotReader::Section(const std::string& name) const {
  // Chaos site: simulated per-section bit rot (what degraded ensemble
  // loading is built to survive).
  if (FailpointTriggered("snapshot/section")) {
    return FailpointError("snapshot/section");
  }
  for (const SnapshotSection& s : sections_) {
    if (s.name != name) continue;
    if (!s.in_bounds) {
      return Status::OutOfRange("snapshot section '" + name +
                                "' lies beyond the end of the file "
                                "(truncated snapshot)");
    }
    Stopwatch watch;
    const uint32_t crc = Crc32(data_ + s.offset, s.size);
    stats_.verify_seconds += watch.ElapsedSeconds();
    if (crc != s.crc32) {
      return Status::IOError("snapshot section '" + name +
                             "' checksum mismatch (corrupt payload)");
    }
    return ByteReader(data_ + s.offset, s.size);
  }
  return Status::NotFound("snapshot has no section '" + name + "'");
}

}  // namespace deepaqp::util
