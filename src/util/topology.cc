#include "util/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/flags.h"
#include "util/string_util.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace deepaqp::util {

namespace {

/// Reads a small sysfs-style file; returns false when it does not exist or
/// cannot be read (the graceful-degradation path, not an error).
bool ReadSmallFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, got);
  std::fclose(f);
  return true;
}

std::vector<int> FallbackCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> cpus(hw == 0 ? 1 : hw);
  for (size_t i = 0; i < cpus.size(); ++i) cpus[i] = static_cast<int>(i);
  return cpus;
}

std::vector<int> Intersect(const std::vector<int>& a,
                           const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Renders an ascending CPU list back into cpulist form ("0-3,8").
std::string CpusToString(const std::vector<int>& cpus) {
  std::string out;
  for (size_t i = 0; i < cpus.size();) {
    size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(cpus[i]);
    if (j > i) out += '-' + std::to_string(cpus[j]);
    i = j + 1;
  }
  return out;
}

}  // namespace

int CpuTopology::num_cpus() const {
  int n = 0;
  for (const NumaNode& node : nodes) n += static_cast<int>(node.cpus.size());
  return n;
}

std::string CpuTopology::ToString() const {
  std::string out = std::to_string(nodes.size()) + " node" +
                    (nodes.size() == 1 ? "" : "s") + " / " +
                    std::to_string(num_cpus()) + " cpus (";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += "node" + std::to_string(nodes[i].id) + ": " +
           CpusToString(nodes[i].cpus);
  }
  return out + ")";
}

Status ParseCpuList(std::string_view text, std::vector<int>* cpus) {
  std::vector<int> out;
  const std::string trimmed = Trim(text);
  if (!trimmed.empty()) {
    for (const std::string& field : Split(trimmed, ',')) {
      const std::string range = Trim(field);
      const size_t dash = range.find('-');
      int64_t lo = 0;
      int64_t hi = 0;
      if (dash == std::string::npos) {
        if (!ParseInt64(range, &lo) || lo < 0) {
          return Status::InvalidArgument("bad cpulist entry '" + range + "'");
        }
        hi = lo;
      } else {
        if (!ParseInt64(range.substr(0, dash), &lo) ||
            !ParseInt64(range.substr(dash + 1), &hi) || lo < 0 || hi < lo) {
          return Status::InvalidArgument("bad cpulist range '" + range + "'");
        }
      }
      // Cap pathological ranges instead of allocating gigabytes; no real
      // machine this code targets has more than 2^20 CPUs.
      if (hi >= (int64_t{1} << 20)) {
        return Status::InvalidArgument("cpulist range too large '" + range +
                                       "'");
      }
      for (int64_t c = lo; c <= hi; ++c) out.push_back(static_cast<int>(c));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  *cpus = std::move(out);
  return Status::OK();
}

std::vector<int> AllowedCpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  return cpus;
}

CpuTopology DetectTopology(const std::string& sysfs_root,
                           const std::vector<int>* allowed_cpus) {
  // Online CPUs of the whole machine; empty means "unknown" and imposes no
  // restriction on the node lists.
  std::vector<int> online;
  {
    std::string text;
    if (ReadSmallFile(sysfs_root + "/cpu/online", &text)) {
      std::vector<int> parsed;
      if (ParseCpuList(text, &parsed).ok()) online = std::move(parsed);
    }
  }

  CpuTopology topo;
  std::string node_online;
  std::vector<int> node_ids;
  if (ReadSmallFile(sysfs_root + "/node/online", &node_online) &&
      ParseCpuList(node_online, &node_ids).ok()) {
    for (int id : node_ids) {
      std::string text;
      if (!ReadSmallFile(
              sysfs_root + "/node/node" + std::to_string(id) + "/cpulist",
              &text)) {
        continue;  // memory-only node or missing file
      }
      std::vector<int> cpus;
      if (!ParseCpuList(text, &cpus).ok()) continue;
      if (!online.empty()) cpus = Intersect(cpus, online);
      if (allowed_cpus != nullptr && !allowed_cpus->empty()) {
        cpus = Intersect(cpus, *allowed_cpus);
      }
      if (cpus.empty()) continue;
      topo.nodes.push_back(NumaNode{id, std::move(cpus)});
    }
  }

  if (topo.nodes.empty()) {
    // No node directory (or nothing usable in it): single-node fallback
    // over the online set, the affinity mask, or hardware_concurrency —
    // whichever is known, in that order of preference.
    std::vector<int> cpus = !online.empty() ? online : FallbackCpus();
    if (allowed_cpus != nullptr && !allowed_cpus->empty()) {
      std::vector<int> restricted = Intersect(cpus, *allowed_cpus);
      if (!restricted.empty()) cpus = std::move(restricted);
    }
    topo.nodes.push_back(NumaNode{0, std::move(cpus)});
  }
  return topo;
}

namespace {

const CpuTopology* g_topology_override = nullptr;

const CpuTopology& RealTopology() {
  static const CpuTopology detected = [] {
    const std::vector<int> allowed = AllowedCpus();
    return DetectTopology("/sys/devices/system",
                          allowed.empty() ? nullptr : &allowed);
  }();
  return detected;
}

}  // namespace

const CpuTopology& Topology() {
  return g_topology_override != nullptr ? *g_topology_override
                                        : RealTopology();
}

void SetTopologyForTest(const CpuTopology* topology) {
  g_topology_override = topology;
}

const char* PinPolicyName(PinPolicy policy) {
  switch (policy) {
    case PinPolicy::kOff:
      return "off";
    case PinPolicy::kCompact:
      return "compact";
    case PinPolicy::kScatter:
      return "scatter";
  }
  return "off";
}

Status ParsePinPolicy(std::string_view name, PinPolicy* policy) {
  if (name == "off") {
    *policy = PinPolicy::kOff;
  } else if (name == "compact") {
    *policy = PinPolicy::kCompact;
  } else if (name == "scatter") {
    *policy = PinPolicy::kScatter;
  } else {
    return Status::InvalidArgument("unknown pin policy '" +
                                   std::string(name) +
                                   "' (off|compact|scatter)");
  }
  return Status::OK();
}

namespace {

PinPolicy PolicyFromEnv() {
  const char* env = std::getenv("DEEPAQP_PIN");
  if (env == nullptr || env[0] == '\0') return PinPolicy::kOff;
  PinPolicy policy = PinPolicy::kOff;
  if (const Status st = ParsePinPolicy(env, &policy); !st.ok()) {
    std::fprintf(stderr,
                 "DEEPAQP_PIN='%s' not recognized (off|compact|scatter); "
                 "keeping 'off'\n",
                 env);
  }
  return policy;
}

PinPolicy& PolicySlot() {
  static PinPolicy policy = PolicyFromEnv();
  return policy;
}

}  // namespace

PinPolicy ActivePinPolicy() { return PolicySlot(); }

void SetPinPolicy(PinPolicy policy) { PolicySlot() = policy; }

Status ApplyPinFlag(const Flags& flags) {
  const std::string value = flags.GetString(kPinFlag, "");
  if (value.empty()) return Status::OK();
  PinPolicy policy = PinPolicy::kOff;
  if (Status st = ParsePinPolicy(value, &policy); !st.ok()) {
    return Status::InvalidArgument("--pin=" + value +
                                   " not recognized (off|compact|scatter)");
  }
  SetPinPolicy(policy);
  return Status::OK();
}

std::vector<LanePlacement> PlanPlacement(const CpuTopology& topology,
                                         PinPolicy policy, int lanes) {
  std::vector<LanePlacement> plan(
      static_cast<size_t>(std::max(lanes, 0)));
  if (policy == PinPolicy::kOff || topology.num_cpus() == 0) return plan;

  // Enumerate {cpu, dense node index} in policy order.
  std::vector<LanePlacement> order;
  if (policy == PinPolicy::kCompact) {
    for (size_t d = 0; d < topology.nodes.size(); ++d) {
      for (int cpu : topology.nodes[d].cpus) {
        order.push_back(LanePlacement{cpu, static_cast<int>(d)});
      }
    }
  } else {  // kScatter: one CPU per node per round, nodes in id order.
    std::vector<size_t> taken(topology.nodes.size(), 0);
    for (size_t remaining = static_cast<size_t>(topology.num_cpus());
         remaining > 0;) {
      for (size_t d = 0; d < topology.nodes.size(); ++d) {
        const std::vector<int>& cpus = topology.nodes[d].cpus;
        if (taken[d] >= cpus.size()) continue;
        order.push_back(
            LanePlacement{cpus[taken[d]++], static_cast<int>(d)});
        --remaining;
      }
    }
  }
  for (size_t lane = 0; lane < plan.size(); ++lane) {
    plan[lane] = order[lane % order.size()];
  }
  return plan;
}

bool PinCurrentThread(int cpu) {
#if defined(__linux__)
  return PinNativeThread(pthread_self(), cpu);
#else
  (void)cpu;
  return false;
#endif
}

bool PinCurrentThreadToCpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    CPU_SET(cpu, &set);
    any = true;
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool PinNativeThread(std::thread::native_handle_type handle, int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
#else
  (void)handle;
  (void)cpu;
  return false;
#endif
}

}  // namespace deepaqp::util
