#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace deepaqp::util {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= g_min_level) {
  if (enabled_) {
    // Strip directories for terse output.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace deepaqp::util
