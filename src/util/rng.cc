#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepaqp::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  DEEPAQP_CHECK_GT(n, 0u);
  // Rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DEEPAQP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextIndex(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double rate) {
  DEEPAQP_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DEEPAQP_CHECK_GE(w, 0.0);
    total += w;
  }
  DEEPAQP_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  // Floating-point slack: return last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = NextIndex(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DEEPAQP_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextIndex(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::ChildStream(uint64_t master_seed, uint64_t stream_index) {
  // Hash seed and index through independent SplitMix64 chains before
  // combining, so child seeds are decorrelated both across indices of one
  // master and across masters for one index.
  uint64_t s = master_seed;
  const uint64_t seed_mix = SplitMix64(&s);
  uint64_t t = stream_index + 0x9E3779B97F4A7C15ull;
  const uint64_t index_mix = SplitMix64(&t);
  return Rng(seed_mix ^ index_mix);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n) {
  DEEPAQP_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t k) const {
  DEEPAQP_CHECK_LT(k, n_);
  const double lo = (k == 0) ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  DEEPAQP_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    DEEPAQP_CHECK_GE(w, 0.0);
    total += w;
  }
  DEEPAQP_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.NextIndex(prob_.size()));
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace deepaqp::util
