#ifndef DEEPAQP_UTIL_STRING_UTIL_H_
#define DEEPAQP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepaqp::util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins strings with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats `v` with `digits` decimal places.
std::string FormatDouble(double v, int digits);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_STRING_UTIL_H_
