#include "util/flags.h"

#include "util/string_util.h"

namespace deepaqp::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  int64_t v = 0;
  return ParseInt64(it->second, &v) ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  double v = 0;
  return ParseDouble(it->second, &v) ? v : def;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace deepaqp::util
