#ifndef DEEPAQP_UTIL_CPU_FEATURES_H_
#define DEEPAQP_UTIL_CPU_FEATURES_H_

#include <string>

namespace deepaqp::util {

/// The ISA extensions the kernel layer dispatches on. Detected once per
/// process from the running CPU (cpuid on x86, getauxval on aarch64), never
/// from compile flags — a binary built on an AVX2 host must still answer
/// correctly on a machine without AVX2.
struct CpuFeatures {
  bool avx2 = false;     ///< x86: 256-bit integer/float vectors
  bool fma = false;      ///< x86: fused multiply-add (FMA3)
  bool f16c = false;     ///< x86: half<->float conversion (VCVTPH2PS)
  bool avx512f = false;  ///< x86: 512-bit foundation (detected, unused)
  bool neon = false;     ///< aarch64: Advanced SIMD (baseline on AArch64)
};

/// The detected features of the running CPU, cached after the first call.
/// The environment variable `DEEPAQP_CPU_DISABLE` (comma-separated subset
/// of "avx2,fma,f16c,avx512f,neon", read once) masks features off — the
/// knob CI uses to exercise the no-SIMD fallback path on SIMD hardware.
const CpuFeatures& CpuInfo();

/// Overrides CpuInfo() for tests (pass nullptr to restore real detection).
/// The pointed-to struct must outlive the override. Not safe while parallel
/// compute is in flight; set it up front like SetGemmKernelKind.
void SetCpuFeaturesForTest(const CpuFeatures* features);

/// "avx2 fma" / "neon" / "" — for logs and bench metadata.
std::string CpuFeaturesToString(const CpuFeatures& features);

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_CPU_FEATURES_H_
