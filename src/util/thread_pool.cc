#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "util/flags.h"
#include "util/logging.h"

namespace deepaqp::util {

namespace {

/// Set while a thread is executing a pool task; nested ParallelFor calls on
/// such a thread run inline instead of re-entering the queue.
thread_local bool tls_in_pool_task = false;

/// Dense shard slot of the lane running on this thread (set by workers at
/// spawn from the placement plan; 0 everywhere else). Only a scheduling
/// preference — never part of any computed value.
thread_local int tls_lane_shard = 0;

int ClampParallelism(int parallelism) {
  if (parallelism >= 1) return parallelism;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(parallelism < 1 ? 1 : parallelism) {
  const PinPolicy policy = ActivePinPolicy();
  lane_shard_.assign(static_cast<size_t>(parallelism_), 0);
  if (policy != PinPolicy::kOff) {
    const CpuTopology& topo = Topology();
    placement_ = PlanPlacement(topo, policy, parallelism_);
    // Compress the node assignments of the lanes actually present into
    // dense shard slots (a compact plan smaller than one node covers a
    // single shard even on a multi-node machine).
    std::vector<int> node_to_shard;
    for (size_t lane = 0; lane < placement_.size(); ++lane) {
      const int node = placement_[lane].node;
      int shard = -1;
      for (size_t s = 0; s < node_to_shard.size(); ++s) {
        if (node_to_shard[s] == node) shard = static_cast<int>(s);
      }
      if (shard < 0) {
        shard = static_cast<int>(node_to_shard.size());
        node_to_shard.push_back(node);
        shard_weight_.push_back(0);
      }
      lane_shard_[lane] = shard;
      ++shard_weight_[static_cast<size_t>(shard)];
    }
    shard_count_ = static_cast<int>(shard_weight_.size());
  }
  if (shard_weight_.empty()) shard_weight_.assign(1, parallelism_);

  workers_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int i = 0; i < parallelism_ - 1; ++i) {
    const size_t lane = static_cast<size_t>(i) + 1;
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
    if (!placement_.empty() && placement_[lane].cpu >= 0 &&
        PinNativeThread(workers_.back().native_handle(),
                        placement_[lane].cpu)) {
      ++pinned_workers_;
    }
  }
  if (policy != PinPolicy::kOff) {
    DEEPAQP_LOG(Info) << "thread pool: " << parallelism_ << " lanes, pin="
                      << PinPolicyName(policy) << ", topology "
                      << Topology().ToString() << ", pinned "
                      << pinned_workers_ << "/" << (parallelism_ - 1)
                      << " workers, " << shard_count_ << " shard(s)";
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // With no workers (parallelism 1) queued tasks ran inline in Submit, so
  // the queue is already empty here.
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    const bool prev = tls_in_pool_task;
    tls_in_pool_task = true;
    task();
    tls_in_pool_task = prev;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t lane) {
  tls_in_pool_task = true;
  tls_lane_shard = lane_shard_[lane];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one (possibly sharded) parallel-for region: one atomic
/// cursor per shard plus the completion/error bookkeeping. The plain
/// ParallelFor is the one-shard special case.
struct ForState {
  struct Shard {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };
  // Fixed-capacity shard array (machines with more NUMA nodes fold into the
  // last shard); avoids a vector of atomics.
  static constexpr size_t kMaxShards = 16;
  Shard shards[kMaxShards];
  size_t num_shards = 1;
  const std::function<void(size_t)>* body = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  int pending_helpers = 0;   // guarded by mu
  std::exception_ptr error;  // guarded by mu

  /// Claims indices until every shard is dry, preferring `home` and then
  /// scanning the other shards in cyclic order. On a body exception the
  /// first error is kept and all cursors fast-forward so other lanes stop.
  void Drain(size_t home) {
    for (size_t offset = 0; offset < num_shards; ++offset) {
      Shard& s = shards[(home + offset) % num_shards];
      for (;;) {
        const size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= s.end) break;
        try {
          (*body)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!error) error = std::current_exception();
          }
          for (size_t d = 0; d < num_shards; ++d) {
            shards[d].next.store(shards[d].end, std::memory_order_relaxed);
          }
          return;
        }
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t range = end - begin;
  // Serial fast path: trivial range, no workers, or already inside a pool
  // task (nested region) — run inline with natural exception propagation.
  if (range == 1 || workers_.empty() || tls_in_pool_task) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->shards[0].next.store(begin, std::memory_order_relaxed);
  state->shards[0].end = end;
  state->num_shards = 1;
  state->body = &body;

  const size_t helpers = std::min<size_t>(workers_.size(), range - 1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pending_helpers = static_cast<int>(helpers);
  }
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] {
      state->Drain(static_cast<size_t>(tls_lane_shard) % state->num_shards);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending_helpers == 0) state->done_cv.notify_all();
    });
  }

  // The caller participates as the last lane; flag it as in-task so nested
  // parallel regions inside body() run inline here too.
  tls_in_pool_task = true;
  state->Drain(0);
  tls_in_pool_task = false;
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->pending_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::ParallelForSharded(size_t begin, size_t end,
                                    const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t range = end - begin;
  const size_t shards = std::min<size_t>(
      std::min<size_t>(static_cast<size_t>(shard_count_),
                       ForState::kMaxShards),
      range);
  // Sharding only pays when the lanes actually span several nodes; with one
  // shard (placement off, single-node machine, compact plan inside one
  // node) this IS ParallelFor, scheduling included.
  if (shards <= 1 || workers_.empty() || tls_in_pool_task) {
    ParallelFor(begin, end, body);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->num_shards = shards;
  state->body = &body;
  // Contiguous per-shard subranges, sized by each shard's lane count so a
  // lopsided plan (e.g. 3 lanes on node0, 1 on node1) gets matching index
  // shares. Pure function of (range, plan) — never of runtime scheduling.
  size_t total_weight = 0;
  for (size_t s = 0; s < shards; ++s) {
    total_weight += static_cast<size_t>(shard_weight_[s]);
  }
  // Fold the weight of shards beyond kMaxShards (if any) into the last one.
  for (size_t s = shards; s < shard_weight_.size(); ++s) {
    total_weight += static_cast<size_t>(shard_weight_[s]);
  }
  size_t cum = 0;
  size_t shard_begin = begin;
  for (size_t s = 0; s < shards; ++s) {
    cum += static_cast<size_t>(shard_weight_[s]);
    if (s + 1 == shards) cum = total_weight;
    const size_t shard_end = begin + (range * cum) / total_weight;
    state->shards[s].next.store(shard_begin, std::memory_order_relaxed);
    state->shards[s].end = shard_end;
    shard_begin = shard_end;
  }

  const size_t helpers = std::min<size_t>(workers_.size(), range - 1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pending_helpers = static_cast<int>(helpers);
  }
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] {
      // Each worker prefers the shard of the node it is pinned to.
      state->Drain(static_cast<size_t>(tls_lane_shard) % state->num_shards);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending_helpers == 0) state->done_cv.notify_all();
    });
  }

  tls_in_pool_task = true;
  state->Drain(static_cast<size_t>(lane_shard_[0]) % shards);
  tls_in_pool_task = false;
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->pending_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

// Starts empty so a SetGlobalThreads before first use doesn't build (and,
// under a pin policy, spawn + pin) a default pool only to discard it.
// Callers hold GlobalPoolMutex() and fill the slot on first use.
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

ThreadPool& LockedGlobalPool() {
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(ClampParallelism(0));
  }
  return *slot;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  return LockedGlobalPool();
}

void SetGlobalThreads(int parallelism) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  // Reset before constructing: the old pool's workers must exit before the
  // replacement pins new ones to the same CPUs.
  GlobalPoolSlot().reset();
  GlobalPoolSlot() =
      std::make_unique<ThreadPool>(ClampParallelism(parallelism));
}

int GlobalThreads() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  return LockedGlobalPool().num_threads();
}

void ApplyThreadsFlag(const Flags& flags) {
  SetGlobalThreads(static_cast<int>(flags.GetInt(kThreadsFlag, 0)));
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  GlobalThreadPool().ParallelFor(begin, end, body);
}

void ParallelForSharded(size_t begin, size_t end,
                        const std::function<void(size_t)>& body) {
  GlobalThreadPool().ParallelForSharded(begin, end, body);
}

}  // namespace deepaqp::util
