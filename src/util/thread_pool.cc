#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "util/flags.h"

namespace deepaqp::util {

namespace {

/// Set while a thread is executing a pool task; nested ParallelFor calls on
/// such a thread run inline instead of re-entering the queue.
thread_local bool tls_in_pool_task = false;

int ClampParallelism(int parallelism) {
  if (parallelism >= 1) return parallelism;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(parallelism < 1 ? 1 : parallelism) {
  workers_.reserve(static_cast<size_t>(parallelism_ - 1));
  for (int i = 0; i < parallelism_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // With no workers (parallelism 1) queued tasks ran inline in Submit, so
  // the queue is already empty here.
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    const bool prev = tls_in_pool_task;
    tls_in_pool_task = true;
    task();
    tls_in_pool_task = prev;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t range = end - begin;
  // Serial fast path: trivial range, no workers, or already inside a pool
  // task (nested region) — run inline with natural exception propagation.
  if (range == 1 || workers_.empty() || tls_in_pool_task) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct ForState {
    std::atomic<size_t> next;
    size_t end = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    int pending_helpers = 0;  // guarded by mu
    std::exception_ptr error;  // guarded by mu
  };
  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->body = &body;

  auto drain = [](ForState& s) {
    for (;;) {
      const size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.end) return;
      try {
        (*s.body)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(s.mu);
          if (!s.error) s.error = std::current_exception();
        }
        // Fast-forward so other lanes stop claiming work.
        s.next.store(s.end, std::memory_order_relaxed);
        return;
      }
    }
  };

  const size_t helpers =
      std::min<size_t>(workers_.size(), range - 1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->pending_helpers = static_cast<int>(helpers);
  }
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] {
      drain(*state);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending_helpers == 0) state->done_cv.notify_all();
    });
  }

  // The caller participates as the last lane; flag it as in-task so nested
  // parallel regions inside body() run inline here too.
  tls_in_pool_task = true;
  drain(*state);
  tls_in_pool_task = false;
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->pending_helpers == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(ClampParallelism(0));
  return pool;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  return *GlobalPoolSlot();
}

void SetGlobalThreads(int parallelism) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  GlobalPoolSlot() =
      std::make_unique<ThreadPool>(ClampParallelism(parallelism));
}

int GlobalThreads() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  return GlobalPoolSlot()->num_threads();
}

void ApplyThreadsFlag(const Flags& flags) {
  SetGlobalThreads(static_cast<int>(flags.GetInt(kThreadsFlag, 0)));
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body) {
  GlobalThreadPool().ParallelFor(begin, end, body);
}

}  // namespace deepaqp::util
