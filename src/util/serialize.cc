#include "util/serialize.h"

#include <cstdio>

#include "util/failpoint.h"

namespace deepaqp::util {

void ByteWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  AppendRaw(s.data(), s.size());
}

void ByteWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU64(v.size());
  AppendRaw(v.data(), v.size() * sizeof(float));
}

void ByteWriter::WriteF32Array(const float* p, size_t n) {
  WriteU64(n);
  AppendRaw(p, n * sizeof(float));
}

void ByteWriter::WriteF64Vector(const std::vector<double>& v) {
  WriteU64(v.size());
  AppendRaw(v.data(), v.size() * sizeof(double));
}

void ByteWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  AppendRaw(v.data(), v.size() * sizeof(int32_t));
}

Status ByteReader::Take(void* out, size_t n) {
  if (pos_ + n > size_) {
    return Status::OutOfRange("ByteReader: truncated buffer");
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> ByteReader::ReadU8() {
  uint8_t v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<uint32_t> ByteReader::ReadU32() {
  uint32_t v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<uint64_t> ByteReader::ReadU64() {
  uint64_t v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<int32_t> ByteReader::ReadI32() {
  int32_t v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<int64_t> ByteReader::ReadI64() {
  int64_t v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<float> ByteReader::ReadF32() {
  float v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}
Result<double> ByteReader::ReadF64() {
  double v = 0;
  DEEPAQP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  // Compare against the remainder (not pos_ + n, which can wrap for a
  // hostile length field).
  if (n > size_ - pos_) {
    return Status::OutOfRange("ByteReader: truncated string");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<float>> ByteReader::ReadF32Vector() {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (size_ - pos_) / sizeof(float)) {
    return Status::OutOfRange("ByteReader: truncated f32 vector");
  }
  std::vector<float> v(n);
  DEEPAQP_RETURN_IF_ERROR(Take(v.data(), n * sizeof(float)));
  return v;
}

Result<std::vector<double>> ByteReader::ReadF64Vector() {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (size_ - pos_) / sizeof(double)) {
    return Status::OutOfRange("ByteReader: truncated f64 vector");
  }
  std::vector<double> v(n);
  DEEPAQP_RETURN_IF_ERROR(Take(v.data(), n * sizeof(double)));
  return v;
}

Result<std::vector<int32_t>> ByteReader::ReadI32Vector() {
  DEEPAQP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (size_ - pos_) / sizeof(int32_t)) {
    return Status::OutOfRange("ByteReader: truncated i32 vector");
  }
  std::vector<int32_t> v(n);
  DEEPAQP_RETURN_IF_ERROR(Take(v.data(), n * sizeof(int32_t)));
  return v;
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t n) {
  if (n > size_ - pos_) {
    return Status::OutOfRange("ByteReader: truncated raw bytes");
  }
  std::vector<uint8_t> v(n);
  DEEPAQP_RETURN_IF_ERROR(Take(v.data(), n));
  return v;
}

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  // Chaos site: simulated full disk / permission flap on persist.
  if (FailpointTriggered("io/write")) return FailpointError("io/write");
  const std::string tmp = path + ".tmp";
  DEEPAQP_RETURN_IF_ERROR(WriteFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("atomic rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  // Chaos site: simulated unreadable file on load.
  if (FailpointTriggered("io/read")) return FailpointError("io/read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return Status::IOError("short read: " + path);
  return bytes;
}

}  // namespace deepaqp::util
