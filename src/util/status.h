#ifndef DEEPAQP_UTIL_STATUS_H_
#define DEEPAQP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace deepaqp::util {

/// Error codes used across the library. Mirrors the conventional
/// database-engine status taxonomy: a small closed set, extended via the
/// message string rather than new codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIOError,
  /// Transient overload or shutdown: the request was shed, not failed —
  /// retrying later (with backoff) is expected to succeed. This is the code
  /// behind the server's SERVER_BUSY / SHUTTING_DOWN rejections.
  kUnavailable,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for fallible operations. The library does not
/// throw exceptions across API boundaries; every operation that can fail
/// returns a `Status` (or `Result<T>` when it also produces a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Modeled after
/// absl::StatusOr but dependency-free.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites `return value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status; `status.ok()` is a caller
  /// bug and is normalized to an Internal error to preserve the invariant
  /// that a status-holding Result is always an error.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Value accessors. Must only be called when `ok()`.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace deepaqp::util

/// Propagates a non-OK status to the caller.
#define DEEPAQP_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::deepaqp::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), returns its status on error, otherwise
/// assigns the value to `lhs`.
#define DEEPAQP_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto DEEPAQP_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!DEEPAQP_CONCAT_(_res_, __LINE__).ok())         \
    return DEEPAQP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DEEPAQP_CONCAT_(_res_, __LINE__)).value()

#define DEEPAQP_CONCAT_INNER_(a, b) a##b
#define DEEPAQP_CONCAT_(a, b) DEEPAQP_CONCAT_INNER_(a, b)

#endif  // DEEPAQP_UTIL_STATUS_H_
