#include "util/crc32.h"

#include <array>

namespace deepaqp::util {

namespace {

/// Lookup table for the reflected IEEE polynomial 0xEDB88320, built once at
/// static-init time (constexpr, so no thread-safety concerns).
constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace deepaqp::util
