#include "util/cpu_features.h"

#include <cstdlib>

#include "util/string_util.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace deepaqp::util {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang resolve these through cpuid at first use; no asm needed.
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.f16c = __builtin_cpu_supports("f16c") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
#if defined(__linux__)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // Advanced SIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
#endif
  const char* disable = std::getenv("DEEPAQP_CPU_DISABLE");
  if (disable != nullptr && disable[0] != '\0') {
    for (const std::string& name : Split(disable, ',')) {
      const std::string token = Trim(name);
      if (token == "avx2") f.avx2 = false;
      if (token == "fma") f.fma = false;
      if (token == "f16c") f.f16c = false;
      if (token == "avx512f") f.avx512f = false;
      if (token == "neon") f.neon = false;
    }
  }
  return f;
}

const CpuFeatures* g_test_override = nullptr;

}  // namespace

const CpuFeatures& CpuInfo() {
  static const CpuFeatures detected = Detect();
  return g_test_override != nullptr ? *g_test_override : detected;
}

void SetCpuFeaturesForTest(const CpuFeatures* features) {
  g_test_override = features;
}

std::string CpuFeaturesToString(const CpuFeatures& features) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ' ';
    out += name;
  };
  if (features.avx2) add("avx2");
  if (features.fma) add("fma");
  if (features.f16c) add("f16c");
  if (features.avx512f) add("avx512f");
  if (features.neon) add("neon");
  return out;
}

}  // namespace deepaqp::util
