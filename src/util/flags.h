#ifndef DEEPAQP_UTIL_FLAGS_H_
#define DEEPAQP_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace deepaqp::util {

/// Canonical name of the global parallelism flag: `--threads=N` sizes the
/// process-wide thread pool (0, the default, means hardware concurrency).
/// Binaries parse it with Flags and apply it via util::ApplyThreadsFlag.
inline constexpr char kThreadsFlag[] = "threads";

/// Minimal command-line flag parser for example/bench binaries. Accepts
/// "--name=value" and "--name value"; unknown flags are collected so callers
/// can reject or ignore them. Not intended as a general-purpose flags
/// library — just enough for reproducible experiment sweeps.
class Flags {
 public:
  /// Parses argv; later occurrences of a flag win.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace deepaqp::util

#endif  // DEEPAQP_UTIL_FLAGS_H_
