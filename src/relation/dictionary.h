#ifndef DEEPAQP_RELATION_DICTIONARY_H_
#define DEEPAQP_RELATION_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace deepaqp::relation {

/// Bidirectional mapping between categorical labels and dense zero-based
/// codes. Codes are assigned in first-seen order, matching the paper's
/// convention of treating Dom(A_j) as zero-indexed positions.
class Dictionary {
 public:
  /// Returns the code for `label`, inserting it if unseen.
  int32_t GetOrAdd(const std::string& label);

  /// Returns the code for `label`, or -1 if absent.
  int32_t Lookup(const std::string& label) const;

  /// Label for `code`. Requires 0 <= code < size().
  const std::string& LabelOf(int32_t code) const;

  int32_t size() const { return static_cast<int32_t>(labels_.size()); }

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace deepaqp::relation

#endif  // DEEPAQP_RELATION_DICTIONARY_H_
