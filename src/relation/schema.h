#ifndef DEEPAQP_RELATION_SCHEMA_H_
#define DEEPAQP_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace deepaqp::relation {

/// Attribute types supported by the engine. Mirrors the paper's setting
/// (Sec. II): relations mix categorical attributes (finite domains indexed
/// by zero-based position) and numeric attributes (reals).
enum class AttrType {
  kCategorical,
  kNumeric,
};

const char* AttrTypeName(AttrType type);

/// One attribute of a relation.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kCategorical;
};

/// Ordered attribute list with name lookup. Immutable once a Table is built
/// on it.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Appends an attribute; names must be unique.
  util::Status AddAttribute(const std::string& name, AttrType type);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  bool IsCategorical(size_t i) const {
    return attributes_[i].type == AttrType::kCategorical;
  }
  bool IsNumeric(size_t i) const {
    return attributes_[i].type == AttrType::kNumeric;
  }

  /// Indices of all categorical (resp. numeric) attributes, in order.
  std::vector<size_t> CategoricalIndices() const;
  std::vector<size_t> NumericIndices() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace deepaqp::relation

#endif  // DEEPAQP_RELATION_SCHEMA_H_
