#include "relation/schema.h"

namespace deepaqp::relation {

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kCategorical:
      return "categorical";
    case AttrType::kNumeric:
      return "numeric";
  }
  return "?";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

util::Status Schema::AddAttribute(const std::string& name, AttrType type) {
  if (IndexOf(name) >= 0) {
    return util::Status::InvalidArgument("duplicate attribute: " + name);
  }
  attributes_.push_back(Attribute{name, type});
  return util::Status::OK();
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<size_t> Schema::CategoricalIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (IsCategorical(i)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::NumericIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (IsNumeric(i)) out.push_back(i);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace deepaqp::relation
