#include "relation/table.h"

#include <algorithm>

#include "util/logging.h"

namespace deepaqp::relation {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  const size_t m = schema_.num_attributes();
  cat_columns_.resize(m);
  num_columns_.resize(m);
  dicts_.resize(m);
  declared_cardinality_.assign(m, 0);
}

void Table::AppendRow(const std::vector<Datum>& row) {
  DEEPAQP_CHECK_EQ(row.size(), schema_.num_attributes());
  for (size_t c = 0; c < row.size(); ++c) {
    if (schema_.IsCategorical(c)) {
      DEEPAQP_CHECK_GE(row[c].cat, 0);
      cat_columns_[c].push_back(row[c].cat);
    } else {
      num_columns_[c].push_back(row[c].num);
    }
  }
  ++num_rows_;
}

int32_t Table::CatCode(size_t row, size_t col) const {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  return cat_columns_[col][row];
}

double Table::NumValue(size_t row, size_t col) const {
  DEEPAQP_CHECK(schema_.IsNumeric(col));
  return num_columns_[col][row];
}

double Table::CellAsDouble(size_t row, size_t col) const {
  if (schema_.IsCategorical(col)) {
    return static_cast<double>(cat_columns_[col][row]);
  }
  return num_columns_[col][row];
}

Dictionary& Table::dict(size_t col) {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  return dicts_[col];
}

const Dictionary& Table::dict(size_t col) const {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  return dicts_[col];
}

int32_t Table::InternLabel(size_t col, const std::string& label) {
  return dict(col).GetOrAdd(label);
}

int32_t Table::Cardinality(size_t col) const {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  int32_t card = std::max(declared_cardinality_[col], dicts_[col].size());
  const auto& codes = cat_columns_[col];
  if (!codes.empty()) {
    const int32_t max_code = *std::max_element(codes.begin(), codes.end());
    card = std::max(card, max_code + 1);
  }
  return card;
}

void Table::DeclareCardinality(size_t col, int32_t cardinality) {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  DEEPAQP_CHECK_GT(cardinality, 0);
  declared_cardinality_[col] = cardinality;
}

std::pair<double, double> Table::NumericRange(size_t col) const {
  DEEPAQP_CHECK(schema_.IsNumeric(col));
  const auto& vals = num_columns_[col];
  if (vals.empty()) return {0.0, 0.0};
  const auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
  return {*mn, *mx};
}

Table Table::Gather(const std::vector<size_t>& rows) const {
  Table out(schema_);
  const size_t m = schema_.num_attributes();
  for (size_t c = 0; c < m; ++c) {
    if (schema_.IsCategorical(c)) {
      out.cat_columns_[c].reserve(rows.size());
      for (size_t r : rows) {
        DEEPAQP_CHECK_LT(r, num_rows_);
        out.cat_columns_[c].push_back(cat_columns_[c][r]);
      }
      out.dicts_[c] = dicts_[c];
      out.declared_cardinality_[c] =
          std::max(declared_cardinality_[c], Cardinality(c));
    } else {
      out.num_columns_[c].reserve(rows.size());
      for (size_t r : rows) {
        out.num_columns_[c].push_back(num_columns_[c][r]);
      }
    }
  }
  out.num_rows_ = rows.size();
  return out;
}

Table Table::SampleRows(size_t k, util::Rng& rng) const {
  DEEPAQP_CHECK_LE(k, num_rows_);
  return Gather(rng.SampleWithoutReplacement(num_rows_, k));
}

void Table::AppendUninitializedRows(size_t n) {
  const size_t new_rows = num_rows_ + n;
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    // FirstTouchVector resize default-initializes: the new cells are
    // allocated but not written, deferring page placement to the writer.
    if (schema_.IsCategorical(c)) {
      cat_columns_[c].resize(new_rows);
    } else {
      num_columns_[c].resize(new_rows);
    }
  }
  num_rows_ = new_rows;
}

void Table::AssignRows(size_t dst_begin, const Table& src) {
  DEEPAQP_CHECK(schema_ == src.schema_);
  DEEPAQP_CHECK_LE(dst_begin + src.num_rows_, num_rows_);
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    if (schema_.IsCategorical(c)) {
      std::copy(src.cat_columns_[c].begin(), src.cat_columns_[c].end(),
                cat_columns_[c].begin() + static_cast<ptrdiff_t>(dst_begin));
    } else {
      std::copy(src.num_columns_[c].begin(), src.num_columns_[c].end(),
                num_columns_[c].begin() + static_cast<ptrdiff_t>(dst_begin));
    }
  }
}

util::Status Table::Append(const Table& other) {
  if (!(schema_ == other.schema_)) {
    return util::Status::InvalidArgument("Table::Append: schema mismatch");
  }
  const size_t m = schema_.num_attributes();
  for (size_t c = 0; c < m; ++c) {
    if (schema_.IsCategorical(c)) {
      // Remap codes through labels when both sides carry dictionaries;
      // otherwise codes are assumed to share the same domain indexing.
      const Dictionary& src = other.dicts_[c];
      if (src.size() > 0 && dicts_[c].size() > 0) {
        for (int32_t code : other.cat_columns_[c]) {
          cat_columns_[c].push_back(dicts_[c].GetOrAdd(src.LabelOf(code)));
        }
      } else {
        cat_columns_[c].insert(cat_columns_[c].end(),
                               other.cat_columns_[c].begin(),
                               other.cat_columns_[c].end());
      }
      declared_cardinality_[c] =
          std::max(declared_cardinality_[c], other.Cardinality(c));
    } else {
      num_columns_[c].insert(num_columns_[c].end(),
                             other.num_columns_[c].begin(),
                             other.num_columns_[c].end());
    }
  }
  num_rows_ += other.num_rows_;
  return util::Status::OK();
}

Table Table::Project(const std::vector<size_t>& attrs) const {
  Schema schema;
  for (size_t a : attrs) {
    DEEPAQP_CHECK_LT(a, schema_.num_attributes());
    DEEPAQP_CHECK(
        schema.AddAttribute(schema_.attribute(a).name,
                            schema_.attribute(a).type)
            .ok());
  }
  Table out(schema);
  for (size_t i = 0; i < attrs.size(); ++i) {
    const size_t a = attrs[i];
    if (schema_.IsCategorical(a)) {
      out.cat_columns_[i] = cat_columns_[a];
      out.dicts_[i] = dicts_[a];
      out.declared_cardinality_[i] = Cardinality(a);
    } else {
      out.num_columns_[i] = num_columns_[a];
    }
  }
  out.num_rows_ = num_rows_;
  return out;
}

const CatVector& Table::CatColumn(size_t col) const {
  DEEPAQP_CHECK(schema_.IsCategorical(col));
  return cat_columns_[col];
}

const NumVector& Table::NumColumn(size_t col) const {
  DEEPAQP_CHECK(schema_.IsNumeric(col));
  return num_columns_[col];
}

}  // namespace deepaqp::relation
