#ifndef DEEPAQP_RELATION_TABLE_H_
#define DEEPAQP_RELATION_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/aligned_buffer.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::relation {

/// Column storage: aligned, huge-page-hinted, and — crucially for NUMA
/// placement — first-touch-deferred, so appending uninitialized rows and
/// filling them from pinned workers (AssignRows under ParallelForSharded)
/// leaves each shard of a big table on the node that scans it.
using CatVector = nn::FirstTouchVector<int32_t>;
using NumVector = nn::FirstTouchVector<double>;

/// One cell value: a categorical code or a numeric value, tagged by the
/// column's schema type (the struct itself is passive; readers consult the
/// schema to know which member is meaningful).
struct Datum {
  int32_t cat = 0;
  double num = 0.0;

  static Datum Categorical(int32_t code) { return Datum{code, 0.0}; }
  static Datum Numeric(double value) { return Datum{0, value}; }
};

/// In-memory columnar relation. Categorical columns hold dense int32 codes
/// (optionally backed by a label Dictionary); numeric columns hold doubles.
/// This is the substrate every other module operates on: generators fill it,
/// encoders read it, the AQP executor scans it, and model samplers emit
/// synthetic Tables with the same schema.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends one row; `row` must have one Datum per attribute. Categorical
  /// codes must be non-negative.
  void AppendRow(const std::vector<Datum>& row);

  /// Cell accessors. Column type must match the schema.
  int32_t CatCode(size_t row, size_t col) const;
  double NumValue(size_t row, size_t col) const;

  /// Uniform cell accessor: categorical codes are returned as doubles so
  /// predicates can compare either type against a constant.
  double CellAsDouble(size_t row, size_t col) const;

  /// Mutable dictionary of a categorical column (labels are optional; tables
  /// built from generators may use bare codes).
  Dictionary& dict(size_t col);
  const Dictionary& dict(size_t col) const;

  /// Registers `label` in column `col`'s dictionary and returns its code.
  int32_t InternLabel(size_t col, const std::string& label);

  /// Number of distinct codes that may appear in categorical column `col`:
  /// max over (declared cardinality, observed max code + 1, dictionary size).
  int32_t Cardinality(size_t col) const;

  /// Declares the domain size of a categorical column up front (e.g., the
  /// generator knows the domain even if not all values appear).
  void DeclareCardinality(size_t col, int32_t cardinality);

  /// Observed [min, max] of numeric column `col`; {0, 0} when empty.
  std::pair<double, double> NumericRange(size_t col) const;

  /// Returns a new table with the given rows (in order, duplicates allowed).
  Table Gather(const std::vector<size_t>& rows) const;

  /// Uniform random sample of `k` rows without replacement (k <= num_rows).
  Table SampleRows(size_t k, util::Rng& rng) const;

  /// Appends all rows of `other`; schemas must match.
  util::Status Append(const Table& other);

  /// Appends `n` rows whose cells are *uninitialized* (indeterminate until
  /// overwritten). The new slots are allocated but not written, so the
  /// first touch — and with it the NUMA page placement — happens on
  /// whichever thread later fills each slice via AssignRows. Callers must
  /// fully overwrite the new rows before any read.
  void AppendUninitializedRows(size_t n);

  /// Overwrites rows [dst_begin, dst_begin + src.num_rows()) with the rows
  /// of `src`. Schemas must match and both tables must index categorical
  /// codes in the same domain (e.g. copies of one empty prototype table, as
  /// the chunked sample generator produces) — codes are copied verbatim,
  /// without the dictionary remap Append performs. Destination rows must
  /// already exist. Safe to call concurrently for disjoint destination
  /// ranges: only column cells in the range are written.
  void AssignRows(size_t dst_begin, const Table& src);

  /// Returns a new table containing only the given attributes (in the given
  /// order), with all rows. Dictionaries and declared cardinalities are
  /// carried over.
  Table Project(const std::vector<size_t>& attrs) const;

  /// Direct column access for hot paths (encoders, executors).
  const CatVector& CatColumn(size_t col) const;
  const NumVector& NumColumn(size_t col) const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  // Parallel arrays, one entry per attribute; only the one matching the
  // schema type is populated.
  std::vector<CatVector> cat_columns_;
  std::vector<NumVector> num_columns_;
  std::vector<Dictionary> dicts_;
  std::vector<int32_t> declared_cardinality_;
};

}  // namespace deepaqp::relation

#endif  // DEEPAQP_RELATION_TABLE_H_
