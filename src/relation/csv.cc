#include "relation/csv.h"

#include <cstdio>

#include "util/string_util.h"

namespace deepaqp::relation {

util::Status WriteCsv(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IOError("cannot open for write: " + path);
  }
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    std::fprintf(f, "%s%s", c == 0 ? "" : ",",
                 schema.attribute(c).name.c_str());
  }
  std::fprintf(f, "\n");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) std::fputc(',', f);
      if (schema.IsCategorical(c)) {
        const int32_t code = table.CatCode(r, c);
        if (code < table.dict(c).size()) {
          std::fputs(table.dict(c).LabelOf(code).c_str(), f);
        } else {
          std::fprintf(f, "%d", code);
        }
      } else {
        std::fprintf(f, "%.10g", table.NumValue(r, c));
      }
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return util::Status::OK();
}

util::Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::IOError("cannot open for read: " + path);
  }
  Table table(schema);
  std::string line;
  char buf[1 << 16];
  bool header = true;
  size_t line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    line = util::Trim(buf);
    if (line.empty()) continue;
    if (header) {
      header = false;
      const auto names = util::Split(line, ',');
      if (names.size() != schema.num_attributes()) {
        std::fclose(f);
        return util::Status::InvalidArgument(
            "CSV header has " + std::to_string(names.size()) +
            " columns, schema expects " +
            std::to_string(schema.num_attributes()));
      }
      continue;
    }
    const auto fields = util::Split(line, ',');
    if (fields.size() != schema.num_attributes()) {
      std::fclose(f);
      return util::Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + ": wrong field count");
    }
    std::vector<Datum> row(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      if (schema.IsCategorical(c)) {
        row[c] = Datum::Categorical(table.InternLabel(c, fields[c]));
      } else {
        double v = 0.0;
        if (!util::ParseDouble(fields[c], &v)) {
          std::fclose(f);
          return util::Status::InvalidArgument(
              "CSV line " + std::to_string(line_no) + ": bad numeric field '" +
              fields[c] + "'");
        }
        row[c] = Datum::Numeric(v);
      }
    }
    table.AppendRow(row);
  }
  std::fclose(f);
  return table;
}

}  // namespace deepaqp::relation
