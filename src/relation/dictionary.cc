#include "relation/dictionary.h"

#include "util/logging.h"

namespace deepaqp::relation {

int32_t Dictionary::GetOrAdd(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  const int32_t code = size();
  labels_.push_back(label);
  index_.emplace(label, code);
  return code;
}

int32_t Dictionary::Lookup(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::LabelOf(int32_t code) const {
  DEEPAQP_CHECK_GE(code, 0);
  DEEPAQP_CHECK_LT(code, size());
  return labels_[static_cast<size_t>(code)];
}

}  // namespace deepaqp::relation
