#ifndef DEEPAQP_RELATION_CSV_H_
#define DEEPAQP_RELATION_CSV_H_

#include <string>

#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::relation {

/// Writes `table` as CSV with a header row. Categorical cells emit their
/// dictionary label when present, else the bare code.
util::Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV with a header row into a Table with the given schema (column
/// order must match the header). Categorical labels are interned; numeric
/// fields must parse as doubles.
util::Result<Table> ReadCsv(const std::string& path, const Schema& schema);

}  // namespace deepaqp::relation

#endif  // DEEPAQP_RELATION_CSV_H_
