#ifndef DEEPAQP_VAE_CLIENT_H_
#define DEEPAQP_VAE_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aqp/engine.h"
#include "aqp/query.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"
#include "vae/vae_model.h"
#include "vae/workflow.h"

namespace deepaqp::vae {

/// The client-side facade of the paper's deployment story: constructed from
/// serialized model bytes (no data access), it keeps a cached pool of
/// synthetic samples and answers SQL-text or AST queries with confidence
/// intervals. Precision-on-demand: ask for a tighter interval and the
/// client grows the pool instead of contacting any server. Pool generation
/// runs on the global thread pool (util::SetGlobalThreads / --threads) and
/// is deterministic in `seed` regardless of the thread count.
///
/// The pool is append-only, so under the vector engine the client keeps a
/// per-predicate selection bitmap and per-query dense group moments: a
/// repeated query re-aggregates nothing, and after precision-on-demand
/// growth only the newly generated suffix rows are filtered and folded in.
/// Because suffix rows fold into the running moments in row order, a warm
/// cache returns results bit-identical to a cold scan of the same pool
/// (and to the `DEEPAQP_ENGINE=scalar` path). With the scalar engine the
/// cache is bypassed entirely.
class AqpClient {
 public:
  struct Options {
    /// Rows in the initial sample pool.
    size_t initial_samples = 2000;
    /// Hard cap on pool growth (WithMaxRelativeCi stops here).
    size_t max_samples = 200000;
    /// Population size COUNT/SUM estimates scale to (the original
    /// relation's row count, shipped alongside the model).
    size_t population_rows = 1000000;
    /// Rejection threshold; NaN means the model's calibrated default.
    double t = std::numeric_limits<double>::quiet_NaN();
    uint64_t seed = 2027;
  };

  /// Builds a client from serialized model bytes.
  static util::Result<std::unique_ptr<AqpClient>> Open(
      const std::vector<uint8_t>& model_bytes, const Options& options);

  /// Wraps an already-loaded model (takes ownership).
  static std::unique_ptr<AqpClient> Wrap(
      std::unique_ptr<VaeAqpModel> model, const Options& options);

  /// Shares an already-loaded read-only model (server sessions: the model
  /// registry hands every session the same refcounted snapshot; Generate is
  /// const and self-contained, so concurrent sessions need no locking).
  static std::unique_ptr<AqpClient> Share(
      std::shared_ptr<const VaeAqpModel> model, const Options& options);

  /// Replaces the model (hot swap on a registry version bump). The sample
  /// pool and every cached bitmap / group-moment entry were computed from
  /// the old generator, so both are discarded and the client is re-seeded
  /// from options.seed: after SwapModel the client is bit-identical to a
  /// fresh client opened on `model` with the same options. Counts into
  /// cache_stats().invalidations.
  void SwapModel(std::shared_ptr<const VaeAqpModel> model);

  /// Answers a SQL-text query (see aqp::ParseSql for the dialect).
  util::Result<aqp::QueryResult> Query(const std::string& sql);

  /// Answers an already-built query AST.
  util::Result<aqp::QueryResult> Query(const aqp::AggregateQuery& query);

  /// Answers, growing the sample pool (up to options.max_samples) until
  /// every group's CI half-width is within `max_relative_ci` of its value.
  util::Result<aqp::QueryResult> QueryWithMaxRelativeCi(
      const aqp::AggregateQuery& query, double max_relative_ci);

  /// One precision-on-demand refinement step — the resumable core of
  /// QueryWithMaxRelativeCi, exposed so a server can stream every
  /// intermediate estimate instead of only the final one. Answers `query`
  /// on the current pool; when some group's relative CI still exceeds
  /// `max_relative_ci` and the pool can grow, doubles the pool so the next
  /// call refines further and sets *final = false; otherwise *final = true.
  /// Calling QueryRefineStep until *final yields exactly the
  /// QueryWithMaxRelativeCi trajectory (same pool growth, same answers).
  util::Result<aqp::QueryResult> QueryRefineStep(
      const aqp::AggregateQuery& query, double max_relative_ci, bool* final);

  /// Observability of the query cache (tests, benches). Counters are
  /// cumulative over the client's lifetime.
  struct CacheStats {
    /// Distinct predicate bitmaps / aggregation states held.
    size_t filter_entries = 0;
    size_t agg_entries = 0;
    /// Rows pushed through the selection kernels / aggregation pass. With a
    /// warm cache these advance by exactly the pool growth per query, not
    /// by the full pool size.
    uint64_t rows_filtered = 0;
    uint64_t rows_aggregated = 0;
    /// Full cache resets forced by SwapModel (stale bitmaps/moments from a
    /// previous model version must never answer queries on the new one).
    uint64_t invalidations = 0;
  };

  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Current pool size (grows monotonically).
  size_t pool_size() const { return pool_.num_rows(); }

  /// The pool itself (e.g., to hand to visualization code).
  const relation::Table& pool() const { return pool_; }

  const VaeAqpModel& model() const { return *model_; }

  /// Registers an Algorithm 1 outcome with the client. A non-passed outcome
  /// (budget exhausted or degraded) records a warning and widens every
  /// subsequent confidence interval by a fixed inflation factor — the model
  /// serves best-effort answers instead of silently presenting unvalidated
  /// estimates at face value. A passed outcome clears the inflation.
  void NoteBiasElimination(const BiasEliminationResult& result);

  /// Multiplier currently applied to every CI half-width (1.0 = none).
  double ci_inflation() const { return ci_inflation_; }

  /// Accumulated robustness warnings (bias-elimination degradations etc.).
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Cached selection bitmap of one predicate over the pool prefix
  /// [0, rows_seen); growth appends bits for the new suffix only.
  struct FilterCacheEntry {
    size_t rows_seen = 0;
    aqp::SelectionVector sel;
  };

  /// Cached dense group moments of one (agg, measure, group-by, predicate)
  /// shape over the pool prefix [0, rows_seen). The quantile level is not
  /// part of the key: it only enters at finalization, so QUANTILE(0.5) and
  /// QUANTILE(0.9) share one accumulation.
  struct AggCacheEntry {
    size_t rows_seen = 0;
    aqp::DenseGroupMoments acc;
  };

  AqpClient(std::shared_ptr<const VaeAqpModel> model, const Options& options);

  void GrowPool(size_t target_rows);

  /// The vector-engine fast path behind Query(): suffix-incremental bitmap
  /// + moments lookup, then the shared FinalizeEstimate.
  util::Result<aqp::QueryResult> QueryCached(const aqp::AggregateQuery& query);

  Options options_;
  std::shared_ptr<const VaeAqpModel> model_;
  double t_;
  util::Rng rng_;
  relation::Table pool_;
  std::map<std::string, FilterCacheEntry> filter_cache_;
  std::map<std::string, AggCacheEntry> agg_cache_;
  CacheStats cache_stats_;
  double ci_inflation_ = 1.0;
  std::vector<std::string> warnings_;
};

}  // namespace deepaqp::vae

#endif  // DEEPAQP_VAE_CLIENT_H_
