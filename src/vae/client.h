#ifndef DEEPAQP_VAE_CLIENT_H_
#define DEEPAQP_VAE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "aqp/query.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"
#include "vae/vae_model.h"

namespace deepaqp::vae {

/// The client-side facade of the paper's deployment story: constructed from
/// serialized model bytes (no data access), it keeps a cached pool of
/// synthetic samples and answers SQL-text or AST queries with confidence
/// intervals. Precision-on-demand: ask for a tighter interval and the
/// client grows the pool instead of contacting any server. Pool generation
/// runs on the global thread pool (util::SetGlobalThreads / --threads) and
/// is deterministic in `seed` regardless of the thread count.
class AqpClient {
 public:
  struct Options {
    /// Rows in the initial sample pool.
    size_t initial_samples = 2000;
    /// Hard cap on pool growth (WithMaxRelativeCi stops here).
    size_t max_samples = 200000;
    /// Population size COUNT/SUM estimates scale to (the original
    /// relation's row count, shipped alongside the model).
    size_t population_rows = 1000000;
    /// Rejection threshold; NaN means the model's calibrated default.
    double t = std::numeric_limits<double>::quiet_NaN();
    uint64_t seed = 2027;
  };

  /// Builds a client from serialized model bytes.
  static util::Result<std::unique_ptr<AqpClient>> Open(
      const std::vector<uint8_t>& model_bytes, const Options& options);

  /// Wraps an already-loaded model (takes ownership).
  static std::unique_ptr<AqpClient> Wrap(
      std::unique_ptr<VaeAqpModel> model, const Options& options);

  /// Answers a SQL-text query (see aqp::ParseSql for the dialect).
  util::Result<aqp::QueryResult> Query(const std::string& sql);

  /// Answers an already-built query AST.
  util::Result<aqp::QueryResult> Query(const aqp::AggregateQuery& query);

  /// Answers, growing the sample pool (up to options.max_samples) until
  /// every group's CI half-width is within `max_relative_ci` of its value.
  util::Result<aqp::QueryResult> QueryWithMaxRelativeCi(
      const aqp::AggregateQuery& query, double max_relative_ci);

  /// Current pool size (grows monotonically).
  size_t pool_size() const { return pool_.num_rows(); }

  /// The pool itself (e.g., to hand to visualization code).
  const relation::Table& pool() const { return pool_; }

  VaeAqpModel& model() { return *model_; }

 private:
  AqpClient(std::unique_ptr<VaeAqpModel> model, const Options& options);

  void GrowPool(size_t target_rows);

  Options options_;
  std::unique_ptr<VaeAqpModel> model_;
  double t_;
  util::Rng rng_;
  relation::Table pool_;
};

}  // namespace deepaqp::vae

#endif  // DEEPAQP_VAE_CLIENT_H_
