#include "vae/client.h"

#include <algorithm>
#include <cmath>

#include "aqp/estimator.h"
#include "aqp/sql_parser.h"
#include "util/logging.h"

namespace deepaqp::vae {

AqpClient::AqpClient(std::unique_ptr<VaeAqpModel> model,
                     const Options& options)
    : options_(options),
      model_(std::move(model)),
      t_(std::isnan(options.t) ? model_->default_t() : options.t),
      rng_(options.seed),
      pool_(model_->tuple_encoder().schema()) {
  GrowPool(options_.initial_samples);
}

util::Result<std::unique_ptr<AqpClient>> AqpClient::Open(
    const std::vector<uint8_t>& model_bytes, const Options& options) {
  DEEPAQP_ASSIGN_OR_RETURN(auto model,
                           VaeAqpModel::Deserialize(model_bytes));
  return std::unique_ptr<AqpClient>(
      new AqpClient(std::move(model), options));
}

std::unique_ptr<AqpClient> AqpClient::Wrap(
    std::unique_ptr<VaeAqpModel> model, const Options& options) {
  return std::unique_ptr<AqpClient>(
      new AqpClient(std::move(model), options));
}

void AqpClient::GrowPool(size_t target_rows) {
  target_rows = std::min(target_rows, options_.max_samples);
  if (pool_.num_rows() >= target_rows) return;
  // Generate() fans the request out across the global thread pool in
  // fixed-size chunks seeded from rng_ via child streams, so the pool
  // contents depend only on options_.seed — not on the thread count.
  relation::Table extra =
      model_->Generate(target_rows - pool_.num_rows(), t_, rng_);
  if (pool_.num_rows() == 0) {
    pool_ = std::move(extra);
  } else {
    DEEPAQP_CHECK(pool_.Append(extra).ok());
  }
}

util::Result<aqp::QueryResult> AqpClient::Query(const std::string& sql) {
  DEEPAQP_ASSIGN_OR_RETURN(aqp::AggregateQuery query,
                           aqp::ParseSql(sql, pool_));
  return Query(query);
}

util::Result<aqp::QueryResult> AqpClient::Query(
    const aqp::AggregateQuery& query) {
  return aqp::EstimateFromSample(query, pool_, options_.population_rows);
}

util::Result<aqp::QueryResult> AqpClient::QueryWithMaxRelativeCi(
    const aqp::AggregateQuery& query, double max_relative_ci) {
  for (;;) {
    DEEPAQP_ASSIGN_OR_RETURN(aqp::QueryResult result, Query(query));
    bool tight = true;
    for (const auto& g : result.groups) {
      const double denom = std::abs(g.value);
      const double rel = denom > 0 ? g.ci_half_width / denom
                                   : g.ci_half_width;
      if (rel > max_relative_ci) {
        tight = false;
        break;
      }
    }
    if (tight || pool_.num_rows() >= options_.max_samples) return result;
    GrowPool(pool_.num_rows() * 2);
  }
}

}  // namespace deepaqp::vae
