#include "vae/client.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/sql_parser.h"
#include "util/logging.h"

namespace deepaqp::vae {

namespace {

/// Exact textual key of a filter predicate. Constants are rendered as the
/// bit pattern of the double, so two conditions collide only if they are
/// bit-identical.
std::string PredicateKey(const aqp::Predicate& pred) {
  std::string key = pred.conjunctive ? "&" : "|";
  char buf[64];
  for (const aqp::Condition& c : pred.conditions) {
    uint64_t bits = 0;
    std::memcpy(&bits, &c.value, sizeof(bits));
    std::snprintf(buf, sizeof(buf), ";%zu,%d,%016llx", c.attr,
                  static_cast<int>(c.op),
                  static_cast<unsigned long long>(bits));
    key += buf;
  }
  return key;
}

/// Key of a query's accumulation state: everything that shapes the dense
/// moments except the quantile level (which only enters at finalization).
std::string AggKey(const aqp::AggregateQuery& query) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d/%d/%d:", static_cast<int>(query.agg),
                query.measure_attr, query.group_by_attr);
  return buf + PredicateKey(query.filter);
}

/// Resolves the client's rejection threshold. NaN in `requested` means "use
/// the model's calibrated default" — but a NaN *default* (corrupt snapshot,
/// calibration gone wrong upstream of the accept-all fallback) must not
/// become the threshold: every acceptance test would silently misbehave.
/// +/-inf are legitimate sentinels and pass through.
double ResolveThreshold(double requested, double default_t) {
  const double t = std::isnan(requested) ? default_t : requested;
  if (std::isnan(t)) {
    DEEPAQP_LOG(Warning) << "model default_t is NaN; falling back to "
                            "accept-all generation (t = +inf)";
    return kTPlusInf;
  }
  return t;
}

}  // namespace

AqpClient::AqpClient(std::shared_ptr<const VaeAqpModel> model,
                     const Options& options)
    : options_(options),
      model_(std::move(model)),
      t_(ResolveThreshold(options.t, model_->default_t())),
      rng_(options.seed),
      pool_(model_->tuple_encoder().schema()) {
  GrowPool(options_.initial_samples);
}

util::Result<std::unique_ptr<AqpClient>> AqpClient::Open(
    const std::vector<uint8_t>& model_bytes, const Options& options) {
  DEEPAQP_ASSIGN_OR_RETURN(auto model,
                           VaeAqpModel::Deserialize(model_bytes));
  return std::unique_ptr<AqpClient>(
      new AqpClient(std::move(model), options));
}

std::unique_ptr<AqpClient> AqpClient::Wrap(
    std::unique_ptr<VaeAqpModel> model, const Options& options) {
  return std::unique_ptr<AqpClient>(
      new AqpClient(std::move(model), options));
}

std::unique_ptr<AqpClient> AqpClient::Share(
    std::shared_ptr<const VaeAqpModel> model, const Options& options) {
  return std::unique_ptr<AqpClient>(
      new AqpClient(std::move(model), options));
}

void AqpClient::SwapModel(std::shared_ptr<const VaeAqpModel> model) {
  model_ = std::move(model);
  t_ = ResolveThreshold(options_.t, model_->default_t());
  // Everything derived from the old generator is stale: pool rows, cached
  // predicate bitmaps, cached group moments. Rebuild from scratch exactly as
  // a fresh client would so swapped and newly opened clients are
  // bit-identical (the contract server_session_test pins down).
  rng_ = util::Rng(options_.seed);
  pool_ = relation::Table(model_->tuple_encoder().schema());
  filter_cache_.clear();
  agg_cache_.clear();
  cache_stats_.filter_entries = 0;
  cache_stats_.agg_entries = 0;
  ++cache_stats_.invalidations;
  GrowPool(options_.initial_samples);
}

void AqpClient::GrowPool(size_t target_rows) {
  target_rows = std::min(target_rows, options_.max_samples);
  if (pool_.num_rows() >= target_rows) return;
  // Generate() fans the request out across the global thread pool in
  // fixed-size chunks seeded from rng_ via child streams, so the pool
  // contents depend only on options_.seed — not on the thread count.
  relation::Table extra =
      model_->Generate(target_rows - pool_.num_rows(), t_, rng_);
  if (pool_.num_rows() == 0) {
    pool_ = std::move(extra);
  } else {
    DEEPAQP_CHECK(pool_.Append(extra).ok());
  }
}

util::Result<aqp::QueryResult> AqpClient::Query(const std::string& sql) {
  DEEPAQP_ASSIGN_OR_RETURN(aqp::AggregateQuery query,
                           aqp::ParseSql(sql, pool_));
  return Query(query);
}

util::Result<aqp::QueryResult> AqpClient::Query(
    const aqp::AggregateQuery& query) {
  util::Result<aqp::QueryResult> result =
      aqp::ActiveEngine() != aqp::EngineKind::kVector
          // Scalar escape hatch: plain full scans, no cache.
          ? aqp::EstimateFromSample(query, pool_, options_.population_rows)
          : QueryCached(query);
  // Bias-elimination widening: estimates are unchanged (bit-identical to a
  // healthy client), only their stated uncertainty grows.
  if (result.ok() && ci_inflation_ != 1.0) {
    for (auto& g : result->groups) g.ci_half_width *= ci_inflation_;
  }
  return result;
}

void AqpClient::NoteBiasElimination(const BiasEliminationResult& result) {
  if (result.outcome == BiasEliminationOutcome::kPassed) {
    ci_inflation_ = 1.0;
    return;
  }
  // The model never validated against the data: serve best-effort answers
  // with visibly widened confidence intervals instead of failing or, worse,
  // quietly pretending full confidence.
  constexpr double kUnvalidatedCiInflation = 1.5;
  ci_inflation_ = kUnvalidatedCiInflation;
  std::string why =
      result.outcome == BiasEliminationOutcome::kDegraded
          ? "bias elimination degraded"
          : "bias elimination budget exhausted";
  why += " (final_t=" + std::to_string(result.final_t) + ", " +
         std::to_string(result.iterations) + " iterations)";
  for (const std::string& w : result.warnings) why += "; " + w;
  why += "; confidence intervals widened by " +
         std::to_string(kUnvalidatedCiInflation) + "x";
  warnings_.push_back(why);
  DEEPAQP_LOG(Warning) << "AqpClient: " << why;
}

util::Result<aqp::QueryResult> AqpClient::QueryCached(
    const aqp::AggregateQuery& query) {
  DEEPAQP_RETURN_IF_ERROR(aqp::ValidateQuery(query, pool_));
  const size_t n = pool_.num_rows();
  if (n == 0) {
    return util::Status::FailedPrecondition("empty sample");
  }
  const bool group_by = query.IsGroupBy();
  const bool quantile = query.agg == aqp::AggFunc::kQuantile;

  // Extend the predicate's bitmap over rows appended since its last use.
  FilterCacheEntry& filter = filter_cache_[PredicateKey(query.filter)];
  if (filter.rows_seen < n) {
    aqp::EvalPredicate(query.filter, pool_, filter.rows_seen, n, &filter.sel);
    cache_stats_.rows_filtered += n - filter.rows_seen;
    filter.rows_seen = n;
  }

  // Fold the same suffix into the query's dense group moments. New group
  // codes can appear in generated suffix rows, so re-span the cardinality
  // before accumulating.
  AggCacheEntry& agg = agg_cache_[AggKey(query)];
  if (agg.rows_seen < n) {
    const size_t groups =
        group_by ? static_cast<size_t>(pool_.Cardinality(
                       static_cast<size_t>(query.group_by_attr)))
                 : 1;
    agg.acc.EnsureGroups(std::max<size_t>(groups, 1), quantile);
    aqp::AccumulateSelected(query, pool_, filter.sel, agg.rows_seen, n,
                            &agg.acc);
    cache_stats_.rows_aggregated += n - agg.rows_seen;
    agg.rows_seen = n;
  }
  cache_stats_.filter_entries = filter_cache_.size();
  cache_stats_.agg_entries = agg_cache_.size();

  return aqp::FinalizeEstimate(query, aqp::ToGroupMoments(agg.acc, group_by),
                               n, options_.population_rows);
}

util::Result<aqp::QueryResult> AqpClient::QueryRefineStep(
    const aqp::AggregateQuery& query, double max_relative_ci, bool* final) {
  DEEPAQP_ASSIGN_OR_RETURN(aqp::QueryResult result, Query(query));
  bool tight = true;
  for (const auto& g : result.groups) {
    const double denom = std::abs(g.value);
    const double rel = denom > 0 ? g.ci_half_width / denom
                                 : g.ci_half_width;
    if (rel > max_relative_ci) {
      tight = false;
      break;
    }
  }
  if (tight || pool_.num_rows() >= options_.max_samples) {
    *final = true;
    return result;
  }
  *final = false;
  GrowPool(pool_.num_rows() * 2);
  return result;
}

util::Result<aqp::QueryResult> AqpClient::QueryWithMaxRelativeCi(
    const aqp::AggregateQuery& query, double max_relative_ci) {
  for (;;) {
    bool final = false;
    DEEPAQP_ASSIGN_OR_RETURN(aqp::QueryResult result,
                             QueryRefineStep(query, max_relative_ci, &final));
    if (final) return result;
  }
}

}  // namespace deepaqp::vae
