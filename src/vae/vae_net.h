#ifndef DEEPAQP_VAE_VAE_NET_H_
#define DEEPAQP_VAE_VAE_NET_H_

#include <memory>
#include <vector>

#include "nn/kernels_quant.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace deepaqp::vae {

/// Architecture hyperparameters of the VAE (paper Sec. VI-A: 2-layer
/// encoder/decoder, Normal latent, Bernoulli outputs; Figs. 4-5 sweep
/// latent_dim and depth).
struct VaeNetOptions {
  size_t input_dim = 0;
  size_t latent_dim = 0;
  size_t hidden_dim = 64;
  int depth = 2;
  uint64_t seed = 1;
};

/// Per-batch training controls. With `use_vrs`, latent draws are rejection-
/// sampled against per-tuple thresholds T(x) (variational rejection
/// sampling, Grover et al. [22] as adapted in Sec. IV-B): a draw z from
/// q(z|x) is accepted with probability min(1, e^{T(x)} p(x,z)/q(z|x)). Up to
/// `max_rounds` redraw rounds; rows still unaccepted keep their last draw.
/// Gradients use the plain reparameterization estimator on the accepted
/// draws (a documented simplification of [22]'s estimator).
struct TrainStepOptions {
  bool use_vrs = false;
  /// Per-row thresholds T(x); must have one entry per batch row when
  /// use_vrs is true.
  const std::vector<float>* row_t = nullptr;
  int max_rounds = 3;
};

/// One training step's diagnostics.
struct StepStats {
  double recon_loss = 0.0;  // mean BCE reconstruction term
  double kl = 0.0;          // mean KL(q(z|x) || N(0,I))
  /// Fraction of latent draws accepted across VRS rounds (1.0 without VRS).
  double acceptance = 1.0;
  /// Log-ratio r(z) = log p(x,z) - log q(z|x) per batch row (last draw),
  /// used by the caller to maintain per-tuple T(x) estimates.
  std::vector<float> log_ratio;
};

/// The variational autoencoder network: encoder trunk -> (mu, logvar)
/// heads, Gaussian latent with reparameterization, decoder trunk -> logits
/// interpreted as independent Bernoulli parameters over the encoded tuple
/// bits. Not thread-safe (layers cache per-batch state).
class VaeNet {
 public:
  explicit VaeNet(const VaeNetOptions& options);

  size_t input_dim() const { return options_.input_dim; }
  size_t latent_dim() const { return options_.latent_dim; }

  /// Variational posterior parameters for a batch.
  struct Posterior {
    nn::Matrix mu;
    nn::Matrix logvar;
  };
  Posterior Encode(const nn::Matrix& x);

  /// Const counterpart of Encode for concurrent inference on a shared,
  /// read-only net: same operations in the same order (bit-identical
  /// output), but no per-batch layer caches are written, so any number of
  /// threads may call it simultaneously. Cannot be followed by Backward.
  Posterior EncodeConst(const nn::Matrix& x) const;

  /// Allocation-free EncodeConst: posterior matrices and every intermediate
  /// come from caller-owned storage (`post` is resized; scratch is drawn
  /// from `arena`). Bit-identical to EncodeConst; lets generation loops
  /// reuse one Posterior across batches.
  void EncodeConstInto(const nn::Matrix& x, Posterior* post,
                       nn::ScratchArena* arena) const;

  /// Decoder forward: latent batch -> Bernoulli logits over encoded bits.
  nn::Matrix DecodeLogits(const nn::Matrix& z);

  /// Const, cache-free decoder forward (see EncodeConst).
  nn::Matrix DecodeLogitsConst(const nn::Matrix& z) const;

  /// Allocation-free DecodeLogitsConst (see EncodeConstInto).
  void DecodeLogitsConstInto(const nn::Matrix& z, nn::Matrix* logits,
                             nn::ScratchArena* arena) const;

  /// Runs one optimizer step on batch `x` (encoded tuples in [0,1]) and
  /// returns diagnostics. `opt` must have been built over Parameters().
  StepStats TrainStep(const nn::Matrix& x, nn::Optimizer& opt,
                      util::Rng& rng, const TrainStepOptions& step);

  /// Single-sample Monte-Carlo ELBO *loss* (recon BCE + KL, lower is
  /// better — the minimization convention the paper's partitioning
  /// objective uses).
  double ElboLoss(const nn::Matrix& x, util::Rng& rng);

  /// Resampled ELBO loss (Sec. V-B): latent draws are rejection-sampled from
  /// q(z|x) with global threshold `t` (up to `max_rounds` rounds) before the
  /// bound is evaluated. Lower is better; R-ELBO at t=+inf equals ElboLoss
  /// in expectation.
  double RElboLoss(const nn::Matrix& x, double t, util::Rng& rng,
                   int max_rounds = 3);

  /// Row-wise log p(x|z) + log p(z) for given x bits and latents.
  nn::Matrix LogJointRows(const nn::Matrix& x_bits, const nn::Matrix& z);

  /// Const, cache-free variant of LogJointRows (see EncodeConst).
  nn::Matrix LogJointRowsConst(const nn::Matrix& x_bits,
                               const nn::Matrix& z) const;

  /// Row-wise log q(z|x) for a posterior previously computed on x.
  static nn::Matrix LogPosteriorRows(const Posterior& post,
                                     const nn::Matrix& z);

  /// Log-ratio rows r = log p(x,z) - log q(z|x) used by all VRS decisions.
  nn::Matrix LogRatioRows(const nn::Matrix& x_bits, const Posterior& post,
                          const nn::Matrix& z);

  /// Const, cache-free variant of LogRatioRows (see EncodeConst).
  nn::Matrix LogRatioRowsConst(const nn::Matrix& x_bits,
                               const Posterior& post,
                               const nn::Matrix& z) const;

  /// Allocation-free LogRatioRowsConst: the decoder logits (the one large
  /// intermediate) come from `arena`; the n x 1 result is written to `out`.
  void LogRatioRowsConstInto(const nn::Matrix& x_bits, const Posterior& post,
                             const nn::Matrix& z, nn::Matrix* out,
                             nn::ScratchArena* arena) const;

  /// Draws z ~ N(0, I) (the generative prior).
  nn::Matrix SamplePrior(size_t n, util::Rng& rng) const;

  /// SamplePrior into a reused buffer; consumes the same RNG stream.
  void SamplePriorInto(size_t n, util::Rng& rng, nn::Matrix* z) const;

  /// Reparameterized posterior draw z = mu + exp(logvar/2) * eps.
  static nn::Matrix Reparameterize(const Posterior& post,
                                   const nn::Matrix& eps);

  /// Reparameterize into a reused buffer (identical arithmetic).
  static void ReparameterizeInto(const Posterior& post, const nn::Matrix& eps,
                                 nn::Matrix* z);

  std::vector<nn::Parameter*> Parameters();

  /// Number of scalar weights (model-size accounting).
  size_t NumParameters();

  /// Value-only copy of every parameter matrix, in Parameters() order — a
  /// cheap in-memory checkpoint for divergence rollback.
  std::vector<nn::Matrix> CloneParameterValues();

  /// Restores parameter values from a CloneParameterValues() snapshot.
  /// Shapes must match the current architecture.
  void RestoreParameterValues(const std::vector<nn::Matrix>& values);

  /// True when every parameter entry is finite (divergence sentinel).
  bool ParametersFinite();

  void Serialize(util::ByteWriter& w) const;
  static util::Result<std::unique_ptr<VaeNet>> Deserialize(
      util::ByteReader& r);

  /// (Re)builds the quantized decoder plan for `mode` from the canonical
  /// fp32 weights (kOff clears it). The plan is used by the const decoder
  /// forwards — i.e. the sampling hot path — only while the prepared mode
  /// equals nn::ActiveQuantMode(), so DEEPAQP_QUANT=off stays bit-identical
  /// to a build without quantization and a stale plan can never leak into a
  /// different mode. Training always runs fp32. Not thread-safe; call
  /// before sharing the net (Train / Deserialize do it automatically).
  util::Status PrepareQuantizedDecoder(nn::QuantMode mode);

  /// Mode of the currently prepared decoder plan (kOff when none).
  nn::QuantMode prepared_quant_mode() const { return decoder_quant_.mode; }

 private:
  VaeNet() = default;

  VaeNetOptions options_;
  std::unique_ptr<nn::Sequential> encoder_trunk_;
  std::unique_ptr<nn::Linear> mu_head_;
  std::unique_ptr<nn::Linear> logvar_head_;
  std::unique_ptr<nn::Sequential> decoder_;
  /// Derived, never-serialized quantized view of decoder_ (see
  /// PrepareQuantizedDecoder). mode == kOff when not prepared.
  nn::QuantizedSequential decoder_quant_;
};

}  // namespace deepaqp::vae

#endif  // DEEPAQP_VAE_VAE_NET_H_
