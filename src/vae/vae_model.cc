#include "vae/vae_model.h"

#include <algorithm>
#include <cmath>

#include "nn/arena.h"
#include "nn/kernels.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace deepaqp::vae {

using nn::Matrix;

namespace {

/// Builds the quantized decoder plan for the process-wide active mode so a
/// freshly trained / deserialized model is immediately usable under
/// DEEPAQP_QUANT. Preparation failure (e.g. non-finite weights) downgrades
/// to fp32 with a warning rather than failing model construction — the
/// quantized plan is a derived acceleration, never required for
/// correctness.
void PrepareQuantizedForActiveMode(VaeAqpModel* model) {
  const nn::QuantMode mode = nn::ActiveQuantMode();
  if (mode == nn::QuantMode::kOff) return;
  const util::Status st = model->PrepareQuantized(mode);
  if (!st.ok()) {
    DEEPAQP_LOG(Warning) << "quantized decoder prep (" <<
        nn::QuantModeName(mode) << ") failed: " << st.message()
        << "; model stays fp32";
  }
}

}  // namespace

util::Result<std::unique_ptr<VaeAqpModel>> VaeAqpModel::Train(
    const relation::Table& table, const VaeAqpOptions& options,
    TrainingStats* stats) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot train on empty table");
  }
  if (options.epochs < 1 || options.batch_size < 1) {
    return util::Status::InvalidArgument("epochs and batch_size must be >=1");
  }
  util::Stopwatch total_watch;

  auto model = std::unique_ptr<VaeAqpModel>(new VaeAqpModel());
  model->options_ = options;
  DEEPAQP_ASSIGN_OR_RETURN(
      model->encoder_, encoding::TupleEncoder::Fit(table, options.encoder));

  VaeNetOptions net_opts;
  net_opts.input_dim = model->encoder_.encoded_dim();
  net_opts.latent_dim =
      options.latent_dim > 0
          ? options.latent_dim
          : std::max<size_t>(
                2, static_cast<size_t>(options.latent_fraction *
                                       static_cast<double>(
                                           net_opts.input_dim)));
  net_opts.hidden_dim = options.hidden_dim;
  net_opts.depth = options.depth;
  net_opts.seed = options.seed;
  model->net_ = std::make_unique<VaeNet>(net_opts);

  Matrix data = model->encoder_.EncodeAll(table);
  const size_t n = data.rows();

  float lr = options.learning_rate;
  auto opt =
      std::make_unique<nn::Adam>(model->net_->Parameters(), lr);
  util::Rng rng(options.seed ^ 0xABCDEF);

  // Per-tuple VRS thresholds, maintained as a stochastic-approximation
  // estimate of -q_{1-target}(r(x)): with T(x) = -q, a fraction `target` of
  // posterior draws satisfies r >= -T(x) and is accepted outright.
  std::vector<float> row_t(n, 1e9f);  // effectively "accept all" until warmup ends
  std::vector<float> neg_quantile(n, 0.0f);
  std::vector<uint8_t> quantile_initialized(n, 0);
  const int warmup_epochs = std::max(1, options.epochs / 3);

  TrainReport report;
  report.final_learning_rate = lr;

  // Best-checkpoint for divergence rollback: parameter values plus every
  // piece of epoch-loop state (thresholds, rng) so a restore replays
  // training from the checkpointed epoch deterministically. The initial
  // state is a valid checkpoint, so even an epoch-0 divergence can roll
  // back. `loss` is recon+kl of the epoch that produced the checkpoint.
  struct Checkpoint {
    std::vector<Matrix> params;
    std::vector<float> row_t;
    std::vector<float> neg_quantile;
    std::vector<uint8_t> quantile_initialized;
    util::Rng rng;
    int next_epoch = 0;
    double loss = std::numeric_limits<double>::infinity();
  };
  Checkpoint best{model->net_->CloneParameterValues(),
                  row_t,
                  neg_quantile,
                  quantile_initialized,
                  rng,
                  0,
                  std::numeric_limits<double>::infinity()};

  // Minibatch buffers reused across every batch of every epoch: the gather
  // target and the per-row threshold vector reach steady-state capacity in
  // the first iteration and never reallocate again.
  std::vector<size_t> idx;
  Matrix batch;
  std::vector<float> batch_t;

  for (int epoch = 0; epoch < options.epochs;) {
    util::Stopwatch epoch_watch;
    EpochStats epoch_stats;
    epoch_stats.acceptance = 0.0;  // accumulated below, then averaged
    const bool vrs_active = options.vrs_training && epoch >= warmup_epochs;
    const uint64_t nf_grads_before = opt->nonfinite_grads();
    const auto perm = rng.Permutation(n);
    size_t batches = 0;
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(n, start + options.batch_size);
      idx.assign(perm.begin() + start, perm.begin() + end);
      data.GatherRowsInto(idx, &batch);

      batch_t.resize(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) batch_t[i] = row_t[idx[i]];
      TrainStepOptions step;
      step.use_vrs = vrs_active;
      step.row_t = &batch_t;
      step.max_rounds = options.vrs_rounds;

      StepStats s = model->net_->TrainStep(batch, *opt, rng, step);
      epoch_stats.recon_loss += s.recon_loss;
      epoch_stats.kl += s.kl;
      epoch_stats.acceptance += s.acceptance;
      ++batches;

      // Update per-tuple quantile estimates of r(x) by quantile SGD:
      // q <- q + eta * (p - 1[r < q]) tracks the p-quantile of r.
      // Non-finite log-ratios carry no quantile information; skipping them
      // (counted) keeps the thresholds usable through a transient fault.
      const float p = static_cast<float>(1.0 - options.train_accept_target);
      const float eta = 0.5f;
      for (size_t i = 0; i < idx.size(); ++i) {
        const float r = s.log_ratio[i];
        if (!std::isfinite(r)) {
          ++report.nonfinite_log_ratios;
          continue;
        }
        float& q = neg_quantile[idx[i]];
        if (!quantile_initialized[idx[i]]) {
          q = r;
          quantile_initialized[idx[i]] = 1;
        } else {
          q += eta * std::abs(q) * (p - (r < q ? 1.0f : 0.0f));
        }
        row_t[idx[i]] = -q;
      }
    }
    if (batches > 0) {
      epoch_stats.recon_loss /= static_cast<double>(batches);
      epoch_stats.kl /= static_cast<double>(batches);
      epoch_stats.acceptance /= static_cast<double>(batches);
    }
    epoch_stats.seconds = epoch_watch.ElapsedSeconds();

    // Divergence sentinels: a non-finite epoch loss, gradient entries the
    // optimizer had to skip, non-finite parameters, or an injected fault
    // (chaos site, keyed by epoch) all reject this epoch's work.
    const uint64_t nf_grads_delta = opt->nonfinite_grads() - nf_grads_before;
    const bool injected = util::FailpointTriggered(
        "vae/train_epoch", static_cast<uint64_t>(epoch));
    const bool diverged = injected ||
                          !std::isfinite(epoch_stats.recon_loss) ||
                          !std::isfinite(epoch_stats.kl) ||
                          nf_grads_delta > 0 ||
                          !model->net_->ParametersFinite();
    if (diverged) {
      ++report.divergence_events;
      if (report.rollbacks >= options.max_divergence_retries) {
        report.nonfinite_grads += opt->nonfinite_grads();
        if (stats != nullptr) {
          stats->report = report;
          stats->total_seconds = total_watch.ElapsedSeconds();
        }
        return util::Status::Internal(
            "training diverged at epoch " + std::to_string(epoch) +
            " and exhausted " +
            std::to_string(options.max_divergence_retries) +
            " rollback retries (learning rate backed off to " +
            std::to_string(lr) + "); sentinel: " +
            (injected ? "injected fault"
             : nf_grads_delta > 0
                 ? "non-finite gradients"
                 : !std::isfinite(epoch_stats.recon_loss) ||
                           !std::isfinite(epoch_stats.kl)
                       ? "non-finite loss"
                       : "non-finite parameters"));
      }
      // Roll back to the best checkpoint and retry from there with a
      // backed-off learning rate and fresh optimizer moments. The restored
      // rng replays the same permutations/draws, so the retry differs only
      // through the smaller steps.
      model->net_->RestoreParameterValues(best.params);
      row_t = best.row_t;
      neg_quantile = best.neg_quantile;
      quantile_initialized = best.quantile_initialized;
      rng = best.rng;
      epoch = best.next_epoch;
      lr *= options.divergence_lr_backoff;
      report.nonfinite_grads += opt->nonfinite_grads();
      opt = std::make_unique<nn::Adam>(model->net_->Parameters(), lr);
      ++report.rollbacks;
      report.final_learning_rate = lr;
      DEEPAQP_LOG(Warning)
          << "training divergence detected; rolled back to epoch "
          << best.next_epoch << ", lr backed off to " << lr << " (retry "
          << report.rollbacks << "/" << options.max_divergence_retries
          << ")";
      if (stats != nullptr) {
        // Healthy epochs at or after the rollback point are retrained;
        // drop their stale entries.
        while (stats->epochs.size() >
               static_cast<size_t>(best.next_epoch)) {
          stats->epochs.pop_back();
        }
      }
      continue;
    }

    if (stats != nullptr) stats->epochs.push_back(epoch_stats);
    ++epoch;
    const double epoch_loss = epoch_stats.recon_loss + epoch_stats.kl;
    if (epoch_loss <= best.loss) {
      best.params = model->net_->CloneParameterValues();
      best.row_t = row_t;
      best.neg_quantile = neg_quantile;
      best.quantile_initialized = quantile_initialized;
      best.rng = rng;
      best.next_epoch = epoch;
      best.loss = epoch_loss;
    }
  }
  report.nonfinite_grads += opt->nonfinite_grads();

  // Calibrate per-tuple thresholds T(x) with a dedicated Monte-Carlo pass
  // (Sec. VI-A): for each tuple draw several posterior samples, estimate
  // the (1 - accept_target) quantile of the log-ratio r = log p(x,z) -
  // log q(z|x), and set T(x) = -q so draws are accepted with probability
  // ~accept_target. The default generation threshold is the 90th
  // percentile of the T(x) distribution.
  {
    const size_t calib_rows = std::min<size_t>(n, 4096);
    const auto rows = rng.SampleWithoutReplacement(n, calib_rows);
    constexpr int kDraws = 8;
    std::vector<float> t_values;
    t_values.reserve(calib_rows);
    const size_t batch_size = 256;
    // Calibration is pure inference on the finished net, so it runs on the
    // cache-free const paths (bit-identical to Encode/LogRatioRows) with
    // all per-batch/per-draw buffers hoisted out of the loops.
    nn::ScratchArena arena;
    Matrix eps;
    Matrix z;
    Matrix ratio;
    VaeNet::Posterior post;
    std::vector<std::vector<float>> draws;
    for (size_t start = 0; start < calib_rows; start += batch_size) {
      const size_t end = std::min(calib_rows, start + batch_size);
      idx.assign(rows.begin() + start, rows.begin() + end);
      data.GatherRowsInto(idx, &batch);
      model->net_->EncodeConstInto(batch, &post, &arena);
      draws.resize(idx.size());
      for (auto& d : draws) d.clear();
      for (int d = 0; d < kDraws; ++d) {
        eps.Resize(idx.size(), model->net_->latent_dim());
        for (size_t i = 0; i < eps.size(); ++i) {
          eps.data()[i] = static_cast<float>(rng.NextGaussian());
        }
        VaeNet::ReparameterizeInto(post, eps, &z);
        model->net_->LogRatioRowsConstInto(batch, post, z, &ratio, &arena);
        for (size_t i = 0; i < idx.size(); ++i) {
          draws[i].push_back(ratio.At(i, 0));
        }
      }
      const auto q_index = static_cast<size_t>(
          (1.0 - options.train_accept_target) * (kDraws - 1));
      for (auto& d : draws) {
        std::sort(d.begin(), d.end());
        // A non-finite quantile (poisoned forward pass, degenerate
        // posterior) is useless as a threshold; drop it rather than let it
        // become a non-finite default_t.
        const float threshold = -d[q_index];
        if (std::isfinite(threshold)) t_values.push_back(threshold);
      }
    }
    std::sort(t_values.begin(), t_values.end());
    if (t_values.empty()) {
      // No finite calibration threshold survived (or no calibration data at
      // all): fall back to accept-all generation rather than propagating a
      // non-finite default into clients' NaN-means-default logic.
      model->default_t_ = kTPlusInf;
      report.calibration_fallback = true;
      DEEPAQP_LOG(Warning)
          << "T(x) calibration produced no finite threshold; default_t "
             "falls back to accept-all (t = +inf)";
    } else {
      // Nearest-rank 90th percentile, ceil(0.9*n)-1: floor-based
      // 0.9*(n-1) picks a too-low order statistic on tiny calibration
      // sets (e.g. n=2 picked index 0, the minimum).
      const size_t n = t_values.size();
      const size_t rank = std::min(
          n - 1,
          static_cast<size_t>(std::ceil(0.9 * static_cast<double>(n))) - 1);
      model->default_t_ = t_values[rank];
    }
  }

  if (stats != nullptr) {
    stats->report = report;
    stats->total_seconds = total_watch.ElapsedSeconds();
  }
  PrepareQuantizedForActiveMode(model.get());
  return model;
}

relation::Table VaeAqpModel::MakeEmptySampleTable() const {
  relation::Table out(encoder_.schema());
  for (size_t c = 0; c < encoder_.schema().num_attributes(); ++c) {
    if (encoder_.schema().IsCategorical(c)) {
      out.DeclareCardinality(c, encoder_.layout()[c].cardinality);
      for (const std::string& label : encoder_.layout()[c].labels) {
        out.InternLabel(c, label);
      }
    }
  }
  return out;
}

/// Rows per parallel generation chunk. Fixed (never derived from the thread
/// count) so the chunk layout — and therefore every chunk's child RNG
/// stream — depends only on n.
static constexpr size_t kGenerateChunkRows = 512;

relation::Table VaeAqpModel::Generate(size_t n, double t, util::Rng& rng,
                                      GenerateStats* stats) const {
  relation::Table out = MakeEmptySampleTable();
  if (n == 0) return out;
  const uint64_t master = rng.NextUint64();
  const size_t num_chunks =
      (n + kGenerateChunkRows - 1) / kGenerateChunkRows;
  std::vector<relation::Table> chunks(num_chunks, out);
  std::vector<GenerateStats> chunk_stats(num_chunks);
  // Node-sharded fan-out: each NUMA node's lanes generate a contiguous
  // block of chunks. Chunk contents depend only on (master, c) — never on
  // which lane runs a chunk — so every placement policy and thread count
  // produces the same chunks.
  util::ParallelForSharded(0, num_chunks, [&](size_t c) {
    const size_t begin = c * kGenerateChunkRows;
    const size_t rows = std::min(kGenerateChunkRows, n - begin);
    util::Rng chunk_rng = util::Rng::ChildStream(master, c);
    chunks[c] = GenerateChunk(rows, t, chunk_rng, &chunk_stats[c]);
  });
  // Merge: size the pool without touching it (first-touch-deferred column
  // growth), then copy each chunk into its slice under the same node
  // sharding as the fan-out. When lanes are pinned, the writer of a slice
  // is a lane of the node that generated it, so its pages land on the node
  // that later scans them — and the copy itself parallelizes. Offsets are
  // a pure function of the chunk row counts, and chunks share the
  // prototype's dictionaries, so the merged pool matches the old serial
  // Append bit for bit at every thread count and placement policy.
  std::vector<size_t> offsets(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    offsets[c + 1] = offsets[c] + chunks[c].num_rows();
    if (stats != nullptr) stats->Merge(chunk_stats[c]);
  }
  out.AppendUninitializedRows(offsets[num_chunks]);
  util::ParallelForSharded(0, num_chunks, [&](size_t c) {
    out.AssignRows(offsets[c], chunks[c]);
  });
  if (out.num_rows() < n) {
    DEEPAQP_LOG(Warning) << "Generate produced " << out.num_rows() << "/"
                         << n << " rows (degraded chunks gave up early)";
  }
  return out;
}

/// Consecutive zero-progress candidate windows a chunk tolerates before
/// degrading (first to accept-all, then giving up). A healthy window always
/// yields at least its best finite candidate, so this budget only engages
/// when the model emits non-finite ratios or undecodable rows.
static constexpr size_t kMaxStalledWindows = 8;

relation::Table VaeAqpModel::GenerateChunk(size_t n, double t,
                                           util::Rng& rng,
                                           GenerateStats* stats) const {
  relation::Table out = MakeEmptySampleTable();
  const bool reject = t != kTPlusInf;
  const size_t window = std::max<size_t>(128, std::min<size_t>(1024, n));

  // Every Matrix in the window loop is reused across iterations: the arena
  // feeds the inference intermediates and the named buffers below reach
  // steady-state capacity on the first window. The arena is chunk-local, so
  // sibling chunks on other pool threads never share mutable state.
  nn::ScratchArena arena;
  Matrix z;
  Matrix logits;
  Matrix bits;
  Matrix ratio;
  Matrix kept;
  VaeNet::Posterior post;
  std::vector<size_t> accepted;
  std::vector<size_t> finite_rows;

  size_t consecutive_stalls = 0;
  bool force_accept = false;

  while (out.num_rows() < n) {
    const size_t remaining = n - out.num_rows();
    const size_t batch = std::min(window, std::max<size_t>(remaining, 64));
    net_->SamplePriorInto(batch, rng, &z);
    net_->DecodeLogitsConstInto(z, &logits, &arena);

    accepted.clear();
    if (!reject || force_accept) {
      accepted.resize(batch);
      for (size_t i = 0; i < batch; ++i) accepted[i] = i;
    } else {
      // Candidate bits x' ~ Bernoulli(sigmoid(logits)): the acceptance test
      // runs on the encoded representation; attribute decoding of accepted
      // rows happens afterwards with the configured strategy. The sigmoid
      // pass is vectorized; the Bernoulli draws consume one uniform per
      // element in index order, as before.
      bits.Resize(batch, logits.cols());
      nn::SigmoidBernoulliVec(logits.data(), bits.size(), rng, bits.data());
      net_->EncodeConstInto(bits, &post, &arena);
      // The cache-free const paths keep this chunk self-contained: nothing
      // on the shared net is written, so sibling chunks can run in parallel.
      net_->LogRatioRowsConstInto(bits, post, z, &ratio, &arena);
      // Chaos site: simulated compute fault during sampling — poisons one
      // candidate's log-ratio, which the non-finite-rejection path below
      // must absorb.
      if (util::FailpointTriggered("vae/sample_chunk")) {
        ratio.At(0, 0) = std::numeric_limits<float>::quiet_NaN();
      }
      size_t best = 0;
      bool have_best = false;
      for (size_t i = 0; i < batch; ++i) {
        const double r = ratio.At(i, 0);
        // A non-finite log-ratio is an explicit rejection: it carries no
        // usable acceptance probability (NaN would otherwise slip through
        // min(0, t + NaN) as an accept). The uniform draw is skipped, so
        // the rng stream only shifts when a fault is actually present.
        if (!std::isfinite(r)) {
          if (stats != nullptr) ++stats->nonfinite_ratios;
          continue;
        }
        if (!have_best || r > ratio.At(best, 0)) {
          best = i;
          have_best = true;
        }
        if (t == kTMinusInf) continue;
        const double log_a = std::min(0.0, t + r);
        if (std::log(std::max(rng.NextDouble(), 1e-300)) <= log_a) {
          accepted.push_back(i);
        }
      }
      // Guarantee progress: a fully rejected window (always, at t = -inf)
      // contributes its single best-ratio candidate — when one exists.
      if (accepted.empty() && have_best) accepted.push_back(best);
    }
    if (accepted.size() > remaining) accepted.resize(remaining);
    if (!accepted.empty()) {
      logits.GatherRowsInto(accepted, &kept);
      relation::Table decoded =
          encoder_.DecodeLogits(kept, options_.decode, rng);
      // Scrub: a poisoned forward pass can decode into non-finite numeric
      // cells; such rows would surface as NaN aggregates downstream. Drop
      // them (counted). Healthy rows pass through untouched.
      finite_rows.clear();
      for (size_t r = 0; r < decoded.num_rows(); ++r) {
        bool finite = true;
        for (size_t c = 0; c < decoded.num_attributes(); ++c) {
          if (!decoded.schema().IsCategorical(c) &&
              !std::isfinite(decoded.NumValue(r, c))) {
            finite = false;
            break;
          }
        }
        if (finite) finite_rows.push_back(r);
      }
      if (finite_rows.size() != decoded.num_rows()) {
        if (stats != nullptr) {
          stats->nonfinite_rows_dropped +=
              decoded.num_rows() - finite_rows.size();
        }
        decoded = decoded.Gather(finite_rows);
      }
      if (decoded.num_rows() > 0) {
        DEEPAQP_CHECK(out.Append(decoded).ok());
        consecutive_stalls = 0;
        continue;
      }
    }

    // Zero-progress window. Tolerate a bounded streak, then degrade: first
    // to accept-all (rejection no longer gates progress), and if even that
    // cannot produce a finite row, give up and return what we have.
    if (stats != nullptr) ++stats->stalled_windows;
    if (++consecutive_stalls >= kMaxStalledWindows) {
      if (!force_accept && reject) {
        force_accept = true;
        consecutive_stalls = 0;
        if (stats != nullptr) ++stats->forced_accept_windows;
        DEEPAQP_LOG(Warning)
            << "sample generation stalled for " << kMaxStalledWindows
            << " windows; degrading to accept-all for this chunk";
      } else {
        DEEPAQP_LOG(Warning)
            << "sample generation cannot make progress; returning "
            << out.num_rows() << "/" << n << " rows";
        break;
      }
    }
  }
  return out;
}

relation::Table VaeAqpModel::GenerateWhere(size_t n,
                                           const aqp::Predicate& predicate,
                                           double t, util::Rng& rng,
                                           size_t max_candidates) const {
  GenerateWhereResult result =
      GenerateWhereReport(n, predicate, t, rng, max_candidates);
  if (result.shortfall() > 0) {
    DEEPAQP_LOG(Warning) << "GenerateWhere returned "
                         << result.rows.num_rows() << "/" << result.requested
                         << " rows after " << result.candidates
                         << " candidates (selective predicate or degraded "
                            "model); aggregates will be under-sampled";
  }
  return std::move(result.rows);
}

GenerateWhereResult VaeAqpModel::GenerateWhereReport(
    size_t n, const aqp::Predicate& predicate, double t, util::Rng& rng,
    size_t max_candidates) const {
  relation::Table out(encoder_.schema());
  for (size_t c = 0; c < encoder_.schema().num_attributes(); ++c) {
    if (encoder_.schema().IsCategorical(c)) {
      out.DeclareCardinality(c, encoder_.layout()[c].cardinality);
      for (const std::string& label : encoder_.layout()[c].labels) {
        out.InternLabel(c, label);
      }
    }
  }
  size_t candidates = 0;
  while (out.num_rows() < n && candidates < max_candidates) {
    const size_t batch =
        std::min<size_t>(1024, max_candidates - candidates);
    relation::Table sample = Generate(batch, t, rng);
    // A degraded model can return short (or empty) batches; count the
    // requested budget so an unproductive model still terminates.
    candidates += std::max(batch, sample.num_rows());
    std::vector<size_t> matching;
    for (size_t r = 0; r < sample.num_rows(); ++r) {
      if (predicate.Matches(sample, r)) matching.push_back(r);
    }
    if (matching.size() > n - out.num_rows()) {
      matching.resize(n - out.num_rows());
    }
    if (!matching.empty()) {
      DEEPAQP_CHECK(out.Append(sample.Gather(matching)).ok());
    }
  }
  return GenerateWhereResult{std::move(out), n, candidates};
}

aqp::SampleFn VaeAqpModel::MakeSampler(double t, uint64_t seed) const {
  // The sampler owns an independent RNG stream; the harness's rng argument
  // seeds per-draw variation.
  return [this, t, seed](size_t rows, util::Rng& harness_rng) {
    util::Rng rng(seed ^ harness_rng.NextUint64());
    return Generate(rows, t, rng);
  };
}

double VaeAqpModel::RElboLoss(const relation::Table& table, double t,
                              util::Rng& rng, size_t max_rows) {
  const size_t n = std::min(table.num_rows(), max_rows);
  std::vector<size_t> rows =
      table.num_rows() <= max_rows
          ? [&] {
              std::vector<size_t> all(table.num_rows());
              for (size_t i = 0; i < all.size(); ++i) all[i] = i;
              return all;
            }()
          : rng.SampleWithoutReplacement(table.num_rows(), n);
  Matrix x = encoder_.EncodeRows(table, rows);
  return net_->RElboLoss(x, t, rng);
}

double VaeAqpModel::ElboLoss(const relation::Table& table, util::Rng& rng,
                             size_t max_rows) {
  return RElboLoss(table, kTPlusInf, rng, max_rows);
}

size_t VaeAqpModel::ModelSizeBytes() const { return Serialize().size(); }

std::vector<uint8_t> VaeAqpModel::Serialize() const {
  util::SnapshotWriter snap(kVaeModelSnapshotKind, kVaeModelPayloadVersion);
  util::ByteWriter& meta = snap.AddSection("meta");
  meta.WriteF64(default_t_);
  meta.WriteU8(static_cast<uint8_t>(options_.decode.strategy));
  meta.WriteI32(options_.decode.draws);
  encoder_.Serialize(snap.AddSection("encoder"));
  net_->Serialize(snap.AddSection("net"));
  return snap.Finish();
}

util::Result<std::unique_ptr<VaeAqpModel>> VaeAqpModel::Deserialize(
    const std::vector<uint8_t>& bytes) {
  DEEPAQP_ASSIGN_OR_RETURN(util::SnapshotReader snap,
                           util::SnapshotReader::Open(bytes));
  if (snap.kind() != kVaeModelSnapshotKind) {
    return util::Status::InvalidArgument(
        "snapshot holds a '" + snap.kind() + "', not a deepaqp VAE model");
  }
  if (snap.payload_version() != kVaeModelPayloadVersion) {
    return util::Status::InvalidArgument(
        "unsupported VAE model payload version " +
        std::to_string(snap.payload_version()) + " (expected " +
        std::to_string(kVaeModelPayloadVersion) + ")");
  }
  auto model = std::unique_ptr<VaeAqpModel>(new VaeAqpModel());
  DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader meta, snap.Section("meta"));
  DEEPAQP_ASSIGN_OR_RETURN(model->default_t_, meta.ReadF64());
  DEEPAQP_ASSIGN_OR_RETURN(uint8_t strategy, meta.ReadU8());
  if (strategy > static_cast<uint8_t>(
                     encoding::DecodeStrategy::kWeightedRandom)) {
    return util::Status::InvalidArgument("bad decode strategy");
  }
  model->options_.decode.strategy =
      static_cast<encoding::DecodeStrategy>(strategy);
  DEEPAQP_ASSIGN_OR_RETURN(model->options_.decode.draws, meta.ReadI32());
  if (!meta.AtEnd()) {
    return util::Status::InvalidArgument(
        "trailing bytes in VAE model 'meta' section");
  }
  DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader enc_r, snap.Section("encoder"));
  DEEPAQP_ASSIGN_OR_RETURN(model->encoder_,
                           encoding::TupleEncoder::Deserialize(enc_r));
  DEEPAQP_ASSIGN_OR_RETURN(util::ByteReader net_r, snap.Section("net"));
  DEEPAQP_ASSIGN_OR_RETURN(model->net_, VaeNet::Deserialize(net_r));
  PrepareQuantizedForActiveMode(model.get());
  return model;
}

}  // namespace deepaqp::vae
