#include "vae/vae_net.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "util/logging.h"

namespace deepaqp::vae {

using nn::Matrix;

VaeNet::VaeNet(const VaeNetOptions& options) : options_(options) {
  DEEPAQP_CHECK_GT(options_.input_dim, 0u);
  DEEPAQP_CHECK_GT(options_.latent_dim, 0u);
  util::Rng rng(options_.seed);
  encoder_trunk_ = nn::MakeMlpTrunk(options_.input_dim, options_.hidden_dim,
                                    options_.depth, rng);
  mu_head_ = std::make_unique<nn::Linear>(options_.hidden_dim,
                                          options_.latent_dim, rng);
  logvar_head_ = std::make_unique<nn::Linear>(options_.hidden_dim,
                                              options_.latent_dim, rng);
  decoder_ = nn::MakeMlpTrunk(options_.latent_dim, options_.hidden_dim,
                              options_.depth, rng);
  decoder_->Add(std::make_unique<nn::Linear>(options_.hidden_dim,
                                             options_.input_dim, rng));
}

VaeNet::Posterior VaeNet::Encode(const Matrix& x) {
  Matrix h = encoder_trunk_->Forward(x);
  Posterior post;
  post.mu = mu_head_->Forward(h);
  post.logvar = logvar_head_->Forward(h);
  // Clamp logvar for numeric stability of exp().
  for (size_t i = 0; i < post.logvar.size(); ++i) {
    post.logvar.data()[i] =
        std::clamp(post.logvar.data()[i], -8.0f, 8.0f);
  }
  return post;
}

VaeNet::Posterior VaeNet::EncodeConst(const Matrix& x) const {
  Posterior post;
  EncodeConstInto(x, &post, &nn::ScratchArena::ThreadLocal());
  return post;
}

void VaeNet::EncodeConstInto(const Matrix& x, Posterior* post,
                             nn::ScratchArena* arena) const {
  Matrix h = arena->Acquire();
  nn::InferenceForwardInto(*encoder_trunk_, x, &h, arena);
  nn::FusedLinearForward(h, mu_head_->weight.value, mu_head_->bias.value,
                         nn::Activation::kIdentity, 0.0f, &post->mu);
  nn::FusedLinearForward(h, logvar_head_->weight.value,
                         logvar_head_->bias.value, nn::Activation::kIdentity,
                         0.0f, &post->logvar);
  arena->Release(std::move(h));
  for (size_t i = 0; i < post->logvar.size(); ++i) {
    post->logvar.data()[i] =
        std::clamp(post->logvar.data()[i], -8.0f, 8.0f);
  }
}

Matrix VaeNet::DecodeLogits(const Matrix& z) { return decoder_->Forward(z); }

Matrix VaeNet::DecodeLogitsConst(const Matrix& z) const {
  Matrix logits;
  DecodeLogitsConstInto(z, &logits, &nn::ScratchArena::ThreadLocal());
  return logits;
}

void VaeNet::DecodeLogitsConstInto(const Matrix& z, Matrix* logits,
                                   nn::ScratchArena* arena) const {
  // The quantized plan engages only when it matches the process-wide active
  // mode: under DEEPAQP_QUANT=off (or with no prepared plan) this is the
  // canonical fp32 path, bit for bit, and a plan prepared for one mode can
  // never serve another.
  const nn::QuantMode active = nn::ActiveQuantMode();
  if (active != nn::QuantMode::kOff && decoder_quant_.mode == active) {
    nn::QuantizedInferenceForwardInto(decoder_quant_, z, logits, arena);
    return;
  }
  nn::InferenceForwardInto(*decoder_, z, logits, arena);
}

util::Status VaeNet::PrepareQuantizedDecoder(nn::QuantMode mode) {
  if (mode == nn::QuantMode::kOff) {
    decoder_quant_ = nn::QuantizedSequential();
    return util::Status::OK();
  }
  nn::QuantizedSequential plan;
  DEEPAQP_RETURN_IF_ERROR(nn::QuantizeSequential(*decoder_, mode, &plan));
  decoder_quant_ = std::move(plan);
  return util::Status::OK();
}

Matrix VaeNet::Reparameterize(const Posterior& post, const Matrix& eps) {
  Matrix z;
  ReparameterizeInto(post, eps, &z);
  return z;
}

void VaeNet::ReparameterizeInto(const Posterior& post, const Matrix& eps,
                                Matrix* z) {
  z->Resize(post.mu.rows(), post.mu.cols());
  for (size_t i = 0; i < z->size(); ++i) {
    z->data()[i] = post.mu.data()[i] +
                   std::exp(0.5f * post.logvar.data()[i]) * eps.data()[i];
  }
}

Matrix VaeNet::SamplePrior(size_t n, util::Rng& rng) const {
  Matrix z;
  SamplePriorInto(n, rng, &z);
  return z;
}

void VaeNet::SamplePriorInto(size_t n, util::Rng& rng, Matrix* z) const {
  z->Resize(n, options_.latent_dim);
  for (size_t i = 0; i < z->size(); ++i) {
    z->data()[i] = static_cast<float>(rng.NextGaussian());
  }
}

Matrix VaeNet::LogJointRows(const Matrix& x_bits, const Matrix& z) {
  Matrix logits = DecodeLogits(z);
  Matrix log_px_z = nn::BernoulliLogLikelihoodRows(logits, x_bits);
  Matrix log_pz = nn::StandardNormalLogDensityRows(z);
  for (size_t r = 0; r < log_px_z.rows(); ++r) {
    log_px_z.At(r, 0) += log_pz.At(r, 0);
  }
  return log_px_z;
}

Matrix VaeNet::LogPosteriorRows(const Posterior& post, const Matrix& z) {
  return nn::GaussianLogDensityRows(z, post.mu, post.logvar);
}

Matrix VaeNet::LogJointRowsConst(const Matrix& x_bits,
                                 const Matrix& z) const {
  Matrix logits = DecodeLogitsConst(z);
  Matrix log_px_z = nn::BernoulliLogLikelihoodRows(logits, x_bits);
  Matrix log_pz = nn::StandardNormalLogDensityRows(z);
  for (size_t r = 0; r < log_px_z.rows(); ++r) {
    log_px_z.At(r, 0) += log_pz.At(r, 0);
  }
  return log_px_z;
}

Matrix VaeNet::LogRatioRows(const Matrix& x_bits, const Posterior& post,
                            const Matrix& z) {
  Matrix r = LogJointRows(x_bits, z);
  Matrix log_q = LogPosteriorRows(post, z);
  for (size_t i = 0; i < r.rows(); ++i) r.At(i, 0) -= log_q.At(i, 0);
  return r;
}

Matrix VaeNet::LogRatioRowsConst(const Matrix& x_bits, const Posterior& post,
                                 const Matrix& z) const {
  Matrix r = LogJointRowsConst(x_bits, z);
  Matrix log_q = LogPosteriorRows(post, z);
  for (size_t i = 0; i < r.rows(); ++i) r.At(i, 0) -= log_q.At(i, 0);
  return r;
}

void VaeNet::LogRatioRowsConstInto(const Matrix& x_bits, const Posterior& post,
                                   const Matrix& z, Matrix* out,
                                   nn::ScratchArena* arena) const {
  // Same terms in the same order as LogRatioRowsConst; only the decoder
  // logits (the one batch x input_dim intermediate) come from the arena.
  Matrix logits = arena->Acquire();
  DecodeLogitsConstInto(z, &logits, arena);
  *out = nn::BernoulliLogLikelihoodRows(logits, x_bits);
  arena->Release(std::move(logits));
  Matrix log_pz = nn::StandardNormalLogDensityRows(z);
  for (size_t r = 0; r < out->rows(); ++r) {
    out->At(r, 0) += log_pz.At(r, 0);
  }
  Matrix log_q = LogPosteriorRows(post, z);
  for (size_t i = 0; i < out->rows(); ++i) out->At(i, 0) -= log_q.At(i, 0);
}

namespace {

Matrix GaussianNoise(size_t rows, size_t cols, util::Rng& rng) {
  Matrix eps(rows, cols);
  for (size_t i = 0; i < eps.size(); ++i) {
    eps.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return eps;
}

}  // namespace

StepStats VaeNet::TrainStep(const Matrix& x, nn::Optimizer& opt,
                            util::Rng& rng, const TrainStepOptions& step) {
  const size_t batch = x.rows();
  StepStats stats;

  opt.ZeroGrad();
  Posterior post = Encode(x);

  // Choose the eps (and hence z) each row trains on.
  Matrix eps = GaussianNoise(batch, options_.latent_dim, rng);
  if (step.use_vrs) {
    DEEPAQP_CHECK(step.row_t != nullptr);
    DEEPAQP_CHECK_EQ(step.row_t->size(), batch);
    size_t accepted_total = 0;
    size_t draws_total = 0;
    std::vector<size_t> pending(batch);
    for (size_t i = 0; i < batch; ++i) pending[i] = i;
    for (int round = 0; round < step.max_rounds && !pending.empty();
         ++round) {
      // Evaluate acceptance of the current eps of all pending rows at once.
      Matrix z = Reparameterize(post, eps);
      Matrix ratio = LogRatioRows(x, post, z);
      std::vector<size_t> still_pending;
      for (size_t i : pending) {
        ++draws_total;
        const double log_a =
            std::min(0.0, static_cast<double>((*step.row_t)[i]) +
                              ratio.At(i, 0));
        const double log_u = std::log(std::max(rng.NextDouble(), 1e-300));
        if (log_u <= log_a) {
          ++accepted_total;
        } else {
          still_pending.push_back(i);
        }
      }
      pending = std::move(still_pending);
      if (round + 1 < step.max_rounds) {
        for (size_t i : pending) {
          for (size_t c = 0; c < options_.latent_dim; ++c) {
            eps.At(i, c) = static_cast<float>(rng.NextGaussian());
          }
        }
      }
      // Rows never accepted train on their final draw.
    }
    stats.acceptance =
        draws_total == 0
            ? 1.0
            : static_cast<double>(accepted_total) /
                  static_cast<double>(draws_total);
  }

  // Forward with the chosen eps.
  Matrix z = Reparameterize(post, eps);
  Matrix logits = DecodeLogits(z);

  nn::LossResult recon = nn::BceWithLogits(logits, x);
  Matrix grad_logvar_kl;
  nn::LossResult kl = nn::GaussianKl(post.mu, post.logvar, &grad_logvar_kl);
  stats.recon_loss = recon.value;
  stats.kl = kl.value;

  // Backward. dL/dz from the decoder; then through the reparameterization:
  // dmu += dz, dlogvar += dz * eps * 0.5 * exp(logvar/2); plus KL gradients.
  Matrix dz = decoder_->Backward(recon.grad);
  Matrix dmu = dz;
  nn::Axpy(1.0f, kl.grad, &dmu);
  Matrix dlogvar = grad_logvar_kl;
  for (size_t i = 0; i < dlogvar.size(); ++i) {
    dlogvar.data()[i] += dz.data()[i] * eps.data()[i] * 0.5f *
                         std::exp(0.5f * post.logvar.data()[i]);
  }
  Matrix dh = mu_head_->Backward(dmu);
  nn::Axpy(1.0f, logvar_head_->Backward(dlogvar), &dh);
  encoder_trunk_->Backward(dh);

  opt.Step();

  // Log-ratio diagnostics for the caller's per-tuple T(x) updates, from the
  // trained-on draw.
  Matrix ratio = LogRatioRows(x, post, z);
  stats.log_ratio.resize(batch);
  for (size_t i = 0; i < batch; ++i) stats.log_ratio[i] = ratio.At(i, 0);
  return stats;
}

double VaeNet::ElboLoss(const Matrix& x, util::Rng& rng) {
  Posterior post = Encode(x);
  Matrix eps = GaussianNoise(x.rows(), options_.latent_dim, rng);
  Matrix z = Reparameterize(post, eps);
  Matrix logits = DecodeLogits(z);
  nn::LossResult recon = nn::BceWithLogits(logits, x);
  Matrix grad_logvar;
  nn::LossResult kl = nn::GaussianKl(post.mu, post.logvar, &grad_logvar);
  return recon.value + kl.value;
}

double VaeNet::RElboLoss(const Matrix& x, double t, util::Rng& rng,
                         int max_rounds) {
  Posterior post = Encode(x);
  const size_t batch = x.rows();
  Matrix eps = GaussianNoise(batch, options_.latent_dim, rng);
  if (std::isfinite(t)) {
    std::vector<size_t> pending(batch);
    for (size_t i = 0; i < batch; ++i) pending[i] = i;
    for (int round = 0; round < max_rounds && !pending.empty(); ++round) {
      Matrix z = Reparameterize(post, eps);
      Matrix ratio = LogRatioRows(x, post, z);
      std::vector<size_t> still_pending;
      for (size_t i : pending) {
        const double log_a = std::min(0.0, t + ratio.At(i, 0));
        if (std::log(std::max(rng.NextDouble(), 1e-300)) > log_a) {
          still_pending.push_back(i);
        }
      }
      pending = std::move(still_pending);
      if (round + 1 < max_rounds) {
        for (size_t i : pending) {
          for (size_t c = 0; c < options_.latent_dim; ++c) {
            eps.At(i, c) = static_cast<float>(rng.NextGaussian());
          }
        }
      }
    }
  }
  Matrix z = Reparameterize(post, eps);
  Matrix logits = DecodeLogits(z);
  nn::LossResult recon = nn::BceWithLogits(logits, x);
  // KL term evaluated against the resampled draw: mean of
  // log q(z|x) - log p(z) over the batch (single-sample estimator).
  Matrix log_q = LogPosteriorRows(post, z);
  Matrix log_p = nn::StandardNormalLogDensityRows(z);
  double kl = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    kl += log_q.At(i, 0) - log_p.At(i, 0);
  }
  kl /= static_cast<double>(batch);
  return recon.value + kl;
}

std::vector<nn::Parameter*> VaeNet::Parameters() {
  std::vector<nn::Parameter*> params;
  encoder_trunk_->CollectParameters(&params);
  mu_head_->CollectParameters(&params);
  logvar_head_->CollectParameters(&params);
  decoder_->CollectParameters(&params);
  return params;
}

size_t VaeNet::NumParameters() {
  size_t total = 0;
  for (const nn::Parameter* p : Parameters()) total += p->value.size();
  return total;
}

std::vector<nn::Matrix> VaeNet::CloneParameterValues() {
  std::vector<nn::Matrix> values;
  for (const nn::Parameter* p : Parameters()) values.push_back(p->value);
  return values;
}

void VaeNet::RestoreParameterValues(const std::vector<nn::Matrix>& values) {
  std::vector<nn::Parameter*> params = Parameters();
  DEEPAQP_CHECK_EQ(params.size(), values.size());
  for (size_t i = 0; i < params.size(); ++i) {
    DEEPAQP_CHECK_EQ(params[i]->value.rows(), values[i].rows());
    DEEPAQP_CHECK_EQ(params[i]->value.cols(), values[i].cols());
    params[i]->value = values[i];
  }
}

bool VaeNet::ParametersFinite() {
  for (const nn::Parameter* p : Parameters()) {
    if (!nn::AllFinite(p->value)) return false;
  }
  return true;
}

/// Bump when the serialized layout below changes; Deserialize rejects
/// mismatches with a diagnosable error instead of misparsing weights.
static constexpr uint32_t kVaeNetSchemaVersion = 1;

void VaeNet::Serialize(util::ByteWriter& w) const {
  w.WriteU32(kVaeNetSchemaVersion);
  w.WriteU64(options_.input_dim);
  w.WriteU64(options_.latent_dim);
  w.WriteU64(options_.hidden_dim);
  w.WriteI32(options_.depth);
  encoder_trunk_->Serialize(w);
  mu_head_->Serialize(w);
  logvar_head_->Serialize(w);
  decoder_->Serialize(w);
}

util::Result<std::unique_ptr<VaeNet>> VaeNet::Deserialize(
    util::ByteReader& r) {
  auto net = std::unique_ptr<VaeNet>(new VaeNet());
  DEEPAQP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVaeNetSchemaVersion) {
    return util::Status::InvalidArgument(
        "unsupported VAE net schema version " + std::to_string(version) +
        " (expected " + std::to_string(kVaeNetSchemaVersion) + ")");
  }
  DEEPAQP_ASSIGN_OR_RETURN(net->options_.input_dim, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(net->options_.latent_dim, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(net->options_.hidden_dim, r.ReadU64());
  DEEPAQP_ASSIGN_OR_RETURN(net->options_.depth, r.ReadI32());
  DEEPAQP_ASSIGN_OR_RETURN(net->encoder_trunk_,
                           nn::Sequential::Deserialize(r));
  DEEPAQP_ASSIGN_OR_RETURN(net->mu_head_, nn::Linear::Deserialize(r));
  DEEPAQP_ASSIGN_OR_RETURN(net->logvar_head_, nn::Linear::Deserialize(r));
  DEEPAQP_ASSIGN_OR_RETURN(net->decoder_, nn::Sequential::Deserialize(r));
  return net;
}

}  // namespace deepaqp::vae
