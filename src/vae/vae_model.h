#ifndef DEEPAQP_VAE_VAE_MODEL_H_
#define DEEPAQP_VAE_VAE_MODEL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "aqp/evaluation.h"
#include "encoding/tuple_encoder.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"
#include "vae/vae_net.h"

namespace deepaqp::vae {

/// Snapshot identity of a serialized VaeAqpModel (util/snapshot.h container;
/// the CLI dispatches on the kind string without parsing the payload).
inline constexpr char kVaeModelSnapshotKind[] = "deepaqp.vae-model";
inline constexpr uint32_t kVaeModelPayloadVersion = 1;

/// Sentinels for the rejection threshold sweep of Fig. 8. kTPlusInf accepts
/// every sample (no rejection); kTMinusInf accepts only the best-ratio
/// candidate per generation window (the practical T -> -inf limit).
inline constexpr double kTPlusInf = std::numeric_limits<double>::infinity();
inline constexpr double kTMinusInf =
    -std::numeric_limits<double>::infinity();

/// Everything needed to train a VAE AQP model (paper Sec. VI-A defaults).
struct VaeAqpOptions {
  encoding::EncoderOptions encoder;
  /// Latent dimensionality as a fraction of the encoded input dimension
  /// (Fig. 4 sweeps 10%-100%; 50% is the paper's sweet spot). Ignored when
  /// `latent_dim` is set explicitly.
  double latent_fraction = 0.5;
  size_t latent_dim = 0;
  size_t hidden_dim = 64;
  /// Encoder/decoder depth (Fig. 5; paper default 2).
  int depth = 2;
  int epochs = 15;
  size_t batch_size = 128;
  float learning_rate = 1e-3f;
  uint64_t seed = 1234;
  /// Train with variational rejection sampling: per-tuple thresholds T(x)
  /// maintained so posterior draws are accepted with probability ~
  /// `train_accept_target` (paper: 0.9). Kicks in after a warmup of
  /// epochs/3 plain-ELBO epochs.
  bool vrs_training = true;
  double train_accept_target = 0.9;
  int vrs_rounds = 3;
  /// Self-healing: how many divergence rollbacks Train() may spend before
  /// giving up with a descriptive Status. Each rollback restores the best
  /// finite checkpoint and multiplies the learning rate by
  /// `divergence_lr_backoff` for the retry.
  int max_divergence_retries = 3;
  float divergence_lr_backoff = 0.5f;
  /// Output decoding (Fig. 7; paper recommends aggregated decoding).
  encoding::DecodeOptions decode;
};

/// Per-epoch training diagnostics.
struct EpochStats {
  double recon_loss = 0.0;
  double kl = 0.0;
  double acceptance = 1.0;
  double seconds = 0.0;
};

/// Structured self-healing summary of one Train() call. All-zero (with
/// `final_learning_rate` = the configured rate) on a healthy run.
struct TrainReport {
  /// Epochs rejected by the divergence sentinels (non-finite loss,
  /// non-finite parameters, skipped gradients, or an injected fault).
  int divergence_events = 0;
  /// Best-checkpoint restores performed (each consumes one retry).
  int rollbacks = 0;
  /// Learning rate in effect when training finished.
  float final_learning_rate = 0.0f;
  /// Non-finite gradient entries skipped by the optimizer sentinels.
  uint64_t nonfinite_grads = 0;
  /// Per-tuple T(x) quantile updates skipped on a non-finite log-ratio.
  uint64_t nonfinite_log_ratios = 0;
  /// True when no finite calibration threshold survived and default_t fell
  /// back to accept-all (kTPlusInf).
  bool calibration_fallback = false;
};

struct TrainingStats {
  std::vector<EpochStats> epochs;  ///< healthy (kept) epochs only
  double total_seconds = 0.0;
  TrainReport report;
};

/// Health counters for one Generate() call. All-zero in a healthy run; the
/// non-zero fields describe how generation degraded under faults.
struct GenerateStats {
  size_t nonfinite_ratios = 0;  ///< candidates rejected: non-finite log-ratio
  size_t nonfinite_rows_dropped = 0;  ///< decoded rows scrubbed (NaN/Inf cell)
  size_t stalled_windows = 0;  ///< candidate windows that yielded no rows
  size_t forced_accept_windows = 0;  ///< windows pushed to accept-all mode
  void Merge(const GenerateStats& o) {
    nonfinite_ratios += o.nonfinite_ratios;
    nonfinite_rows_dropped += o.nonfinite_rows_dropped;
    stalled_windows += o.stalled_windows;
    forced_accept_windows += o.forced_accept_windows;
  }
};

/// Conditional generation outcome: the rows plus enough accounting for the
/// caller to see an under-sampled result instead of trusting num_rows()
/// blindly.
struct GenerateWhereResult {
  relation::Table rows;
  size_t requested = 0;
  size_t candidates = 0;  ///< model samples drawn while matching
  size_t shortfall() const {
    return rows.num_rows() < requested ? requested - rows.num_rows() : 0;
  }
};

/// The paper's primary artifact: a trained VAE + fitted tuple encoder that
/// generates synthetic relational samples for client-side AQP. Construction
/// is via Train() or Deserialize(); generation applies variational rejection
/// sampling at a caller-chosen threshold T.
class VaeAqpModel {
 public:
  /// Trains on `table`. `stats`, when non-null, receives per-epoch
  /// diagnostics (Fig. 12's training-time measurements).
  static util::Result<std::unique_ptr<VaeAqpModel>> Train(
      const relation::Table& table, const VaeAqpOptions& options,
      TrainingStats* stats = nullptr);

  /// Generates `n` synthetic tuples with rejection threshold `t`
  /// (kTPlusInf = no rejection). Candidate tuples x' are sampled from the
  /// decoder; each is accepted with probability
  /// min(1, e^t * p(x',z) / q(z|x')) (Eq. 8 with M' = e^{-t}). If a whole
  /// candidate window is rejected, the best-ratio candidate is taken so
  /// generation always terminates (this implements the T -> -inf limit).
  ///
  /// Generation is parallel and deterministic: the request is cut into
  /// fixed-size chunks, chunk i draws from the child stream
  /// Rng::ChildStream(master, i) where `master` is one value taken from
  /// `rng`, and chunks are concatenated in index order — so the output is
  /// bit-identical for every thread count, including the serial pool.
  ///
  /// Robustness: non-finite log-ratios are treated as rejections (counted in
  /// `stats`), decoded rows with non-finite numeric cells are scrubbed, and
  /// a window budget bounds the acceptance loop — a chunk that cannot make
  /// progress degrades to accept-all and ultimately returns fewer rows
  /// rather than spinning. Healthy runs never hit any of these paths, so
  /// outputs stay bit-identical to the unhardened loop.
  /// Const and self-contained (chunk-local arenas, cache-free net forwards),
  /// so a model shared read-only across server sessions can generate
  /// concurrently without synchronization.
  relation::Table Generate(size_t n, double t, util::Rng& rng,
                           GenerateStats* stats = nullptr) const;

  /// Generates with the calibrated default threshold (90th percentile of
  /// the per-tuple T(x) distribution from the final training epoch).
  relation::Table Generate(size_t n, util::Rng& rng) const {
    return Generate(n, default_t_, rng);
  }

  /// Conditional generation (the paper's Sec. VIII extension): produces up
  /// to `n` tuples satisfying `predicate` by rejecting non-matching model
  /// samples. The result reports the candidate budget spent and any
  /// shortfall, so callers can widen confidence intervals instead of
  /// silently under-sampling when `max_candidates` model samples do not
  /// yield enough matches (very selective predicates).
  GenerateWhereResult GenerateWhereReport(size_t n,
                                          const aqp::Predicate& predicate,
                                          double t, util::Rng& rng,
                                          size_t max_candidates = 1 << 20) const;

  /// Legacy table-only wrapper over GenerateWhereReport; WARN-logs any
  /// shortfall so under-sampling is at least visible in the logs.
  relation::Table GenerateWhere(size_t n, const aqp::Predicate& predicate,
                                double t, util::Rng& rng,
                                size_t max_candidates = 1 << 20) const;

  /// Adapts this model to the evaluation harness's SampleFn interface.
  aqp::SampleFn MakeSampler(double t, uint64_t seed = 99) const;

  /// Resampled-ELBO loss of this model on `table` at threshold `t` (lower
  /// is better; Sec. V-B). Evaluated on at most `max_rows` rows.
  double RElboLoss(const relation::Table& table, double t, util::Rng& rng,
                   size_t max_rows = 2048);

  /// Plain ELBO loss (equivalent to RElboLoss at t = +inf).
  double ElboLoss(const relation::Table& table, util::Rng& rng,
                  size_t max_rows = 2048);

  /// Calibrated generation threshold (Sec. VI-A's 90th-percentile rule).
  double default_t() const { return default_t_; }

  /// Serialized model size in bytes — the paper's "few hundred KBs"
  /// shipping artifact.
  size_t ModelSizeBytes() const;

  std::vector<uint8_t> Serialize() const;
  static util::Result<std::unique_ptr<VaeAqpModel>> Deserialize(
      const std::vector<uint8_t>& bytes);

  /// (Re)builds the decoder's quantized inference plan for `mode` from the
  /// canonical fp32 weights (kOff discards it). Generation uses the plan
  /// only while `mode` matches nn::ActiveQuantMode(); training and the
  /// serialized format stay fp32. Train()/Deserialize() call this
  /// automatically for the active mode, so explicit calls are only needed
  /// after switching modes at runtime (benchmarks, tests).
  util::Status PrepareQuantized(nn::QuantMode mode) {
    return net_->PrepareQuantizedDecoder(mode);
  }

  /// Mode of the currently prepared decoder plan (kOff when none).
  nn::QuantMode prepared_quant_mode() const {
    return net_->prepared_quant_mode();
  }

  const encoding::TupleEncoder& tuple_encoder() const { return encoder_; }
  VaeNet& net() { return *net_; }
  const VaeAqpOptions& options() const { return options_; }

  /// Output decoding is a client-side generation knob (Fig. 7); it can be
  /// changed after training without touching the learned weights.
  void set_decode_options(const encoding::DecodeOptions& decode) {
    options_.decode = decode;
  }

 private:
  VaeAqpModel() = default;

  /// Empty output table with the schema, declared cardinalities, and label
  /// dictionaries of the training relation.
  relation::Table MakeEmptySampleTable() const;

  /// Serial generation of one chunk's quota from its own rng stream. Const
  /// (uses the cache-free net inference paths) so chunks run concurrently.
  /// `stats` (required) accumulates this chunk's health counters.
  relation::Table GenerateChunk(size_t n, double t, util::Rng& rng,
                                GenerateStats* stats) const;

  VaeAqpOptions options_;
  encoding::TupleEncoder encoder_;
  std::unique_ptr<VaeNet> net_;
  double default_t_ = 0.0;
};

}  // namespace deepaqp::vae

#endif  // DEEPAQP_VAE_VAE_MODEL_H_
