#include "vae/workflow.h"

#include <algorithm>

namespace deepaqp::vae {

std::vector<std::vector<double>> ProjectToLatent(
    VaeAqpModel& model, const relation::Table& table) {
  nn::Matrix x = model.tuple_encoder().EncodeAll(table);
  VaeNet::Posterior post = model.net().Encode(x);
  std::vector<std::vector<double>> points(post.mu.rows());
  for (size_t r = 0; r < post.mu.rows(); ++r) {
    points[r].resize(post.mu.cols());
    for (size_t c = 0; c < post.mu.cols(); ++c) {
      points[r][c] = post.mu.At(r, c);
    }
  }
  return points;
}

util::Result<BiasEliminationResult> EliminateModelBias(
    VaeAqpModel& model, const relation::Table& data,
    const BiasEliminationOptions& options) {
  if (data.num_rows() < 2 * options.test_points) {
    return util::Status::InvalidArgument(
        "data too small for the requested cross-match sample size");
  }
  util::Rng rng(options.seed);
  BiasEliminationResult result;
  double t = options.initial_t;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    result.final_t = t;

    // Fresh real and synthetic samples each round (Algorithm 1 lines 2-8).
    relation::Table real = data.SampleRows(options.test_points, rng);
    relation::Table synthetic = model.Generate(options.test_points, t, rng);

    const auto points_d = ProjectToLatent(model, real);
    const auto points_m = ProjectToLatent(model, synthetic);
    DEEPAQP_ASSIGN_OR_RETURN(stats::CrossMatchResult test,
                             stats::CrossMatchTest(points_d, points_m, rng));
    result.tests.push_back(test);

    if (!test.Reject(options.alpha)) {
      result.passed = true;
      return result;
    }
    // H0 rejected: distributions still distinguishable; tighten T.
    t -= options.t_step;
  }
  result.passed = false;
  return result;
}

}  // namespace deepaqp::vae
