#include "vae/workflow.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace deepaqp::vae {

std::vector<std::vector<double>> ProjectToLatent(
    VaeAqpModel& model, const relation::Table& table) {
  nn::Matrix x = model.tuple_encoder().EncodeAll(table);
  VaeNet::Posterior post = model.net().Encode(x);
  std::vector<std::vector<double>> points(post.mu.rows());
  for (size_t r = 0; r < post.mu.rows(); ++r) {
    points[r].resize(post.mu.cols());
    for (size_t c = 0; c < post.mu.cols(); ++c) {
      points[r][c] = post.mu.At(r, c);
    }
  }
  return points;
}

util::Result<BiasEliminationResult> EliminateModelBias(
    VaeAqpModel& model, const relation::Table& data,
    const BiasEliminationOptions& options) {
  if (data.num_rows() < 2 * options.test_points) {
    return util::Status::InvalidArgument(
        "data too small for the requested cross-match sample size");
  }
  util::Rng rng(options.seed);
  util::Stopwatch watch;
  BiasEliminationResult result;
  double t = options.initial_t;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.max_seconds > 0.0 && iter > 0 &&
        watch.ElapsedSeconds() >= options.max_seconds) {
      result.outcome = BiasEliminationOutcome::kBudgetExhausted;
      result.warnings.push_back(
          "wall-clock budget of " + std::to_string(options.max_seconds) +
          "s exhausted after " + std::to_string(result.iterations) +
          " iterations with the test still rejecting");
      DEEPAQP_LOG(Warning) << "bias elimination: " << result.warnings.back();
      result.passed = false;
      return result;
    }
    ++result.iterations;
    result.final_t = t;

    // Fresh real and synthetic samples each round (Algorithm 1 lines 2-8).
    relation::Table real = data.SampleRows(options.test_points, rng);
    relation::Table synthetic = model.Generate(options.test_points, t, rng);

    const auto points_d = ProjectToLatent(model, real);
    const auto points_m = ProjectToLatent(model, synthetic);
    util::Result<stats::CrossMatchResult> test =
        stats::CrossMatchTest(points_d, points_m, rng);
    if (!test.ok()) {
      // A failed test round no longer aborts the workflow: the model is
      // still usable, just unvalidated — report a degraded best-effort
      // outcome so the client can widen its confidence intervals.
      result.outcome = BiasEliminationOutcome::kDegraded;
      result.warnings.push_back("cross-match round " +
                                std::to_string(result.iterations) +
                                " failed: " + test.status().ToString());
      DEEPAQP_LOG(Warning) << "bias elimination degraded: "
                           << result.warnings.back();
      result.passed = false;
      return result;
    }
    result.tests.push_back(*test);

    if (!test->Reject(options.alpha)) {
      result.passed = true;
      result.outcome = BiasEliminationOutcome::kPassed;
      return result;
    }
    // H0 rejected: distributions still distinguishable; tighten T.
    t -= options.t_step;
  }
  result.passed = false;
  result.outcome = BiasEliminationOutcome::kBudgetExhausted;
  result.warnings.push_back(
      "iteration budget of " + std::to_string(options.max_iterations) +
      " exhausted with the test still rejecting");
  return result;
}

}  // namespace deepaqp::vae
