#ifndef DEEPAQP_VAE_WORKFLOW_H_
#define DEEPAQP_VAE_WORKFLOW_H_

#include <string>
#include <vector>

#include "relation/table.h"
#include "stats/cross_match.h"
#include "util/rng.h"
#include "util/status.h"
#include "vae/vae_model.h"

namespace deepaqp::vae {

/// Options for the model-bias elimination loop (paper Algorithm 1).
struct BiasEliminationOptions {
  /// Significance level for rejecting H0 : P_D = P_M.
  double alpha = 0.05;
  /// Starting rejection threshold (Algorithm 1 starts at T = 0).
  double initial_t = 0.0;
  /// T decrement per failed test (Algorithm 1: T = T - 1).
  double t_step = 1.0;
  /// Abort after this many decrements even if the test still rejects.
  int max_iterations = 6;
  /// Points per side for the cross-match test.
  size_t test_points = 128;
  uint64_t seed = 17;
  /// Wall-clock budget in seconds; 0 means unlimited. Checked between
  /// iterations, so one in-flight test round always completes.
  double max_seconds = 0.0;
};

/// How an Algorithm 1 run ended.
enum class BiasEliminationOutcome {
  /// The cross-match test accepted H0 at `final_t`.
  kPassed,
  /// The iteration or wall-clock budget ran out with the test still
  /// rejecting; `final_t` is the last threshold attempted.
  kBudgetExhausted,
  /// A test round itself failed (matcher error, degenerate projection, or
  /// an injected fault); the result is best-effort and clients should
  /// widen confidence intervals rather than trust the model blindly.
  kDegraded,
};

/// Diagnostics of one Algorithm 1 run.
struct BiasEliminationResult {
  /// Threshold at which the hypothesis test finally passed (or the last
  /// attempted threshold when `passed` is false).
  double final_t = 0.0;
  bool passed = false;
  BiasEliminationOutcome outcome = BiasEliminationOutcome::kBudgetExhausted;
  int iterations = 0;
  /// p-value and statistic per iteration, in order.
  std::vector<stats::CrossMatchResult> tests;
  /// Human-readable notes on budget exhaustion / degraded rounds.
  std::vector<std::string> warnings;
};

/// Runs Algorithm 1: generate a model sample at threshold T, project both a
/// real sample and the model sample into the VAE's latent space (posterior
/// means), cross-match-test H0 : P_D = P_M, and lower T by `t_step` until
/// the test stops rejecting. The model is only used for data exploration
/// after it has passed the test (paper Sec. IV-D).
util::Result<BiasEliminationResult> EliminateModelBias(
    VaeAqpModel& model, const relation::Table& data,
    const BiasEliminationOptions& options);

/// Latent-space projection used by the test: posterior mean mu(x) of each
/// row of `table`, as dense double vectors.
std::vector<std::vector<double>> ProjectToLatent(VaeAqpModel& model,
                                                 const relation::Table& table);

}  // namespace deepaqp::vae

#endif  // DEEPAQP_VAE_WORKFLOW_H_
