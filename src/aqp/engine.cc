// The vectorized query engine behind the AQP layer. One dispatch point
// (ActiveEngine) selects between:
//
//  * kScalar — the seed row-at-a-time path: Predicate::Matches per row,
//    std::map group accumulators. Kept verbatim as the correctness oracle
//    and the `DEEPAQP_ENGINE=scalar` escape hatch.
//  * kVector — per-condition selection kernels producing bitmaps (one tight
//    loop per condition over the raw column, comparisons auto-vectorized),
//    word-wise AND/OR predicate combination, and a fused filter+aggregate
//    pass into dense array-indexed group accumulators.
//
// Determinism contract: the vector path visits matching rows in ascending
// row order and each group's moments see exactly the same sequence of
// additions as the scalar path, so results are bit-identical between the
// engines and across `--threads` settings. The only threaded piece is the
// selection scan on large tables (EvalPredicate fans out over fixed
// word-aligned row blocks, node-sharded for NUMA locality): the bitmap it
// builds is exact boolean state, so parallelizing it cannot change any
// result. All floating-point accumulation (AccumulateSelected) stays
// strictly serial in ascending row order.

#include "aqp/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "aqp/metrics.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace deepaqp::aqp {

namespace {

// ---------------------------------------------------------------------------
// Engine selection
// ---------------------------------------------------------------------------

EngineKind KindFromEnv() {
  const char* env = std::getenv("DEEPAQP_ENGINE");
  if (env == nullptr || env[0] == '\0') return EngineKind::kVector;
  const std::string value(env);
  if (value == "scalar") return EngineKind::kScalar;
  if (value == "vector") return EngineKind::kVector;
  std::fprintf(stderr,
               "DEEPAQP_ENGINE='%s' not recognized (scalar|vector); "
               "keeping 'vector'\n",
               env);
  return EngineKind::kVector;
}

EngineKind& EngineSlot() {
  static EngineKind kind = KindFromEnv();
  return kind;
}

}  // namespace

EngineKind ActiveEngine() { return EngineSlot(); }

void SetEngine(EngineKind kind) { EngineSlot() = kind; }

const char* EngineName(EngineKind kind) {
  return kind == EngineKind::kScalar ? "scalar" : "vector";
}

void ApplyEngineFlag(const util::Flags& flags) {
  const std::string value = flags.GetString("engine", "");
  if (value.empty()) return;
  if (value == "scalar") {
    SetEngine(EngineKind::kScalar);
  } else if (value == "vector") {
    SetEngine(EngineKind::kVector);
  } else {
    std::fprintf(stderr, "--engine=%s not recognized (scalar|vector)\n",
                 value.c_str());
    std::exit(2);
  }
}

// ---------------------------------------------------------------------------
// SelectionVector
// ---------------------------------------------------------------------------

void SelectionVector::Resize(size_t n) {
  words_.resize((n + kWordBits - 1) / kWordBits, 0);
  if (n < size_) {
    // Clear bits at and above n so CountRange never sees stale tail bits.
    const size_t w = n / kWordBits;
    if (w < words_.size()) {
      const size_t bit = n % kWordBits;
      words_[w] &= bit == 0 ? 0 : (~uint64_t{0} >> (kWordBits - bit));
      std::fill(words_.begin() + w + 1, words_.end(), 0);
    }
  }
  size_ = n;
}

size_t SelectionVector::CountRange(size_t begin, size_t end) const {
  if (begin >= end) return 0;
  size_t hits = 0;
  size_t w = begin / kWordBits;
  const size_t w_end = (end - 1) / kWordBits;
  uint64_t word = words_[w] & (~uint64_t{0} << (begin % kWordBits));
  for (;;) {
    if (w == w_end) {
      const size_t bit = end % kWordBits;
      if (bit != 0) word &= ~uint64_t{0} >> (kWordBits - bit);
      hits += static_cast<size_t>(__builtin_popcountll(word));
      return hits;
    }
    hits += static_cast<size_t>(__builtin_popcountll(word));
    word = words_[++w];
  }
}

// ---------------------------------------------------------------------------
// Selection kernels
// ---------------------------------------------------------------------------

namespace {

/// One tight comparison pass over a raw column slice: out[i] = col[begin+i]
/// OP value, with categorical codes widened to double first so the
/// comparison semantics are exactly Condition::Matches(CellAsDouble).
/// The op switch sits outside the loop; each loop body is branch-free and
/// auto-vectorizable.
template <typename T>
void FillConditionMask(const T* col, size_t begin, size_t end, CmpOp op,
                       double value, uint8_t* out) {
  const size_t n = end - begin;
  col += begin;
  switch (op) {
    case CmpOp::kEq:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) == value;
      break;
    case CmpOp::kNe:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) != value;
      break;
    case CmpOp::kLt:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) < value;
      break;
    case CmpOp::kGt:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) > value;
      break;
    case CmpOp::kLe:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) <= value;
      break;
    case CmpOp::kGe:
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<double>(col[i]) >= value;
      break;
  }
}

void FillCondition(const Condition& c, const relation::Table& table,
                   size_t begin, size_t end, uint8_t* out) {
  if (table.schema().IsCategorical(c.attr)) {
    FillConditionMask(table.CatColumn(c.attr).data(), begin, end, c.op,
                      c.value, out);
  } else {
    FillConditionMask(table.NumColumn(c.attr).data(), begin, end, c.op,
                      c.value, out);
  }
}

}  // namespace

namespace {

/// The serial predicate pass over rows [begin, end): byte masks per
/// condition, AND/OR combine, pack into the bitmap. Exactly the semantics
/// of Condition::Matches; bits outside the range are untouched provided
/// the range does not share a bitmap word with concurrent writers (the
/// parallel dispatcher below aligns its block boundaries to whole words).
void EvalPredicateRange(const Predicate& pred, const relation::Table& table,
                        size_t begin, size_t end, SelectionVector* sel) {
  const size_t n = end - begin;
  if (pred.conditions.empty()) {
    for (size_t r = begin; r < end; ++r) sel->Set(r);
    return;
  }
  std::vector<uint8_t> mask(n);
  FillCondition(pred.conditions[0], table, begin, end, mask.data());
  std::vector<uint8_t> scratch;
  for (size_t ci = 1; ci < pred.conditions.size(); ++ci) {
    scratch.resize(n);
    FillCondition(pred.conditions[ci], table, begin, end, scratch.data());
    if (pred.conjunctive) {
      for (size_t i = 0; i < n; ++i) mask[i] &= scratch[i];
    } else {
      for (size_t i = 0; i < n; ++i) mask[i] |= scratch[i];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) sel->Set(begin + i);
  }
}

/// Rows per parallel scan block. A multiple of SelectionVector::kWordBits
/// (so concurrent blocks never share a bitmap word) and fixed — never
/// derived from the thread count — so the block layout depends only on the
/// row range.
constexpr size_t kScanBlockRows = size_t{1} << 14;

/// Minimum range worth fanning out; below this the fork/join overhead
/// exceeds the scan itself.
constexpr size_t kParallelScanMinRows = size_t{1} << 16;

}  // namespace

void EvalPredicate(const Predicate& pred, const relation::Table& table,
                   size_t begin, size_t end, SelectionVector* sel) {
  sel->Resize(std::max(sel->size(), end));
  if (begin >= end) return;
  // Big scans fan out over fixed word-aligned row blocks, node-sharded so
  // pinned lanes scan the rows their node holds (the generation merge
  // first-touched them under the same sharding). The bitmap is an exact
  // boolean artifact — no floating-point accumulation — so the parallel
  // scan is bit-identical to the serial one at every thread count and
  // placement policy.
  if (end - begin >= kParallelScanMinRows && util::GlobalThreads() > 1) {
    const size_t first_block = begin / kScanBlockRows;
    const size_t last_block = (end - 1) / kScanBlockRows;
    util::ParallelForSharded(first_block, last_block + 1, [&](size_t b) {
      const size_t block_begin = std::max(begin, b * kScanBlockRows);
      const size_t block_end = std::min(end, (b + 1) * kScanBlockRows);
      EvalPredicateRange(pred, table, block_begin, block_end, sel);
    });
    return;
  }
  EvalPredicateRange(pred, table, begin, end, sel);
}

size_t CountMatches(const Predicate& pred, const relation::Table& table) {
  const size_t n = table.num_rows();
  if (pred.conditions.empty()) return n;
  if (ActiveEngine() == EngineKind::kScalar) {
    size_t hits = 0;
    for (size_t r = 0; r < n; ++r) {
      if (pred.Matches(table, r)) ++hits;
    }
    return hits;
  }
  SelectionVector sel;
  EvalPredicate(pred, table, 0, n, &sel);
  return sel.CountRange(0, n);
}

// ---------------------------------------------------------------------------
// Dense group accumulation
// ---------------------------------------------------------------------------

void DenseGroupMoments::EnsureGroups(size_t groups, bool with_values) {
  if (m.size() < groups) m.resize(groups);
  if (with_values && values.size() < groups) values.resize(groups);
}

void DenseGroupMoments::Clear() {
  std::fill(m.begin(), m.end(), Moments{});
  for (auto& v : values) v.clear();
}

void AccumulateSelected(const AggregateQuery& query,
                        const relation::Table& table,
                        const SelectionVector& sel, size_t begin, size_t end,
                        DenseGroupMoments* acc) {
  if (begin >= end) return;
  const bool group_by = query.IsGroupBy();
  const bool quantile = query.agg == AggFunc::kQuantile;
  const int32_t* codes =
      group_by
          ? table.CatColumn(static_cast<size_t>(query.group_by_attr)).data()
          : nullptr;
  const double* meas =
      query.agg == AggFunc::kCount
          ? nullptr
          : table.NumColumn(static_cast<size_t>(query.measure_attr)).data();

  if (!group_by && meas == nullptr) {
    // Scalar COUNT: a popcount, not a per-row loop. The moments stay exact
    // integers, so folding the block count in one addition is bit-identical
    // to the scalar path's repeated `+= 1.0`.
    const size_t hits = sel.CountRange(begin, end);
    Moments& m0 = acc->m[0];
    m0.count += hits;
    m0.sum += static_cast<double>(hits);
    m0.sum_sq += static_cast<double>(hits);
    return;
  }

  // Walk set bits in ascending row order: per-group additions happen in the
  // same sequence as the scalar row loop, so the sums are bit-identical.
  constexpr size_t kWordBits = SelectionVector::kWordBits;
  const std::vector<uint64_t>& words = sel.words();
  size_t w = begin / kWordBits;
  const size_t w_last = (end - 1) / kWordBits;
  uint64_t word = words[w] & (~uint64_t{0} << (begin % kWordBits));
  for (;; word = words[++w]) {
    if (w == w_last) {
      const size_t bit = end % kWordBits;
      if (bit != 0) word &= ~uint64_t{0} >> (kWordBits - bit);
    }
    while (word != 0) {
      const size_t r =
          w * kWordBits + static_cast<size_t>(__builtin_ctzll(word));
      word &= word - 1;
      const size_t slot = group_by ? static_cast<size_t>(codes[r]) : 0;
      const double x = meas == nullptr ? 1.0 : meas[r];
      acc->m[slot].Add(x);
      if (quantile) acc->values[slot].push_back(x);
    }
    if (w == w_last) break;
  }
}

std::vector<GroupMoments> ToGroupMoments(const DenseGroupMoments& acc,
                                         bool group_by) {
  std::vector<GroupMoments> out;
  if (!group_by) {
    if (!acc.m.empty() && acc.m[0].count > 0) {
      GroupMoments g;
      g.group = -1;
      g.m = acc.m[0];
      if (!acc.values.empty()) g.values = acc.values[0];
      out.push_back(std::move(g));
    }
    return out;
  }
  for (size_t slot = 0; slot < acc.m.size(); ++slot) {
    if (acc.m[slot].count == 0) continue;
    GroupMoments g;
    g.group = static_cast<int32_t>(slot);
    g.m = acc.m[slot];
    if (slot < acc.values.size()) g.values = acc.values[slot];
    out.push_back(std::move(g));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared accumulation walk (both engines)
// ---------------------------------------------------------------------------

std::vector<GroupMoments> AccumulateQuery(const AggregateQuery& query,
                                          const relation::Table& table) {
  const size_t n = table.num_rows();
  const bool group_by = query.IsGroupBy();
  const bool quantile = query.agg == AggFunc::kQuantile;

  if (ActiveEngine() == EngineKind::kVector) {
    SelectionVector sel;
    EvalPredicate(query.filter, table, 0, n, &sel);
    DenseGroupMoments acc;
    const size_t groups =
        group_by ? static_cast<size_t>(table.Cardinality(
                       static_cast<size_t>(query.group_by_attr)))
                 : 1;
    acc.EnsureGroups(std::max<size_t>(groups, 1), quantile);
    AccumulateSelected(query, table, sel, 0, n, &acc);
    return ToGroupMoments(acc, group_by);
  }

  // Scalar oracle: row-at-a-time filter, map-based accumulation.
  const auto gattr = static_cast<size_t>(std::max(query.group_by_attr, 0));
  const auto mattr = static_cast<size_t>(std::max(query.measure_attr, 0));
  std::map<int32_t, GroupMoments> acc;
  for (size_t r = 0; r < n; ++r) {
    if (!query.filter.Matches(table, r)) continue;
    const int32_t key = group_by ? table.CatCode(r, gattr) : -1;
    GroupMoments& g = acc[key];
    g.group = key;
    const double x =
        query.agg == AggFunc::kCount ? 1.0 : table.NumValue(r, mattr);
    g.m.Add(x);
    if (quantile) g.values.push_back(x);
  }
  std::vector<GroupMoments> out;
  out.reserve(acc.size());
  for (auto& [key, g] : acc) out.push_back(std::move(g));
  return out;
}

// ---------------------------------------------------------------------------
// Finalizers
// ---------------------------------------------------------------------------

namespace {

constexpr double kZ95 = 1.959963985;

/// Appends the scalar COUNT/SUM empty-selection convention: 0, not
/// "missing". AVG and QUANTILE of nothing stay absent.
void AddEmptyScalarConvention(const AggregateQuery& query,
                              QueryResult* result) {
  if (!query.IsGroupBy() && result->groups.empty() &&
      (query.agg == AggFunc::kCount || query.agg == AggFunc::kSum)) {
    result->groups.push_back(GroupValue{-1, 0.0, 0, 0.0});
  }
}

}  // namespace

double SampleQuantileOfSorted(const std::vector<double>& sorted, double q) {
  const double k = static_cast<double>(sorted.size());
  const double pos = q * (k - 1.0);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min<size_t>(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

QueryResult FinalizeExact(const AggregateQuery& query,
                          std::vector<GroupMoments> groups) {
  QueryResult result;
  for (GroupMoments& gm : groups) {
    GroupValue g;
    g.group = gm.group;
    g.support = gm.m.count;
    switch (query.agg) {
      case AggFunc::kCount:
        g.value = static_cast<double>(gm.m.count);
        break;
      case AggFunc::kSum:
        g.value = gm.m.sum;
        break;
      case AggFunc::kAvg:
        g.value = gm.m.sum / static_cast<double>(gm.m.count);
        break;
      case AggFunc::kQuantile:
        g.value = EmpiricalQuantile(std::move(gm.values), query.quantile);
        break;
    }
    result.groups.push_back(g);
  }
  AddEmptyScalarConvention(query, &result);
  return result;
}

QueryResult FinalizeEstimate(const AggregateQuery& query,
                             std::vector<GroupMoments> groups,
                             size_t sample_rows, size_t population_rows) {
  const double ns = static_cast<double>(sample_rows);
  const double scale = static_cast<double>(population_rows) / ns;
  QueryResult result;
  for (GroupMoments& gm : groups) {
    const Moments& m = gm.m;
    GroupValue g;
    g.group = gm.group;
    g.support = m.count;
    const double k = static_cast<double>(m.count);
    switch (query.agg) {
      case AggFunc::kCount: {
        g.value = scale * k;
        const double p = k / ns;
        g.ci_half_width = scale * kZ95 * std::sqrt(ns * p * (1.0 - p));
        break;
      }
      case AggFunc::kSum: {
        g.value = scale * m.sum;
        // Treat each sample tuple's contribution (value if in group, else 0)
        // as one draw; variance over all ns tuples.
        const double mean_contrib = m.sum / ns;
        const double var_contrib =
            std::max(0.0, m.sum_sq / ns - mean_contrib * mean_contrib);
        g.ci_half_width = scale * kZ95 * std::sqrt(var_contrib * ns);
        break;
      }
      case AggFunc::kAvg: {
        g.value = m.Mean();
        g.ci_half_width =
            m.count >= 2 ? kZ95 * std::sqrt(m.Variance() / k) : 0.0;
        break;
      }
      case AggFunc::kQuantile: {
        // Sample quantile; distribution-free CI from binomial order
        // statistics: the true q-quantile lies between the ranks
        // k*q -+ z*sqrt(k*q*(1-q)) with ~95% coverage.
        std::vector<double> values = std::move(gm.values);
        std::sort(values.begin(), values.end());
        const double q = query.quantile;
        const double center = k * q;
        const double spread = kZ95 * std::sqrt(k * q * (1.0 - q));
        const auto lo_rank =
            static_cast<size_t>(std::clamp(center - spread, 0.0, k - 1.0));
        const auto hi_rank =
            static_cast<size_t>(std::clamp(center + spread, 0.0, k - 1.0));
        g.value = SampleQuantileOfSorted(values, q);
        g.ci_half_width = (values[hi_rank] - values[lo_rank]) / 2.0;
        break;
      }
    }
    result.groups.push_back(g);
  }
  AddEmptyScalarConvention(query, &result);
  return result;
}

}  // namespace deepaqp::aqp
