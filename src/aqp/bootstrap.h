#ifndef DEEPAQP_AQP_BOOTSTRAP_H_
#define DEEPAQP_AQP_BOOTSTRAP_H_

#include "aqp/query.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Options for bootstrap confidence intervals (Efron & Tibshirani [15], the
/// classic AQP error-quantification technique the paper discusses in
/// Sec. IV-B). Note the paper's caveat: bootstrapping a *biased* sample
/// reproduces the bias — run it on samples that passed the cross-match test
/// (or on true uniform samples).
struct BootstrapOptions {
  int resamples = 200;
  /// Two-sided coverage level of the percentile interval.
  double confidence = 0.95;
  uint64_t seed = 1789;
};

/// Estimates `query` from `sample` (scaled to `population_rows`) and
/// attaches percentile-bootstrap confidence intervals to every group:
/// `value` is the plain estimate; `ci_half_width` is half the distance
/// between the (1-c)/2 and (1+c)/2 quantiles of the resampled estimates.
/// Groups that vanish in a resample are skipped for that replicate.
util::Result<QueryResult> BootstrapEstimate(const AggregateQuery& query,
                                            const relation::Table& sample,
                                            size_t population_rows,
                                            const BootstrapOptions& options);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_BOOTSTRAP_H_
