#include "aqp/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace deepaqp::aqp {

namespace {

/// Token kinds of the small SQL dialect.
enum class TokKind {
  kIdent,    // attribute names, keywords
  kNumber,   // numeric literal
  kString,   // 'quoted label'
  kSymbol,   // ( ) , * and comparison operators
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  util::Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back({TokKind::kIdent, text_.substr(start, pos_ - start)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
            text_[pos_ + 1] == '.'))) {
        size_t start = pos_;
        ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '-' || text_[pos_] == '+') &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
          ++pos_;
        }
        out.push_back({TokKind::kNumber, text_.substr(start, pos_ - start)});
        continue;
      }
      if (c == '\'') {
        size_t start = ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
        if (pos_ >= text_.size()) {
          return util::Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({TokKind::kString, text_.substr(start, pos_ - start)});
        ++pos_;
        continue;
      }
      // Multi-char comparison operators.
      if (c == '<' || c == '>' || c == '!') {
        std::string sym(1, c);
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
          sym += text_[pos_++];
        }
        out.push_back({TokKind::kSymbol, sym});
        continue;
      }
      if (c == '=' || c == '(' || c == ')' || c == ',' || c == '*') {
        out.push_back({TokKind::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      return util::Status::InvalidArgument(
          std::string("unexpected character '") + c + "' in query");
    }
    out.push_back({TokKind::kEnd, ""});
    return out;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const relation::Table& table)
      : tokens_(std::move(tokens)), table_(table) {}

  util::Result<AggregateQuery> Parse() {
    AggregateQuery query;
    DEEPAQP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    // Optional group-column prefix: SELECT g, AGG(A) ... (Sec. II's form).
    std::string select_group;
    if (Peek().kind == TokKind::kIdent && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokKind::kSymbol &&
        tokens_[pos_ + 1].text == ",") {
      select_group = Peek().text;
      pos_ += 2;
    }
    DEEPAQP_RETURN_IF_ERROR(ParseAggregate(&query));
    DEEPAQP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DEEPAQP_RETURN_IF_ERROR(Expect(TokKind::kIdent));  // relation name
    if (PeekKeyword("WHERE")) {
      ++pos_;
      DEEPAQP_RETURN_IF_ERROR(ParseFilter(&query));
    }
    if (PeekKeyword("GROUP")) {
      ++pos_;
      DEEPAQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DEEPAQP_ASSIGN_OR_RETURN(size_t attr, ParseAttribute());
      if (!table_.schema().IsCategorical(attr)) {
        return util::Status::InvalidArgument(
            "GROUP BY attribute must be categorical");
      }
      query.group_by_attr = static_cast<int>(attr);
    }
    if (!select_group.empty()) {
      if (!query.IsGroupBy() ||
          table_.schema()
                  .attribute(static_cast<size_t>(query.group_by_attr))
                  .name != select_group) {
        return util::Status::InvalidArgument(
            "SELECT column '" + select_group +
            "' must match the GROUP BY attribute");
      }
    }
    if (Peek().kind != TokKind::kEnd) {
      return util::Status::InvalidArgument("trailing tokens after query: " +
                                           Peek().text);
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw;
  }

  util::Status Expect(TokKind kind) {
    if (Peek().kind != kind) {
      return util::Status::InvalidArgument("unexpected token '" +
                                           Peek().text + "'");
    }
    ++pos_;
    return util::Status::OK();
  }

  util::Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return util::Status::InvalidArgument(
          std::string("expected ") + kw + " but found '" + Peek().text +
          "'");
    }
    ++pos_;
    return util::Status::OK();
  }

  util::Status ExpectSymbol(const char* sym) {
    if (Peek().kind != TokKind::kSymbol || Peek().text != sym) {
      return util::Status::InvalidArgument(
          std::string("expected '") + sym + "' but found '" + Peek().text +
          "'");
    }
    ++pos_;
    return util::Status::OK();
  }

  util::Result<size_t> ParseAttribute() {
    if (Peek().kind != TokKind::kIdent) {
      return util::Status::InvalidArgument("expected attribute name, found '" +
                                           Peek().text + "'");
    }
    const int idx = table_.schema().IndexOf(Peek().text);
    if (idx < 0) {
      return util::Status::NotFound("unknown attribute: " + Peek().text);
    }
    ++pos_;
    return static_cast<size_t>(idx);
  }

  util::Status ParseAggregate(AggregateQuery* query) {
    if (Peek().kind != TokKind::kIdent) {
      return util::Status::InvalidArgument("expected aggregate function");
    }
    const std::string agg = Upper(Peek().text);
    ++pos_;
    DEEPAQP_RETURN_IF_ERROR(ExpectSymbol("("));
    if (agg == "COUNT") {
      query->agg = AggFunc::kCount;
      // COUNT(*) or COUNT(attr) — both count qualifying tuples.
      if (Peek().kind == TokKind::kSymbol && Peek().text == "*") {
        ++pos_;
      } else {
        DEEPAQP_RETURN_IF_ERROR(ParseAttribute().status());
      }
    } else if (agg == "SUM" || agg == "AVG") {
      query->agg = agg == "SUM" ? AggFunc::kSum : AggFunc::kAvg;
      DEEPAQP_ASSIGN_OR_RETURN(size_t attr, ParseAttribute());
      query->measure_attr = static_cast<int>(attr);
    } else if (agg == "QUANTILE") {
      query->agg = AggFunc::kQuantile;
      if (Peek().kind != TokKind::kNumber) {
        return util::Status::InvalidArgument(
            "QUANTILE needs a numeric level as its first argument");
      }
      double level = 0.0;
      if (!util::ParseDouble(Peek().text, &level)) {
        return util::Status::InvalidArgument("bad quantile level");
      }
      query->quantile = level;
      ++pos_;
      DEEPAQP_RETURN_IF_ERROR(ExpectSymbol(","));
      DEEPAQP_ASSIGN_OR_RETURN(size_t attr, ParseAttribute());
      query->measure_attr = static_cast<int>(attr);
    } else {
      return util::Status::InvalidArgument("unknown aggregate: " + agg);
    }
    return ExpectSymbol(")");
  }

  util::Status ParseFilter(AggregateQuery* query) {
    bool saw_and = false, saw_or = false;
    for (;;) {
      DEEPAQP_RETURN_IF_ERROR(ParseCondition(query));
      if (PeekKeyword("AND")) {
        saw_and = true;
        ++pos_;
      } else if (PeekKeyword("OR")) {
        saw_or = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (saw_and && saw_or) {
      return util::Status::InvalidArgument(
          "mixed AND/OR filters are not supported (Sec. II: conjunctive or "
          "disjunctive)");
    }
    query->filter.conjunctive = !saw_or;
    return util::Status::OK();
  }

  util::Status ParseCondition(AggregateQuery* query) {
    DEEPAQP_ASSIGN_OR_RETURN(size_t attr, ParseAttribute());
    if (Peek().kind != TokKind::kSymbol) {
      return util::Status::InvalidArgument("expected comparison operator");
    }
    const std::string op_text = Peek().text;
    CmpOp op;
    if (op_text == "=") {
      op = CmpOp::kEq;
    } else if (op_text == "!=" || op_text == "<>") {
      op = CmpOp::kNe;
    } else if (op_text == "<") {
      op = CmpOp::kLt;
    } else if (op_text == ">") {
      op = CmpOp::kGt;
    } else if (op_text == "<=") {
      op = CmpOp::kLe;
    } else if (op_text == ">=") {
      op = CmpOp::kGe;
    } else {
      return util::Status::InvalidArgument("unknown operator: " + op_text);
    }
    ++pos_;

    double value = 0.0;
    if (Peek().kind == TokKind::kNumber) {
      if (!util::ParseDouble(Peek().text, &value)) {
        return util::Status::InvalidArgument("bad numeric constant");
      }
      ++pos_;
    } else if (Peek().kind == TokKind::kString) {
      if (!table_.schema().IsCategorical(attr)) {
        return util::Status::InvalidArgument(
            "quoted label used on numeric attribute");
      }
      const int32_t code = table_.dict(attr).Lookup(Peek().text);
      if (code < 0) {
        return util::Status::NotFound("unknown label '" + Peek().text +
                                      "' for attribute " +
                                      table_.schema().attribute(attr).name);
      }
      value = static_cast<double>(code);
      ++pos_;
    } else {
      return util::Status::InvalidArgument("expected constant, found '" +
                                           Peek().text + "'");
    }
    query->filter.conditions.push_back({attr, op, value});
    return util::Status::OK();
  }

  std::vector<Token> tokens_;
  const relation::Table& table_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<AggregateQuery> ParseSql(const std::string& text,
                                      const relation::Table& table) {
  Lexer lexer(text);
  DEEPAQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), table);
  return parser.Parse();
}

}  // namespace deepaqp::aqp
