#ifndef DEEPAQP_AQP_METRICS_H_
#define DEEPAQP_AQP_METRICS_H_

#include <vector>

#include "aqp/query.h"

namespace deepaqp::aqp {

/// Relative error |est - truth| / |truth| (paper Eq. 1). When truth == 0,
/// returns 0 if est == 0 and 1 otherwise (the bounded convention used by
/// AQP evaluations so zero-truth queries cannot produce infinite errors).
double RelativeError(double estimate, double truth);

/// Mean of per-query relative errors (paper Eq. 2).
double AverageRelativeError(const std::vector<double>& per_query_errors);

/// Relative error of an estimated result against the exact result
/// (paper Eq. 3 for GROUP BY): groups present in `truth` but missing from
/// `estimate` contribute a relative error of 1 (100%); the average is over
/// truth groups. Scalar queries degrade to Eq. 1. Extra spurious groups in
/// `estimate` are ignored, matching the paper's definition.
double ResultRelativeError(const QueryResult& estimate,
                           const QueryResult& truth);

/// Empirical q-quantile of `values` (linear interpolation between closest
/// ranks, the same rule behind the paper's 5th/25th/median/75th/95th
/// reporting). Returns quiet NaN on an empty vector — an empty error set is
/// a caller-visible condition, not a crash. q is clamped into [0, 1].
double EmpiricalQuantile(std::vector<double> values, double q);

/// Order statistics of an error distribution, for box-plot style reporting
/// (the paper reports 5th/25th/median/75th/95th percentiles).
struct DistributionSummary {
  double mean = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;

  static DistributionSummary FromValues(std::vector<double> values);
};

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_METRICS_H_
