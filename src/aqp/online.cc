#include "aqp/online.h"

#include <algorithm>
#include <cmath>

#include "aqp/engine.h"
#include "aqp/executor.h"

namespace deepaqp::aqp {

namespace {
constexpr double kZ95 = 1.959963985;
}  // namespace

OnlineAggregator::OnlineAggregator(AggregateQuery query,
                                   size_t population_rows)
    : query_(std::move(query)), population_rows_(population_rows) {}

util::Status OnlineAggregator::AddBatch(const relation::Table& batch) {
  if (query_.agg == AggFunc::kQuantile) {
    return util::Status::Unimplemented(
        "online aggregation maintains moments only; no quantiles");
  }
  DEEPAQP_RETURN_IF_ERROR(ValidateQuery(query_, batch));
  const bool group_by = query_.IsGroupBy();
  const auto gattr = static_cast<size_t>(std::max(query_.group_by_attr, 0));
  const auto mattr = static_cast<size_t>(std::max(query_.measure_attr, 0));
  const size_t n = batch.num_rows();

  if (ActiveEngine() == EngineKind::kVector) {
    // Filter the whole batch with the selection kernel, then merge only the
    // matched rows — still in ascending row order, so the running moments
    // are bit-identical to the scalar per-row loop.
    SelectionVector sel;
    EvalPredicate(query_.filter, batch, 0, n, &sel);
    const int32_t* codes = group_by ? batch.CatColumn(gattr).data() : nullptr;
    const double* meas = query_.agg == AggFunc::kCount
                             ? nullptr
                             : batch.NumColumn(mattr).data();
    tuples_seen_ += n;
    for (size_t r = 0; r < n; ++r) {
      if (!sel.Test(r)) continue;
      const int32_t key = group_by ? codes[r] : -1;
      groups_[key].Add(meas == nullptr ? 1.0 : meas[r]);
    }
    return util::Status::OK();
  }

  for (size_t r = 0; r < n; ++r) {
    ++tuples_seen_;
    if (!query_.filter.Matches(batch, r)) continue;
    const int32_t key = group_by ? batch.CatCode(r, gattr) : -1;
    groups_[key].Add(query_.agg == AggFunc::kCount ? 1.0
                                                   : batch.NumValue(r, mattr));
  }
  return util::Status::OK();
}

util::Result<QueryResult> OnlineAggregator::Current() const {
  if (tuples_seen_ == 0) {
    return util::Status::FailedPrecondition("no tuples consumed yet");
  }
  const double ns = static_cast<double>(tuples_seen_);
  const double scale = static_cast<double>(population_rows_) / ns;
  QueryResult result;
  for (const auto& [key, m] : groups_) {
    GroupValue g;
    g.group = key;
    g.support = m.count;
    const double k = static_cast<double>(m.count);
    switch (query_.agg) {
      case AggFunc::kCount: {
        g.value = scale * k;
        const double p = k / ns;
        g.ci_half_width = scale * kZ95 * std::sqrt(ns * p * (1.0 - p));
        break;
      }
      case AggFunc::kSum: {
        g.value = scale * m.sum;
        const double mean_contrib = m.sum / ns;
        const double var_contrib =
            std::max(0.0, m.sum_sq / ns - mean_contrib * mean_contrib);
        g.ci_half_width = scale * kZ95 * std::sqrt(var_contrib * ns);
        break;
      }
      case AggFunc::kAvg: {
        g.value = m.sum / k;
        if (m.count >= 2) {
          const double mean = m.sum / k;
          const double var = std::max(
              0.0, (m.sum_sq / k - mean * mean) * k / (k - 1.0));
          g.ci_half_width = kZ95 * std::sqrt(var / k);
        }
        break;
      }
      case AggFunc::kQuantile:
        break;  // rejected in AddBatch
    }
    result.groups.push_back(g);
  }
  if (!query_.IsGroupBy() && result.groups.empty() &&
      (query_.agg == AggFunc::kCount || query_.agg == AggFunc::kSum)) {
    result.groups.push_back(GroupValue{-1, 0.0, 0, 0.0});
  }
  return result;
}

bool OnlineAggregator::Converged(double target_relative_ci) const {
  auto current = Current();
  if (!current.ok() || current->groups.empty()) return false;
  for (const GroupValue& g : current->groups) {
    const double denom = std::abs(g.value);
    const double rel =
        denom > 0 ? g.ci_half_width / denom : g.ci_half_width;
    if (rel > target_relative_ci) return false;
  }
  return true;
}

}  // namespace deepaqp::aqp
