#ifndef DEEPAQP_AQP_EVALUATION_H_
#define DEEPAQP_AQP_EVALUATION_H_

#include <functional>
#include <vector>

#include "aqp/query.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Produces a synthetic or real sample table of (approximately) `rows` rows,
/// drawn with the given RNG. Model samplers (VAE, GAN, ...) and the uniform
/// table sampler both fit this signature, so every experiment harness can
/// sweep estimators uniformly.
using SampleFn =
    std::function<relation::Table(size_t rows, util::Rng& rng)>;

/// Wraps uniform row sampling of `table` as a SampleFn (the paper's reference
/// estimator: samples of the underlying relation R).
SampleFn UniformTableSampler(const relation::Table& table);

/// Options controlling the evaluation protocol of Sec. VI-A.
struct EvalOptions {
  /// Sample size as a fraction of the relation (paper default: 1%).
  double sample_fraction = 0.01;
  /// Number of independent sample draws averaged per query (paper: 10).
  int num_trials = 10;
  uint64_t seed = 42;
};

/// Per-query mean relative error of `sampler` against exact execution on
/// `table`, averaged over `options.num_trials` independent sample draws.
/// Queries that fail validation are skipped (reported as absent).
util::Result<std::vector<double>> WorkloadRelativeErrors(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const SampleFn& sampler,
    const EvalOptions& options);

/// Estimator that answers a query directly (without materializing samples),
/// e.g., pre-built models like DBEst or NeuralCubes. A non-OK result means
/// the model cannot serve the query (ad-hoc template); the harness assigns
/// it the maximal bounded error.
using AnswerFn =
    std::function<util::Result<QueryResult>(const AggregateQuery& query)>;

/// Per-query relative error of a direct-answering estimator against exact
/// execution (no sampling trials; such models are deterministic).
util::Result<std::vector<double>> WorkloadRelativeErrorsDirect(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const AnswerFn& answer);

/// The paper's headline metric (Sec. VI-A): per-query *relative error
/// difference* (RED) between a model-backed sampler and a true uniform
/// sample of the relation, |RE_model(q) - RE_uniform(q)|. Close to 0 means
/// the model's synthetic samples are as good as real samples.
util::Result<std::vector<double>> RelativeErrorDifferences(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const SampleFn& model_sampler,
    const EvalOptions& options);

/// RED for a direct-answering estimator: |RE_model(q) - RE_uniform(q)|
/// against the same uniform-sample reference as the sampling variant.
util::Result<std::vector<double>> RelativeErrorDifferencesDirect(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const AnswerFn& answer,
    const EvalOptions& options);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_EVALUATION_H_
