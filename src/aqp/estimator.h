#ifndef DEEPAQP_AQP_ESTIMATOR_H_
#define DEEPAQP_AQP_ESTIMATOR_H_

#include "aqp/query.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Classic sample-based AQP estimation (the technique the paper applies
/// transparently on top of model-generated samples, Sec. IV-A).
///
/// `sample` is treated as a uniform random sample of a relation with
/// `population_rows` tuples: COUNT and SUM estimates are scaled by
/// population_rows / sample_rows, AVG is the plain sample mean. Each group
/// carries a 95% CLT confidence-interval half-width:
///   AVG:   1.96 * s / sqrt(k)          (s = within-group sample stddev)
///   SUM:   scale * 1.96 * sqrt(n_s) * s_contrib  (per-tuple contribution
///          stddev over the whole sample, standard Horvitz-Thompson form)
///   COUNT: scale * 1.96 * sqrt(n_s * p * (1 - p))
util::Result<QueryResult> EstimateFromSample(const AggregateQuery& query,
                                             const relation::Table& sample,
                                             size_t population_rows);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_ESTIMATOR_H_
