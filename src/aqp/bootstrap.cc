#include "aqp/bootstrap.h"

#include <algorithm>
#include <map>
#include <vector>

#include "aqp/estimator.h"
#include "aqp/metrics.h"

namespace deepaqp::aqp {

util::Result<QueryResult> BootstrapEstimate(const AggregateQuery& query,
                                            const relation::Table& sample,
                                            size_t population_rows,
                                            const BootstrapOptions& options) {
  if (options.resamples < 2 || options.confidence <= 0.0 ||
      options.confidence >= 1.0) {
    return util::Status::InvalidArgument("bad bootstrap options");
  }
  DEEPAQP_ASSIGN_OR_RETURN(
      QueryResult point, EstimateFromSample(query, sample, population_rows));

  const size_t ns = sample.num_rows();
  util::Rng rng(options.seed);
  std::map<int32_t, std::vector<double>> replicate_values;
  std::vector<size_t> pick(ns);
  for (int b = 0; b < options.resamples; ++b) {
    for (size_t i = 0; i < ns; ++i) pick[i] = rng.NextIndex(ns);
    relation::Table resample = sample.Gather(pick);
    auto est = EstimateFromSample(query, resample, population_rows);
    if (!est.ok()) continue;
    for (const GroupValue& g : est->groups) {
      replicate_values[g.group].push_back(g.value);
    }
  }

  const double lo_q = (1.0 - options.confidence) / 2.0;
  const double hi_q = 1.0 - lo_q;
  for (GroupValue& g : point.groups) {
    auto it = replicate_values.find(g.group);
    if (it == replicate_values.end() || it->second.size() < 2) {
      continue;  // keep the CLT width from EstimateFromSample
    }
    const double lo = EmpiricalQuantile(it->second, lo_q);
    const double hi = EmpiricalQuantile(it->second, hi_q);
    g.ci_half_width = (hi - lo) / 2.0;
  }
  return point;
}

}  // namespace deepaqp::aqp
