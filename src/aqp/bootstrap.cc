#include "aqp/bootstrap.h"

#include <algorithm>
#include <map>
#include <vector>

#include "aqp/engine.h"
#include "aqp/estimator.h"
#include "aqp/metrics.h"

namespace deepaqp::aqp {

namespace {

/// One replicate's estimate for a group with at least one matching pick —
/// the same value formulas as FinalizeEstimate (the CI terms are not
/// needed per replicate). `values` is the group's retained measure values
/// (QUANTILE only); it is sorted in place.
double ReplicateValue(const AggregateQuery& query, const Moments& m,
                      std::vector<double>* values, double scale) {
  switch (query.agg) {
    case AggFunc::kCount:
      return scale * static_cast<double>(m.count);
    case AggFunc::kSum:
      return scale * m.sum;
    case AggFunc::kAvg:
      return m.Mean();
    case AggFunc::kQuantile:
      std::sort(values->begin(), values->end());
      return SampleQuantileOfSorted(*values, query.quantile);
  }
  return 0.0;
}

/// Resamples cached per-row contributions instead of materializing tables:
/// the filter bitmap, group codes, and measure column are computed/fetched
/// once, then each replicate is one pass over the pick vector into a dense
/// accumulator that is cleared (not reallocated) between replicates. No
/// Gather, no re-filtering, and — after the first replicate — no
/// allocation. Replicate values are bit-identical to running
/// EstimateFromSample on the materialized resample, because each group's
/// moments see the same additions in the same (pick) order.
void VectorReplicates(
    const AggregateQuery& query, const relation::Table& sample,
    size_t population_rows, const BootstrapOptions& options,
    std::map<int32_t, std::vector<double>>* replicate_values) {
  const size_t ns = sample.num_rows();
  const bool group_by = query.IsGroupBy();
  const bool quantile = query.agg == AggFunc::kQuantile;
  const double scale =
      static_cast<double>(population_rows) / static_cast<double>(ns);
  const int32_t* codes =
      group_by
          ? sample.CatColumn(static_cast<size_t>(query.group_by_attr)).data()
          : nullptr;
  const double* meas =
      query.agg == AggFunc::kCount
          ? nullptr
          : sample.NumColumn(static_cast<size_t>(query.measure_attr)).data();

  SelectionVector sel;
  EvalPredicate(query.filter, sample, 0, ns, &sel);
  // Byte mask for the random-access pattern of the replicate loop.
  std::vector<uint8_t> match(ns);
  for (size_t r = 0; r < ns; ++r) match[r] = sel.Test(r);

  DenseGroupMoments acc;
  const size_t groups =
      group_by ? static_cast<size_t>(sample.Cardinality(
                     static_cast<size_t>(query.group_by_attr)))
               : 1;
  acc.EnsureGroups(std::max<size_t>(groups, 1), quantile);

  util::Rng rng(options.seed);
  std::vector<size_t> pick(ns);
  for (int b = 0; b < options.resamples; ++b) {
    for (size_t i = 0; i < ns; ++i) pick[i] = rng.NextIndex(ns);
    acc.Clear();
    for (size_t i = 0; i < ns; ++i) {
      const size_t r = pick[i];
      if (!match[r]) continue;
      const size_t slot = group_by ? static_cast<size_t>(codes[r]) : 0;
      const double x = meas == nullptr ? 1.0 : meas[r];
      acc.m[slot].Add(x);
      if (quantile) acc.values[slot].push_back(x);
    }
    if (!group_by) {
      const Moments& m = acc.m[0];
      if (m.count > 0) {
        (*replicate_values)[-1].push_back(ReplicateValue(
            query, m, quantile ? &acc.values[0] : nullptr, scale));
      } else if (query.agg == AggFunc::kCount ||
                 query.agg == AggFunc::kSum) {
        // Empty-selection convention: the scalar path's EstimateFromSample
        // reports 0 for COUNT/SUM, so the replicate contributes 0.
        (*replicate_values)[-1].push_back(0.0);
      }
    } else {
      for (size_t slot = 0; slot < acc.m.size(); ++slot) {
        if (acc.m[slot].count == 0) continue;
        (*replicate_values)[static_cast<int32_t>(slot)].push_back(
            ReplicateValue(query, acc.m[slot],
                           quantile ? &acc.values[slot] : nullptr, scale));
      }
    }
  }
}

/// The scalar oracle: materialize every resample with Gather and run the
/// full estimator on it (`DEEPAQP_ENGINE=scalar`).
void ScalarReplicates(
    const AggregateQuery& query, const relation::Table& sample,
    size_t population_rows, const BootstrapOptions& options,
    std::map<int32_t, std::vector<double>>* replicate_values) {
  const size_t ns = sample.num_rows();
  util::Rng rng(options.seed);
  std::vector<size_t> pick(ns);
  for (int b = 0; b < options.resamples; ++b) {
    for (size_t i = 0; i < ns; ++i) pick[i] = rng.NextIndex(ns);
    relation::Table resample = sample.Gather(pick);
    auto est = EstimateFromSample(query, resample, population_rows);
    if (!est.ok()) continue;
    for (const GroupValue& g : est->groups) {
      (*replicate_values)[g.group].push_back(g.value);
    }
  }
}

}  // namespace

util::Result<QueryResult> BootstrapEstimate(const AggregateQuery& query,
                                            const relation::Table& sample,
                                            size_t population_rows,
                                            const BootstrapOptions& options) {
  if (options.resamples < 2 || options.confidence <= 0.0 ||
      options.confidence >= 1.0) {
    return util::Status::InvalidArgument("bad bootstrap options");
  }
  DEEPAQP_ASSIGN_OR_RETURN(
      QueryResult point, EstimateFromSample(query, sample, population_rows));

  std::map<int32_t, std::vector<double>> replicate_values;
  if (ActiveEngine() == EngineKind::kVector) {
    VectorReplicates(query, sample, population_rows, options,
                     &replicate_values);
  } else {
    ScalarReplicates(query, sample, population_rows, options,
                     &replicate_values);
  }

  const double lo_q = (1.0 - options.confidence) / 2.0;
  const double hi_q = 1.0 - lo_q;
  for (GroupValue& g : point.groups) {
    auto it = replicate_values.find(g.group);
    if (it == replicate_values.end() || it->second.size() < 2) {
      continue;  // keep the CLT width from EstimateFromSample
    }
    const double lo = EmpiricalQuantile(it->second, lo_q);
    const double hi = EmpiricalQuantile(it->second, hi_q);
    g.ci_half_width = (hi - lo) / 2.0;
  }
  return point;
}

}  // namespace deepaqp::aqp
