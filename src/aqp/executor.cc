#include "aqp/executor.h"

#include <algorithm>
#include <map>
#include <vector>

#include "aqp/metrics.h"

namespace deepaqp::aqp {

util::Status ValidateQuery(const AggregateQuery& query,
                           const relation::Table& table) {
  const relation::Schema& schema = table.schema();
  const size_t m = schema.num_attributes();
  if (query.agg != AggFunc::kCount) {
    if (query.measure_attr < 0 ||
        static_cast<size_t>(query.measure_attr) >= m) {
      return util::Status::InvalidArgument("measure attribute out of range");
    }
    if (!schema.IsNumeric(static_cast<size_t>(query.measure_attr))) {
      return util::Status::InvalidArgument(
          "SUM/AVG/QUANTILE measure attribute must be numeric");
    }
  }
  if (query.agg == AggFunc::kQuantile &&
      (query.quantile <= 0.0 || query.quantile >= 1.0)) {
    return util::Status::InvalidArgument("quantile must be in (0, 1)");
  }
  if (query.group_by_attr >= 0) {
    if (static_cast<size_t>(query.group_by_attr) >= m) {
      return util::Status::InvalidArgument("group-by attribute out of range");
    }
    if (!schema.IsCategorical(static_cast<size_t>(query.group_by_attr))) {
      return util::Status::InvalidArgument(
          "GROUP BY attribute must be categorical");
    }
  }
  for (const Condition& c : query.filter.conditions) {
    if (c.attr >= m) {
      return util::Status::InvalidArgument("filter attribute out of range");
    }
  }
  return util::Status::OK();
}

namespace {

/// Running aggregate state for one group.
struct GroupAccumulator {
  size_t count = 0;
  double sum = 0.0;
};

}  // namespace

util::Result<QueryResult> ExecuteExact(const AggregateQuery& query,
                                       const relation::Table& table) {
  DEEPAQP_RETURN_IF_ERROR(ValidateQuery(query, table));

  std::map<int32_t, GroupAccumulator> acc;
  std::map<int32_t, std::vector<double>> group_values;  // kQuantile only
  const size_t n = table.num_rows();
  const bool group_by = query.IsGroupBy();
  const auto gattr = static_cast<size_t>(query.group_by_attr);
  const auto mattr = static_cast<size_t>(std::max(query.measure_attr, 0));

  for (size_t r = 0; r < n; ++r) {
    if (!query.filter.Matches(table, r)) continue;
    const int32_t key = group_by ? table.CatCode(r, gattr) : -1;
    GroupAccumulator& a = acc[key];
    ++a.count;
    if (query.agg == AggFunc::kQuantile) {
      group_values[key].push_back(table.NumValue(r, mattr));
    } else if (query.agg != AggFunc::kCount) {
      a.sum += table.NumValue(r, mattr);
    }
  }

  QueryResult result;
  for (const auto& [key, a] : acc) {
    GroupValue g;
    g.group = key;
    g.support = a.count;
    switch (query.agg) {
      case AggFunc::kCount:
        g.value = static_cast<double>(a.count);
        break;
      case AggFunc::kSum:
        g.value = a.sum;
        break;
      case AggFunc::kAvg:
        g.value = a.sum / static_cast<double>(a.count);
        break;
      case AggFunc::kQuantile:
        g.value =
            EmpiricalQuantile(std::move(group_values[key]), query.quantile);
        break;
    }
    result.groups.push_back(g);
  }
  // Scalar COUNT/SUM of an empty selection is 0, not "missing"; AVG and
  // QUANTILE of nothing stay absent.
  if (!group_by && result.groups.empty() &&
      (query.agg == AggFunc::kCount || query.agg == AggFunc::kSum)) {
    result.groups.push_back(GroupValue{-1, 0.0, 0, 0.0});
  }
  return result;
}

double Selectivity(const AggregateQuery& query,
                   const relation::Table& table) {
  const size_t n = table.num_rows();
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < n; ++r) {
    if (query.filter.Matches(table, r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace deepaqp::aqp
