#include "aqp/executor.h"

#include <algorithm>
#include <vector>

#include "aqp/engine.h"

namespace deepaqp::aqp {

util::Status ValidateQuery(const AggregateQuery& query,
                           const relation::Table& table) {
  const relation::Schema& schema = table.schema();
  const size_t m = schema.num_attributes();
  if (query.agg != AggFunc::kCount) {
    if (query.measure_attr < 0 ||
        static_cast<size_t>(query.measure_attr) >= m) {
      return util::Status::InvalidArgument("measure attribute out of range");
    }
    if (!schema.IsNumeric(static_cast<size_t>(query.measure_attr))) {
      return util::Status::InvalidArgument(
          "SUM/AVG/QUANTILE measure attribute must be numeric");
    }
  }
  if (query.agg == AggFunc::kQuantile &&
      (query.quantile <= 0.0 || query.quantile >= 1.0)) {
    return util::Status::InvalidArgument("quantile must be in (0, 1)");
  }
  if (query.group_by_attr >= 0) {
    if (static_cast<size_t>(query.group_by_attr) >= m) {
      return util::Status::InvalidArgument("group-by attribute out of range");
    }
    if (!schema.IsCategorical(static_cast<size_t>(query.group_by_attr))) {
      return util::Status::InvalidArgument(
          "GROUP BY attribute must be categorical");
    }
  }
  for (const Condition& c : query.filter.conditions) {
    if (c.attr >= m) {
      return util::Status::InvalidArgument("filter attribute out of range");
    }
  }
  return util::Status::OK();
}

util::Result<QueryResult> ExecuteExact(const AggregateQuery& query,
                                       const relation::Table& table) {
  DEEPAQP_RETURN_IF_ERROR(ValidateQuery(query, table));
  return FinalizeExact(query, AccumulateQuery(query, table));
}

double Selectivity(const AggregateQuery& query,
                   const relation::Table& table) {
  const size_t n = table.num_rows();
  if (n == 0) return 0.0;
  return static_cast<double>(CountMatches(query.filter, table)) /
         static_cast<double>(n);
}

}  // namespace deepaqp::aqp
