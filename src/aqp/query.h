#ifndef DEEPAQP_AQP_QUERY_H_
#define DEEPAQP_AQP_QUERY_H_

#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"

namespace deepaqp::aqp {

/// Relational comparison operators allowed in filter conditions (Sec. II):
/// A op CONST with op in {=, !=, <, >, <=, >=}.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

const char* CmpOpName(CmpOp op);

/// One filter condition `attr op value`. For categorical attributes `value`
/// holds the (zero-based) domain code; for numeric attributes the constant
/// itself. Ordered comparisons on categorical attributes compare codes,
/// matching the paper's zero-indexed-domain convention.
struct Condition {
  size_t attr = 0;
  CmpOp op = CmpOp::kEq;
  double value = 0.0;

  bool Matches(double cell) const;
};

/// Conjunctive or disjunctive combination of conditions. An empty predicate
/// matches every tuple.
struct Predicate {
  std::vector<Condition> conditions;
  bool conjunctive = true;

  bool Matches(const relation::Table& table, size_t row) const;
};

/// Aggregate functions studied in the paper. COUNT ignores the measure
/// attribute. QUANTILE is the paper's Sec. II extension point ("one could
/// use other aggregates such as QUANTILES as long as a statistical
/// estimator exists").
enum class AggFunc {
  kCount,
  kSum,
  kAvg,
  kQuantile,
};

const char* AggFuncName(AggFunc agg);

/// SELECT [g,] AGG(A) FROM R WHERE filter [GROUP BY g].
struct AggregateQuery {
  AggFunc agg = AggFunc::kCount;
  /// Measure attribute index; ignored for COUNT. Must be numeric for
  /// SUM/AVG/QUANTILE.
  int measure_attr = -1;
  /// Quantile level in (0, 1) for AggFunc::kQuantile (0.5 = median).
  double quantile = 0.5;
  Predicate filter;
  /// Categorical group-by attribute index, or -1 for a scalar query.
  int group_by_attr = -1;

  bool IsGroupBy() const { return group_by_attr >= 0; }

  /// SQL-ish rendering for logs and reports.
  std::string ToString(const relation::Schema& schema) const;
};

/// One group's aggregate in a result; scalar queries use a single entry with
/// `group = -1`.
struct GroupValue {
  int32_t group = -1;
  double value = 0.0;
  /// Rows of the (possibly sample) table contributing to this group.
  size_t support = 0;
  /// Half-width of the 95% CLT confidence interval; 0 for exact results.
  double ci_half_width = 0.0;
};

/// Result of executing an aggregate query (exactly or approximately).
struct QueryResult {
  std::vector<GroupValue> groups;

  /// Scalar convenience accessor: value of the single group. Requires a
  /// non-group-by result with exactly one entry.
  double Scalar() const;

  /// Looks up a group's value; returns nullptr when the group is absent.
  const GroupValue* Find(int32_t group) const;
};

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_QUERY_H_
