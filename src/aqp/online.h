#ifndef DEEPAQP_AQP_ONLINE_H_
#define DEEPAQP_AQP_ONLINE_H_

#include <map>

#include "aqp/engine.h"
#include "aqp/query.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Online-aggregation adapter (Hellerstein et al. [25], Sec. VII): consumes
/// random sample tuples in batches — e.g., streamed out of a generative
/// model — and maintains a continuously refined estimate with CLT
/// confidence intervals. The consumer stops as soon as the interval is
/// tight enough. COUNT/SUM/AVG only (quantiles need value retention, use
/// EstimateFromSample).
class OnlineAggregator {
 public:
  /// `population_rows` scales COUNT/SUM estimates, exactly as in
  /// EstimateFromSample.
  OnlineAggregator(AggregateQuery query, size_t population_rows);

  /// Feeds one batch of uniform sample tuples. The batch schema must match
  /// the first batch's schema; the query must validate against it. Under
  /// the vector engine the filter runs as a selection-vector kernel over
  /// the batch; matched rows still merge into the running moments in row
  /// order, so the estimate stream is bit-identical to the scalar engine
  /// at every batch split.
  util::Status AddBatch(const relation::Table& batch);

  /// Current estimate (same shape as EstimateFromSample's result). Fails
  /// before any tuple has been consumed.
  util::Result<QueryResult> Current() const;

  /// True once every group's CI half-width is below `target` relative to
  /// its |value| (groups with value 0 compare absolutely). False before any
  /// data.
  bool Converged(double target_relative_ci) const;

  size_t tuples_seen() const { return tuples_seen_; }

 private:
  AggregateQuery query_;
  size_t population_rows_;
  size_t tuples_seen_ = 0;
  std::map<int32_t, Moments> groups_;
};

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_ONLINE_H_
