#ifndef DEEPAQP_AQP_ENGINE_H_
#define DEEPAQP_AQP_ENGINE_H_

#include <cstdint>
#include <vector>

#include "aqp/query.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::util {
class Flags;
}  // namespace deepaqp::util

namespace deepaqp::aqp {

/// Which query-evaluation implementation backs ExecuteExact,
/// EstimateFromSample, Selectivity, BootstrapEstimate, and
/// OnlineAggregator::AddBatch.
///
/// * kVector (default): per-condition selection-vector kernels over the
///   columnar Table (tight loops producing bitmaps, AND/OR-combined per
///   Predicate), fused filter+aggregate passes, and dense array-indexed
///   group accumulators. Every group's measure contributions accumulate in
///   ascending row order — exactly the order of the scalar path — so
///   results are bit-identical to kScalar, at every `--threads` setting.
/// * kScalar: the seed row-at-a-time Predicate::Matches loop with
///   std::map group accumulators, kept as the correctness oracle and the
///   `DEEPAQP_ENGINE=scalar` escape hatch.
enum class EngineKind { kScalar, kVector };

/// Active engine. Initialized once from the DEEPAQP_ENGINE environment
/// variable ("scalar" or "vector"; anything else warns and keeps the
/// default kVector).
EngineKind ActiveEngine();

/// Overrides the active engine. Not safe while queries are in flight; set
/// it up front (tests, benches, main()).
void SetEngine(EngineKind kind);

const char* EngineName(EngineKind kind);

/// Reads the `--engine=scalar|vector` flag and applies it (bench/tool
/// binaries; mirrors nn::ApplyKernelFlag). Unknown values abort with a
/// usage message.
void ApplyEngineFlag(const util::Flags& flags);

/// Row-selection bitmap: bit r is set iff row r of the scanned table
/// matches a predicate. Stored as 64-bit words so combining conditions and
/// counting matches are word-wide operations.
class SelectionVector {
 public:
  static constexpr size_t kWordBits = 64;

  size_t size() const { return size_; }

  /// Grows (or shrinks) to `n` bits; existing bits below `n` are preserved,
  /// new bits are zero.
  void Resize(size_t n);

  bool Test(size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void Set(size_t i) { words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits); }

  /// Number of set bits in [begin, end).
  size_t CountRange(size_t begin, size_t end) const;

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

/// Evaluates `pred` over rows [begin, end) of `table` into bits
/// [begin, end) of `sel` (resized to `end`; bits below `begin` are
/// preserved, which is what the append-only client cache relies on). Each
/// condition runs as one tight pass over its CatColumn/NumColumn — the
/// comparison semantics are exactly Condition::Matches on
/// Table::CellAsDouble, including categorical codes compared as doubles —
/// and condition masks are AND/OR-combined per Predicate::conjunctive. An
/// empty predicate sets every bit.
void EvalPredicate(const Predicate& pred, const relation::Table& table,
                   size_t begin, size_t end, SelectionVector* sel);

/// Number of rows of `table` matching `pred`, dispatched on ActiveEngine()
/// (the result is engine-independent; predicates are exact boolean tests).
size_t CountMatches(const Predicate& pred, const relation::Table& table);

/// Per-group running moments of the measure (or of the 0/1 membership
/// indicator for COUNT). Shared by the exact executor, the sample
/// estimator, the bootstrap replicate loop, and the online aggregator.
struct Moments {
  size_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double x) {
    ++count;
    sum += x;
    sum_sq += x * x;
  }

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  double Variance() const {
    if (count < 2) return 0.0;
    const double m = Mean();
    const double v = sum_sq / count - m * m;
    // Bessel correction; clamp tiny negative values from cancellation.
    return std::max(0.0, v * count / (count - 1.0));
  }
};

/// Accumulated state of one result group: moments of the measure plus, for
/// QUANTILE queries, the retained per-row measure values (in ascending row
/// order — the same order the scalar path retains them).
struct GroupMoments {
  int32_t group = -1;
  Moments m;
  std::vector<double> values;
};

/// Dense array-indexed group accumulator: slot g holds the moments of group
/// code g (slot 0 for scalar queries). Group codes are small non-negative
/// ints, so this replaces the scalar path's per-row std::map lookup with an
/// array index. Reused across calls (bootstrap replicates, the client
/// cache) without reallocating.
struct DenseGroupMoments {
  std::vector<Moments> m;
  std::vector<std::vector<double>> values;  // per-group, QUANTILE only

  /// Grows to `groups` slots (never shrinks); `with_values` additionally
  /// sizes the per-group value vectors.
  void EnsureGroups(size_t groups, bool with_values);

  /// Zeroes all moments and clears value vectors, keeping capacity.
  void Clear();
};

/// Fused aggregation pass: folds rows [begin, end) whose bit is set in
/// `sel` into `acc`, in ascending row order. The measure contribution is
/// 1.0 for COUNT and the measure column value otherwise; QUANTILE
/// additionally retains the values. `acc` must already span the group-by
/// cardinality (EnsureGroups).
void AccumulateSelected(const AggregateQuery& query,
                        const relation::Table& table,
                        const SelectionVector& sel, size_t begin, size_t end,
                        DenseGroupMoments* acc);

/// Converts a dense accumulator into the sparse sorted-by-code group list
/// the finalizers consume. Groups with no matching rows are absent, and a
/// scalar query's single slot becomes group -1 — exactly the scalar path's
/// std::map contents.
std::vector<GroupMoments> ToGroupMoments(const DenseGroupMoments& acc,
                                         bool group_by);

/// Walks `table` once and returns per-group moments for `query`,
/// dispatched on ActiveEngine(). The caller validates the query first.
std::vector<GroupMoments> AccumulateQuery(const AggregateQuery& query,
                                          const relation::Table& table);

/// Turns accumulated groups into ExecuteExact's result: COUNT/SUM/AVG from
/// the moments, QUANTILE via EmpiricalQuantile, plus the scalar COUNT/SUM
/// empty-selection-is-zero convention.
QueryResult FinalizeExact(const AggregateQuery& query,
                          std::vector<GroupMoments> groups);

/// Turns accumulated groups into EstimateFromSample's result: estimates
/// scaled by population_rows / sample_rows with 95% CLT (or order-
/// statistic, for QUANTILE) confidence intervals. Shares every formula
/// with the scalar estimator path bit-for-bit.
QueryResult FinalizeEstimate(const AggregateQuery& query,
                             std::vector<GroupMoments> groups,
                             size_t sample_rows, size_t population_rows);

/// The sample-quantile value of an already-sorted non-empty vector (linear
/// interpolation between closest ranks) — the interpolation rule of
/// EstimateFromSample's QUANTILE estimate, shared with the bootstrap
/// replicate loop so replicate values match the estimator bit-for-bit.
double SampleQuantileOfSorted(const std::vector<double>& sorted, double q);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_ENGINE_H_
