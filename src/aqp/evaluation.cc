#include "aqp/evaluation.h"

#include <algorithm>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"

namespace deepaqp::aqp {

SampleFn UniformTableSampler(const relation::Table& table) {
  return [&table](size_t rows, util::Rng& rng) {
    return table.SampleRows(std::min(rows, table.num_rows()), rng);
  };
}

util::Result<std::vector<double>> WorkloadRelativeErrors(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const SampleFn& sampler,
    const EvalOptions& options) {
  const size_t population = table.num_rows();
  const size_t sample_rows = std::max<size_t>(
      1, static_cast<size_t>(options.sample_fraction *
                             static_cast<double>(population)));

  // Exact answers once per query.
  std::vector<QueryResult> truths;
  truths.reserve(workload.size());
  for (const AggregateQuery& q : workload) {
    DEEPAQP_ASSIGN_OR_RETURN(QueryResult truth, ExecuteExact(q, table));
    truths.push_back(std::move(truth));
  }

  std::vector<double> errors(workload.size(), 0.0);
  util::Rng rng(options.seed);
  for (int trial = 0; trial < options.num_trials; ++trial) {
    const relation::Table sample = sampler(sample_rows, rng);
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      auto est = EstimateFromSample(workload[qi], sample, population);
      if (!est.ok()) {
        // An estimator that cannot answer at all gets the maximal bounded
        // error, mirroring the missing-group convention of Eq. 3.
        errors[qi] += 1.0;
        continue;
      }
      errors[qi] += ResultRelativeError(*est, truths[qi]);
    }
  }
  for (double& e : errors) e /= static_cast<double>(options.num_trials);
  return errors;
}

util::Result<std::vector<double>> WorkloadRelativeErrorsDirect(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const AnswerFn& answer) {
  std::vector<double> errors(workload.size(), 0.0);
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    DEEPAQP_ASSIGN_OR_RETURN(QueryResult truth,
                             ExecuteExact(workload[qi], table));
    auto est = answer(workload[qi]);
    errors[qi] = est.ok() ? ResultRelativeError(*est, truth) : 1.0;
  }
  return errors;
}

util::Result<std::vector<double>> RelativeErrorDifferencesDirect(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const AnswerFn& answer,
    const EvalOptions& options) {
  DEEPAQP_ASSIGN_OR_RETURN(
      std::vector<double> model_errors,
      WorkloadRelativeErrorsDirect(workload, table, answer));
  EvalOptions ref_options = options;
  ref_options.seed = options.seed + 0x5DEECE66Dull;
  DEEPAQP_ASSIGN_OR_RETURN(
      std::vector<double> ref_errors,
      WorkloadRelativeErrors(workload, table, UniformTableSampler(table),
                             ref_options));
  std::vector<double> red(workload.size());
  for (size_t i = 0; i < red.size(); ++i) {
    red[i] = std::abs(model_errors[i] - ref_errors[i]);
  }
  return red;
}

util::Result<std::vector<double>> RelativeErrorDifferences(
    const std::vector<AggregateQuery>& workload,
    const relation::Table& table, const SampleFn& model_sampler,
    const EvalOptions& options) {
  DEEPAQP_ASSIGN_OR_RETURN(
      std::vector<double> model_errors,
      WorkloadRelativeErrors(workload, table, model_sampler, options));
  EvalOptions ref_options = options;
  // Decorrelate the reference sampler's draws from the model's.
  ref_options.seed = options.seed + 0x5DEECE66Dull;
  DEEPAQP_ASSIGN_OR_RETURN(
      std::vector<double> ref_errors,
      WorkloadRelativeErrors(workload, table, UniformTableSampler(table),
                             ref_options));
  std::vector<double> red(workload.size());
  for (size_t i = 0; i < red.size(); ++i) {
    red[i] = std::abs(model_errors[i] - ref_errors[i]);
  }
  return red;
}

}  // namespace deepaqp::aqp
