#include "aqp/estimator.h"

#include "aqp/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace deepaqp::aqp {

namespace {

constexpr double kZ95 = 1.959963985;

/// Per-group running moments of the measure (or of the 0/1 membership
/// indicator for COUNT).
struct Moments {
  size_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void Add(double x) {
    ++count;
    sum += x;
    sum_sq += x * x;
  }

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  double Variance() const {
    if (count < 2) return 0.0;
    const double m = Mean();
    const double v = sum_sq / count - m * m;
    // Bessel correction; clamp tiny negative values from cancellation.
    return std::max(0.0, v * count / (count - 1.0));
  }
};

}  // namespace

util::Result<QueryResult> EstimateFromSample(const AggregateQuery& query,
                                             const relation::Table& sample,
                                             size_t population_rows) {
  DEEPAQP_RETURN_IF_ERROR(ValidateQuery(query, sample));
  const size_t ns = sample.num_rows();
  if (ns == 0) {
    return util::Status::FailedPrecondition("empty sample");
  }
  const double scale =
      static_cast<double>(population_rows) / static_cast<double>(ns);

  std::map<int32_t, Moments> acc;
  std::map<int32_t, std::vector<double>> group_values;  // kQuantile only
  const bool group_by = query.IsGroupBy();
  const auto gattr = static_cast<size_t>(query.group_by_attr);
  const auto mattr = static_cast<size_t>(std::max(query.measure_attr, 0));

  for (size_t r = 0; r < ns; ++r) {
    if (!query.filter.Matches(sample, r)) continue;
    const int32_t key = group_by ? sample.CatCode(r, gattr) : -1;
    acc[key].Add(query.agg == AggFunc::kCount ? 1.0
                                              : sample.NumValue(r, mattr));
    if (query.agg == AggFunc::kQuantile) {
      group_values[key].push_back(sample.NumValue(r, mattr));
    }
  }

  QueryResult result;
  for (const auto& [key, m] : acc) {
    GroupValue g;
    g.group = key;
    g.support = m.count;
    const double k = static_cast<double>(m.count);
    switch (query.agg) {
      case AggFunc::kCount: {
        g.value = scale * k;
        const double p = k / static_cast<double>(ns);
        g.ci_half_width =
            scale * kZ95 * std::sqrt(static_cast<double>(ns) * p * (1.0 - p));
        break;
      }
      case AggFunc::kSum: {
        g.value = scale * m.sum;
        // Treat each sample tuple's contribution (value if in group, else 0)
        // as one draw; variance over all ns tuples.
        const double mean_contrib = m.sum / static_cast<double>(ns);
        const double var_contrib =
            std::max(0.0, m.sum_sq / static_cast<double>(ns) -
                              mean_contrib * mean_contrib);
        g.ci_half_width =
            scale * kZ95 * std::sqrt(var_contrib * static_cast<double>(ns));
        break;
      }
      case AggFunc::kAvg: {
        g.value = m.Mean();
        g.ci_half_width = m.count >= 2
                              ? kZ95 * std::sqrt(m.Variance() / k)
                              : 0.0;
        break;
      }
      case AggFunc::kQuantile: {
        // Sample quantile; distribution-free CI from binomial order
        // statistics: the true q-quantile lies between the ranks
        // k*q -+ z*sqrt(k*q*(1-q)) with ~95% coverage.
        std::vector<double> values = std::move(group_values[key]);
        std::sort(values.begin(), values.end());
        const double q = query.quantile;
        const double center = k * q;
        const double spread = kZ95 * std::sqrt(k * q * (1.0 - q));
        const auto lo_rank = static_cast<size_t>(
            std::clamp(center - spread, 0.0, k - 1.0));
        const auto hi_rank = static_cast<size_t>(
            std::clamp(center + spread, 0.0, k - 1.0));
        const double pos = q * (k - 1.0);
        const auto lo = static_cast<size_t>(pos);
        const size_t hi = std::min<size_t>(lo + 1, values.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        g.value = values[lo] * (1.0 - frac) + values[hi] * frac;
        g.ci_half_width = (values[hi_rank] - values[lo_rank]) / 2.0;
        break;
      }
    }
    result.groups.push_back(g);
  }
  if (!group_by && result.groups.empty() &&
      (query.agg == AggFunc::kCount || query.agg == AggFunc::kSum)) {
    result.groups.push_back(GroupValue{-1, 0.0, 0, 0.0});
  }
  return result;
}

}  // namespace deepaqp::aqp
