#include "aqp/estimator.h"

#include "aqp/engine.h"
#include "aqp/executor.h"

namespace deepaqp::aqp {

util::Result<QueryResult> EstimateFromSample(const AggregateQuery& query,
                                             const relation::Table& sample,
                                             size_t population_rows) {
  DEEPAQP_RETURN_IF_ERROR(ValidateQuery(query, sample));
  const size_t ns = sample.num_rows();
  if (ns == 0) {
    return util::Status::FailedPrecondition("empty sample");
  }
  // Accumulation (engine-dispatched) and the estimate/CI formulas are the
  // shared helpers in aqp/engine.h, so this path, ExecuteExact, and the
  // bootstrap replicate loop all aggregate through the same code.
  return FinalizeEstimate(query, AccumulateQuery(query, sample), ns,
                          population_rows);
}

}  // namespace deepaqp::aqp
