#ifndef DEEPAQP_AQP_EXECUTOR_H_
#define DEEPAQP_AQP_EXECUTOR_H_

#include "aqp/query.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Validates that `query` is well-formed against `table`'s schema: attribute
/// indices in range, SUM/AVG measure is numeric, GROUP BY attribute is
/// categorical.
util::Status ValidateQuery(const AggregateQuery& query,
                           const relation::Table& table);

/// Exact evaluation of `query` over `table` by a full scan. Group-by results
/// are ordered by group code; groups with no matching tuples are absent.
/// AVG of an empty selection yields an empty result (no groups) rather than
/// NaN.
util::Result<QueryResult> ExecuteExact(const AggregateQuery& query,
                                       const relation::Table& table);

/// Fraction of `table` rows matching `query.filter` (1.0 for an empty
/// filter). Used to bucket workloads by selectivity (Fig. 3).
double Selectivity(const AggregateQuery& query, const relation::Table& table);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_EXECUTOR_H_
