#ifndef DEEPAQP_AQP_SQL_PARSER_H_
#define DEEPAQP_AQP_SQL_PARSER_H_

#include <string>

#include "aqp/query.h"
#include "relation/table.h"
#include "util/status.h"

namespace deepaqp::aqp {

/// Parses the paper's query dialect (Sec. II) from SQL-ish text:
///
///   SELECT AGG(measure | *) FROM R
///     [WHERE cond (AND|OR cond)*]
///     [GROUP BY attr]
///
/// with AGG in {COUNT, SUM, AVG, QUANTILE(q, attr)} and cond of the form
/// `attr op constant`, op in {=, !=, <>, <, >, <=, >=}. Categorical
/// constants may be quoted labels (resolved through the table's
/// dictionary) or bare codes. Mixing AND and OR is rejected (the paper's
/// filters are purely conjunctive or purely disjunctive). Keywords are
/// case-insensitive; attribute names and labels are case-sensitive.
///
/// Examples:
///   SELECT COUNT(*) FROM R WHERE pickup_borough = 'Manhattan'
///   SELECT AVG(fare) FROM R WHERE trip_distance > 2.5 GROUP BY hour
///   SELECT QUANTILE(0.9, dep_delay) FROM R WHERE month = 5
util::Result<AggregateQuery> ParseSql(const std::string& text,
                                      const relation::Table& table);

}  // namespace deepaqp::aqp

#endif  // DEEPAQP_AQP_SQL_PARSER_H_
