#include "aqp/query.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace deepaqp::aqp {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool Condition::Matches(double cell) const {
  switch (op) {
    case CmpOp::kEq:
      return cell == value;
    case CmpOp::kNe:
      return cell != value;
    case CmpOp::kLt:
      return cell < value;
    case CmpOp::kGt:
      return cell > value;
    case CmpOp::kLe:
      return cell <= value;
    case CmpOp::kGe:
      return cell >= value;
  }
  return false;
}

bool Predicate::Matches(const relation::Table& table, size_t row) const {
  if (conditions.empty()) return true;
  if (conjunctive) {
    for (const Condition& c : conditions) {
      if (!c.Matches(table.CellAsDouble(row, c.attr))) return false;
    }
    return true;
  }
  for (const Condition& c : conditions) {
    if (c.Matches(table.CellAsDouble(row, c.attr))) return true;
  }
  return false;
}

const char* AggFuncName(AggFunc agg) {
  switch (agg) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kQuantile:
      return "QUANTILE";
  }
  return "?";
}

std::string AggregateQuery::ToString(const relation::Schema& schema) const {
  std::string out = "SELECT ";
  if (IsGroupBy()) {
    out += schema.attribute(static_cast<size_t>(group_by_attr)).name + ", ";
  }
  out += AggFuncName(agg);
  out += "(";
  if (agg == AggFunc::kQuantile) {
    out += util::FormatDouble(quantile, 2) + ", ";
  }
  out += agg == AggFunc::kCount
             ? "*"
             : schema.attribute(static_cast<size_t>(measure_attr)).name;
  out += ") FROM R";
  if (!filter.conditions.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < filter.conditions.size(); ++i) {
      const Condition& c = filter.conditions[i];
      if (i > 0) out += filter.conjunctive ? " AND " : " OR ";
      out += schema.attribute(c.attr).name;
      out += " ";
      out += CmpOpName(c.op);
      out += " ";
      out += util::FormatDouble(c.value, schema.IsCategorical(c.attr) ? 0 : 3);
    }
  }
  if (IsGroupBy()) {
    out += " GROUP BY " +
           schema.attribute(static_cast<size_t>(group_by_attr)).name;
  }
  return out;
}

double QueryResult::Scalar() const {
  DEEPAQP_CHECK_EQ(groups.size(), 1u);
  DEEPAQP_CHECK_EQ(groups[0].group, -1);
  return groups[0].value;
}

const GroupValue* QueryResult::Find(int32_t group) const {
  for (const GroupValue& g : groups) {
    if (g.group == group) return &g;
  }
  return nullptr;
}

}  // namespace deepaqp::aqp
