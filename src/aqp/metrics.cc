#include "aqp/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace deepaqp::aqp {

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - truth) / std::abs(truth);
}

double AverageRelativeError(const std::vector<double>& per_query_errors) {
  if (per_query_errors.empty()) return 0.0;
  double sum = 0.0;
  for (double e : per_query_errors) sum += e;
  return sum / static_cast<double>(per_query_errors.size());
}

double ResultRelativeError(const QueryResult& estimate,
                           const QueryResult& truth) {
  if (truth.groups.empty()) {
    // Exact side has no qualifying groups; a correct estimate is also empty.
    return estimate.groups.empty() ? 0.0 : 1.0;
  }
  double total = 0.0;
  for (const GroupValue& t : truth.groups) {
    const GroupValue* e = estimate.Find(t.group);
    total += (e == nullptr) ? 1.0 : RelativeError(e->value, t.value);
  }
  return total / static_cast<double>(truth.groups.size());
}

namespace {

/// Linear interpolation between closest ranks of an already-sorted,
/// non-empty vector — the one interpolation rule shared by every quantile
/// the library reports (the paper's 5th/25th/median/75th/95th percentiles).
double QuantileOfSorted(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double EmpiricalQuantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  return QuantileOfSorted(values, q);
}

DistributionSummary DistributionSummary::FromValues(
    std::vector<double> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  s.p5 = QuantileOfSorted(values, 0.05);
  s.p25 = QuantileOfSorted(values, 0.25);
  s.median = QuantileOfSorted(values, 0.50);
  s.p75 = QuantileOfSorted(values, 0.75);
  s.p95 = QuantileOfSorted(values, 0.95);
  return s;
}

}  // namespace deepaqp::aqp
