file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_input_encoding.dir/bench_fig6_input_encoding.cpp.o"
  "CMakeFiles/bench_fig6_input_encoding.dir/bench_fig6_input_encoding.cpp.o.d"
  "bench_fig6_input_encoding"
  "bench_fig6_input_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_input_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
