# Empty dependencies file for bench_fig6_input_encoding.
# This may be replaced when dependencies are built.
