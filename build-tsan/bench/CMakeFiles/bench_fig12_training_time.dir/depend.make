# Empty dependencies file for bench_fig12_training_time.
# This may be replaced when dependencies are built.
