# Empty compiler generated dependencies file for bench_threads_scaling.
# This may be replaced when dependencies are built.
