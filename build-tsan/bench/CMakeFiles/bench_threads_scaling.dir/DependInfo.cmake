
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_threads_scaling.cpp" "bench/CMakeFiles/bench_threads_scaling.dir/bench_threads_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_threads_scaling.dir/bench_threads_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/vae/CMakeFiles/deepaqp_vae.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ensemble/CMakeFiles/deepaqp_ensemble.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/deepaqp_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/deepaqp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/aqp/CMakeFiles/deepaqp_aqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/deepaqp_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relation/CMakeFiles/deepaqp_relation.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/encoding/CMakeFiles/deepaqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/deepaqp_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
