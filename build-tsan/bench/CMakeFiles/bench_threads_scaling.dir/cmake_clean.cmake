file(REMOVE_RECURSE
  "CMakeFiles/bench_threads_scaling.dir/bench_threads_scaling.cpp.o"
  "CMakeFiles/bench_threads_scaling.dir/bench_threads_scaling.cpp.o.d"
  "bench_threads_scaling"
  "bench_threads_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threads_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
