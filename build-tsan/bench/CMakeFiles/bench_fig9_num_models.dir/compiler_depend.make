# Empty compiler generated dependencies file for bench_fig9_num_models.
# This may be replaced when dependencies are built.
