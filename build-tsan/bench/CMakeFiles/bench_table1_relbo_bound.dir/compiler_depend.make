# Empty compiler generated dependencies file for bench_table1_relbo_bound.
# This may be replaced when dependencies are built.
