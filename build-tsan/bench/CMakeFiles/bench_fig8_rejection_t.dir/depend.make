# Empty dependencies file for bench_fig8_rejection_t.
# This may be replaced when dependencies are built.
