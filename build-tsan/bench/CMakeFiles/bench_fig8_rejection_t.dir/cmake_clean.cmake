file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rejection_t.dir/bench_fig8_rejection_t.cpp.o"
  "CMakeFiles/bench_fig8_rejection_t.dir/bench_fig8_rejection_t.cpp.o.d"
  "bench_fig8_rejection_t"
  "bench_fig8_rejection_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rejection_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
