# Empty compiler generated dependencies file for bench_ablation_vrs.
# This may be replaced when dependencies are built.
