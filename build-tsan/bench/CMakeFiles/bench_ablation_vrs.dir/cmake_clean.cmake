file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vrs.dir/bench_ablation_vrs.cpp.o"
  "CMakeFiles/bench_ablation_vrs.dir/bench_ablation_vrs.cpp.o.d"
  "bench_ablation_vrs"
  "bench_ablation_vrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
