# Empty dependencies file for bench_ablation_decoder_draws.
# This may be replaced when dependencies are built.
