file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decoder_draws.dir/bench_ablation_decoder_draws.cpp.o"
  "CMakeFiles/bench_ablation_decoder_draws.dir/bench_ablation_decoder_draws.cpp.o.d"
  "bench_ablation_decoder_draws"
  "bench_ablation_decoder_draws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decoder_draws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
