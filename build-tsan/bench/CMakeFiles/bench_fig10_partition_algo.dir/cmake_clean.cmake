file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_partition_algo.dir/bench_fig10_partition_algo.cpp.o"
  "CMakeFiles/bench_fig10_partition_algo.dir/bench_fig10_partition_algo.cpp.o.d"
  "bench_fig10_partition_algo"
  "bench_fig10_partition_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_partition_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
