# Empty compiler generated dependencies file for bench_fig10_partition_algo.
# This may be replaced when dependencies are built.
