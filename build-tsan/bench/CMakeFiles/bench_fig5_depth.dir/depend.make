# Empty dependencies file for bench_fig5_depth.
# This may be replaced when dependencies are built.
