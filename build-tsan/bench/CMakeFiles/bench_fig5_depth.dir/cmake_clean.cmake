file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_depth.dir/bench_fig5_depth.cpp.o"
  "CMakeFiles/bench_fig5_depth.dir/bench_fig5_depth.cpp.o.d"
  "bench_fig5_depth"
  "bench_fig5_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
