# Empty dependencies file for bench_fig4_latent_dim.
# This may be replaced when dependencies are built.
