file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latent_dim.dir/bench_fig4_latent_dim.cpp.o"
  "CMakeFiles/bench_fig4_latent_dim.dir/bench_fig4_latent_dim.cpp.o.d"
  "bench_fig4_latent_dim"
  "bench_fig4_latent_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latent_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
