# Empty compiler generated dependencies file for bench_ablation_numeric_bins.
# This may be replaced when dependencies are built.
