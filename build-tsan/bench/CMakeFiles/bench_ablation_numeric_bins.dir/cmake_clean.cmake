file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_numeric_bins.dir/bench_ablation_numeric_bins.cpp.o"
  "CMakeFiles/bench_ablation_numeric_bins.dir/bench_ablation_numeric_bins.cpp.o.d"
  "bench_ablation_numeric_bins"
  "bench_ablation_numeric_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_numeric_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
