# Empty compiler generated dependencies file for bench_fig7_output_decoding.
# This may be replaced when dependencies are built.
