file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_output_decoding.dir/bench_fig7_output_decoding.cpp.o"
  "CMakeFiles/bench_fig7_output_decoding.dir/bench_fig7_output_decoding.cpp.o.d"
  "bench_fig7_output_decoding"
  "bench_fig7_output_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_output_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
