# Empty compiler generated dependencies file for bench_fig13_sampling_time.
# This may be replaced when dependencies are built.
