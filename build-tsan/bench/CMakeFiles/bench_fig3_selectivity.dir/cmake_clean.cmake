file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_selectivity.dir/bench_fig3_selectivity.cpp.o"
  "CMakeFiles/bench_fig3_selectivity.dir/bench_fig3_selectivity.cpp.o.d"
  "bench_fig3_selectivity"
  "bench_fig3_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
