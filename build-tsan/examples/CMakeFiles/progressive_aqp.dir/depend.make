# Empty dependencies file for progressive_aqp.
# This may be replaced when dependencies are built.
