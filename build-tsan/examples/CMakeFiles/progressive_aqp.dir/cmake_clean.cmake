file(REMOVE_RECURSE
  "CMakeFiles/progressive_aqp.dir/progressive_aqp.cpp.o"
  "CMakeFiles/progressive_aqp.dir/progressive_aqp.cpp.o.d"
  "progressive_aqp"
  "progressive_aqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_aqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
