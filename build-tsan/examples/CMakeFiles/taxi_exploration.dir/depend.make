# Empty dependencies file for taxi_exploration.
# This may be replaced when dependencies are built.
