file(REMOVE_RECURSE
  "CMakeFiles/taxi_exploration.dir/taxi_exploration.cpp.o"
  "CMakeFiles/taxi_exploration.dir/taxi_exploration.cpp.o.d"
  "taxi_exploration"
  "taxi_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
