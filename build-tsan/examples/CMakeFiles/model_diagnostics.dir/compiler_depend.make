# Empty compiler generated dependencies file for model_diagnostics.
# This may be replaced when dependencies are built.
