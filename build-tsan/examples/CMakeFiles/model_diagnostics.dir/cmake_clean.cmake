file(REMOVE_RECURSE
  "CMakeFiles/model_diagnostics.dir/model_diagnostics.cpp.o"
  "CMakeFiles/model_diagnostics.dir/model_diagnostics.cpp.o.d"
  "model_diagnostics"
  "model_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
