# Empty compiler generated dependencies file for census_ensemble.
# This may be replaced when dependencies are built.
