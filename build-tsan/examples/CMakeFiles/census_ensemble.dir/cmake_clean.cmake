file(REMOVE_RECURSE
  "CMakeFiles/census_ensemble.dir/census_ensemble.cpp.o"
  "CMakeFiles/census_ensemble.dir/census_ensemble.cpp.o.d"
  "census_ensemble"
  "census_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
