file(REMOVE_RECURSE
  "CMakeFiles/aqp_metrics_test.dir/aqp_metrics_test.cc.o"
  "CMakeFiles/aqp_metrics_test.dir/aqp_metrics_test.cc.o.d"
  "aqp_metrics_test"
  "aqp_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
