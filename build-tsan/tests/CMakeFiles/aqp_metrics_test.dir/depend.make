# Empty dependencies file for aqp_metrics_test.
# This may be replaced when dependencies are built.
