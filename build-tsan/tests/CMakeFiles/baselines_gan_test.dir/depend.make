# Empty dependencies file for baselines_gan_test.
# This may be replaced when dependencies are built.
