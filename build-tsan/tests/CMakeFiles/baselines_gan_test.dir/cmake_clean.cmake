file(REMOVE_RECURSE
  "CMakeFiles/baselines_gan_test.dir/baselines_gan_test.cc.o"
  "CMakeFiles/baselines_gan_test.dir/baselines_gan_test.cc.o.d"
  "baselines_gan_test"
  "baselines_gan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_gan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
