file(REMOVE_RECURSE
  "CMakeFiles/stats_cross_match_test.dir/stats_cross_match_test.cc.o"
  "CMakeFiles/stats_cross_match_test.dir/stats_cross_match_test.cc.o.d"
  "stats_cross_match_test"
  "stats_cross_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_cross_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
