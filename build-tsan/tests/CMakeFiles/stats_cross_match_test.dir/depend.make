# Empty dependencies file for stats_cross_match_test.
# This may be replaced when dependencies are built.
