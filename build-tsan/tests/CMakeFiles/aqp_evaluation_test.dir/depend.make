# Empty dependencies file for aqp_evaluation_test.
# This may be replaced when dependencies are built.
