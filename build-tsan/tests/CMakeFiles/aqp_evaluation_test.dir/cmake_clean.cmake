file(REMOVE_RECURSE
  "CMakeFiles/aqp_evaluation_test.dir/aqp_evaluation_test.cc.o"
  "CMakeFiles/aqp_evaluation_test.dir/aqp_evaluation_test.cc.o.d"
  "aqp_evaluation_test"
  "aqp_evaluation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
