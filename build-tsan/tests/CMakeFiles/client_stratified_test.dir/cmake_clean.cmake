file(REMOVE_RECURSE
  "CMakeFiles/client_stratified_test.dir/client_stratified_test.cc.o"
  "CMakeFiles/client_stratified_test.dir/client_stratified_test.cc.o.d"
  "client_stratified_test"
  "client_stratified_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_stratified_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
