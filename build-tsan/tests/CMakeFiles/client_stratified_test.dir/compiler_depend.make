# Empty compiler generated dependencies file for client_stratified_test.
# This may be replaced when dependencies are built.
