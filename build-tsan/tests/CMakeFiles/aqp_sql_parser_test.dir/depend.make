# Empty dependencies file for aqp_sql_parser_test.
# This may be replaced when dependencies are built.
