file(REMOVE_RECURSE
  "CMakeFiles/aqp_sql_parser_test.dir/aqp_sql_parser_test.cc.o"
  "CMakeFiles/aqp_sql_parser_test.dir/aqp_sql_parser_test.cc.o.d"
  "aqp_sql_parser_test"
  "aqp_sql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_sql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
