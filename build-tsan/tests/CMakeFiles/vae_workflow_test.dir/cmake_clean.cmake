file(REMOVE_RECURSE
  "CMakeFiles/vae_workflow_test.dir/vae_workflow_test.cc.o"
  "CMakeFiles/vae_workflow_test.dir/vae_workflow_test.cc.o.d"
  "vae_workflow_test"
  "vae_workflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vae_workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
