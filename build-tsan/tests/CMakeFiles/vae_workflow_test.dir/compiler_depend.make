# Empty compiler generated dependencies file for vae_workflow_test.
# This may be replaced when dependencies are built.
