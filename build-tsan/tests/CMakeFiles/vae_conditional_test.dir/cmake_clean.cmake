file(REMOVE_RECURSE
  "CMakeFiles/vae_conditional_test.dir/vae_conditional_test.cc.o"
  "CMakeFiles/vae_conditional_test.dir/vae_conditional_test.cc.o.d"
  "vae_conditional_test"
  "vae_conditional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vae_conditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
