# Empty dependencies file for vae_conditional_test.
# This may be replaced when dependencies are built.
