# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for aqp_bootstrap_online_test.
