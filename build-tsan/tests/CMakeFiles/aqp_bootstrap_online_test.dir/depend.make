# Empty dependencies file for aqp_bootstrap_online_test.
# This may be replaced when dependencies are built.
