file(REMOVE_RECURSE
  "CMakeFiles/aqp_bootstrap_online_test.dir/aqp_bootstrap_online_test.cc.o"
  "CMakeFiles/aqp_bootstrap_online_test.dir/aqp_bootstrap_online_test.cc.o.d"
  "aqp_bootstrap_online_test"
  "aqp_bootstrap_online_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_bootstrap_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
