# Empty compiler generated dependencies file for param_encoding_test.
# This may be replaced when dependencies are built.
