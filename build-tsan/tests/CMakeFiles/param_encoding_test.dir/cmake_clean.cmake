file(REMOVE_RECURSE
  "CMakeFiles/param_encoding_test.dir/param_encoding_test.cc.o"
  "CMakeFiles/param_encoding_test.dir/param_encoding_test.cc.o.d"
  "param_encoding_test"
  "param_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
