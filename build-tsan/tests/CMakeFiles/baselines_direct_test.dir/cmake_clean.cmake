file(REMOVE_RECURSE
  "CMakeFiles/baselines_direct_test.dir/baselines_direct_test.cc.o"
  "CMakeFiles/baselines_direct_test.dir/baselines_direct_test.cc.o.d"
  "baselines_direct_test"
  "baselines_direct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_direct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
