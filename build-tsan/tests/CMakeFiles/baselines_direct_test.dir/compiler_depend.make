# Empty compiler generated dependencies file for baselines_direct_test.
# This may be replaced when dependencies are built.
