# Empty compiler generated dependencies file for ensemble_partitioning_test.
# This may be replaced when dependencies are built.
