file(REMOVE_RECURSE
  "CMakeFiles/ensemble_partitioning_test.dir/ensemble_partitioning_test.cc.o"
  "CMakeFiles/ensemble_partitioning_test.dir/ensemble_partitioning_test.cc.o.d"
  "ensemble_partitioning_test"
  "ensemble_partitioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
