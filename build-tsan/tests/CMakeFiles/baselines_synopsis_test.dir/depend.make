# Empty dependencies file for baselines_synopsis_test.
# This may be replaced when dependencies are built.
