file(REMOVE_RECURSE
  "CMakeFiles/baselines_synopsis_test.dir/baselines_synopsis_test.cc.o"
  "CMakeFiles/baselines_synopsis_test.dir/baselines_synopsis_test.cc.o.d"
  "baselines_synopsis_test"
  "baselines_synopsis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_synopsis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
