# Empty dependencies file for aqp_quantile_test.
# This may be replaced when dependencies are built.
