file(REMOVE_RECURSE
  "CMakeFiles/aqp_quantile_test.dir/aqp_quantile_test.cc.o"
  "CMakeFiles/aqp_quantile_test.dir/aqp_quantile_test.cc.o.d"
  "aqp_quantile_test"
  "aqp_quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
