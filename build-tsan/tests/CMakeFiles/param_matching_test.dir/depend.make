# Empty dependencies file for param_matching_test.
# This may be replaced when dependencies are built.
