file(REMOVE_RECURSE
  "CMakeFiles/param_matching_test.dir/param_matching_test.cc.o"
  "CMakeFiles/param_matching_test.dir/param_matching_test.cc.o.d"
  "param_matching_test"
  "param_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
