
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/param_matching_test.cc" "tests/CMakeFiles/param_matching_test.dir/param_matching_test.cc.o" "gcc" "tests/CMakeFiles/param_matching_test.dir/param_matching_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/deepaqp_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
