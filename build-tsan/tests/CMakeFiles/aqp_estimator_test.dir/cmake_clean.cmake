file(REMOVE_RECURSE
  "CMakeFiles/aqp_estimator_test.dir/aqp_estimator_test.cc.o"
  "CMakeFiles/aqp_estimator_test.dir/aqp_estimator_test.cc.o.d"
  "aqp_estimator_test"
  "aqp_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
