file(REMOVE_RECURSE
  "CMakeFiles/util_serialize_fuzz_test.dir/util_serialize_fuzz_test.cc.o"
  "CMakeFiles/util_serialize_fuzz_test.dir/util_serialize_fuzz_test.cc.o.d"
  "util_serialize_fuzz_test"
  "util_serialize_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_serialize_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
