file(REMOVE_RECURSE
  "CMakeFiles/stats_matching_test.dir/stats_matching_test.cc.o"
  "CMakeFiles/stats_matching_test.dir/stats_matching_test.cc.o.d"
  "stats_matching_test"
  "stats_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
