# Empty compiler generated dependencies file for stats_matching_test.
# This may be replaced when dependencies are built.
