file(REMOVE_RECURSE
  "CMakeFiles/param_estimator_test.dir/param_estimator_test.cc.o"
  "CMakeFiles/param_estimator_test.dir/param_estimator_test.cc.o.d"
  "param_estimator_test"
  "param_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
