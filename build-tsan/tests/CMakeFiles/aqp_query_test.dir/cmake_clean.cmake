file(REMOVE_RECURSE
  "CMakeFiles/aqp_query_test.dir/aqp_query_test.cc.o"
  "CMakeFiles/aqp_query_test.dir/aqp_query_test.cc.o.d"
  "aqp_query_test"
  "aqp_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
