# Empty compiler generated dependencies file for aqp_query_test.
# This may be replaced when dependencies are built.
