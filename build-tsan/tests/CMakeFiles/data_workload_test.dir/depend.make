# Empty dependencies file for data_workload_test.
# This may be replaced when dependencies are built.
