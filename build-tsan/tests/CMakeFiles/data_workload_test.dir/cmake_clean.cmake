file(REMOVE_RECURSE
  "CMakeFiles/data_workload_test.dir/data_workload_test.cc.o"
  "CMakeFiles/data_workload_test.dir/data_workload_test.cc.o.d"
  "data_workload_test"
  "data_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
