# Empty dependencies file for vae_model_test.
# This may be replaced when dependencies are built.
