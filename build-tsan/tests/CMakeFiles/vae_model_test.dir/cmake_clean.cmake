file(REMOVE_RECURSE
  "CMakeFiles/vae_model_test.dir/vae_model_test.cc.o"
  "CMakeFiles/vae_model_test.dir/vae_model_test.cc.o.d"
  "vae_model_test"
  "vae_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vae_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
