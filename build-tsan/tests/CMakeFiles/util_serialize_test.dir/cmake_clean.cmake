file(REMOVE_RECURSE
  "CMakeFiles/util_serialize_test.dir/util_serialize_test.cc.o"
  "CMakeFiles/util_serialize_test.dir/util_serialize_test.cc.o.d"
  "util_serialize_test"
  "util_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
