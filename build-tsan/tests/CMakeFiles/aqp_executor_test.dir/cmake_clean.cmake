file(REMOVE_RECURSE
  "CMakeFiles/aqp_executor_test.dir/aqp_executor_test.cc.o"
  "CMakeFiles/aqp_executor_test.dir/aqp_executor_test.cc.o.d"
  "aqp_executor_test"
  "aqp_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqp_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
