file(REMOVE_RECURSE
  "CMakeFiles/relation_project_test.dir/relation_project_test.cc.o"
  "CMakeFiles/relation_project_test.dir/relation_project_test.cc.o.d"
  "relation_project_test"
  "relation_project_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_project_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
