file(REMOVE_RECURSE
  "CMakeFiles/vae_net_test.dir/vae_net_test.cc.o"
  "CMakeFiles/vae_net_test.dir/vae_net_test.cc.o.d"
  "vae_net_test"
  "vae_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vae_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
