# Empty dependencies file for vae_net_test.
# This may be replaced when dependencies are built.
