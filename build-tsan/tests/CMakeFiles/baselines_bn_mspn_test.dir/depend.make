# Empty dependencies file for baselines_bn_mspn_test.
# This may be replaced when dependencies are built.
