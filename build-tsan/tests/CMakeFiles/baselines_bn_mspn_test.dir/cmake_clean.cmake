file(REMOVE_RECURSE
  "CMakeFiles/baselines_bn_mspn_test.dir/baselines_bn_mspn_test.cc.o"
  "CMakeFiles/baselines_bn_mspn_test.dir/baselines_bn_mspn_test.cc.o.d"
  "baselines_bn_mspn_test"
  "baselines_bn_mspn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_bn_mspn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
