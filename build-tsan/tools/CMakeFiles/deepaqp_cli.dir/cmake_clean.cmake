file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_cli.dir/deepaqp_cli.cpp.o"
  "CMakeFiles/deepaqp_cli.dir/deepaqp_cli.cpp.o.d"
  "deepaqp_cli"
  "deepaqp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
