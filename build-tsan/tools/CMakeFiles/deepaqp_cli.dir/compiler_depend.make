# Empty compiler generated dependencies file for deepaqp_cli.
# This may be replaced when dependencies are built.
