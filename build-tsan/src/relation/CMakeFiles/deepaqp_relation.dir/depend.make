# Empty dependencies file for deepaqp_relation.
# This may be replaced when dependencies are built.
