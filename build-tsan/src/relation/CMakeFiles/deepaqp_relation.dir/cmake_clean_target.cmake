file(REMOVE_RECURSE
  "libdeepaqp_relation.a"
)
