file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_relation.dir/csv.cc.o"
  "CMakeFiles/deepaqp_relation.dir/csv.cc.o.d"
  "CMakeFiles/deepaqp_relation.dir/dictionary.cc.o"
  "CMakeFiles/deepaqp_relation.dir/dictionary.cc.o.d"
  "CMakeFiles/deepaqp_relation.dir/schema.cc.o"
  "CMakeFiles/deepaqp_relation.dir/schema.cc.o.d"
  "CMakeFiles/deepaqp_relation.dir/table.cc.o"
  "CMakeFiles/deepaqp_relation.dir/table.cc.o.d"
  "libdeepaqp_relation.a"
  "libdeepaqp_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
