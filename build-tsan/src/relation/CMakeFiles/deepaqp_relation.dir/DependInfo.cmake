
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/csv.cc" "src/relation/CMakeFiles/deepaqp_relation.dir/csv.cc.o" "gcc" "src/relation/CMakeFiles/deepaqp_relation.dir/csv.cc.o.d"
  "/root/repo/src/relation/dictionary.cc" "src/relation/CMakeFiles/deepaqp_relation.dir/dictionary.cc.o" "gcc" "src/relation/CMakeFiles/deepaqp_relation.dir/dictionary.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/relation/CMakeFiles/deepaqp_relation.dir/schema.cc.o" "gcc" "src/relation/CMakeFiles/deepaqp_relation.dir/schema.cc.o.d"
  "/root/repo/src/relation/table.cc" "src/relation/CMakeFiles/deepaqp_relation.dir/table.cc.o" "gcc" "src/relation/CMakeFiles/deepaqp_relation.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
