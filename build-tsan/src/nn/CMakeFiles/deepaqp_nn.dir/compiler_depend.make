# Empty compiler generated dependencies file for deepaqp_nn.
# This may be replaced when dependencies are built.
