file(REMOVE_RECURSE
  "libdeepaqp_nn.a"
)
