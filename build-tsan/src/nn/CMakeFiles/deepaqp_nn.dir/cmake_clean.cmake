file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_nn.dir/layers.cc.o"
  "CMakeFiles/deepaqp_nn.dir/layers.cc.o.d"
  "CMakeFiles/deepaqp_nn.dir/loss.cc.o"
  "CMakeFiles/deepaqp_nn.dir/loss.cc.o.d"
  "CMakeFiles/deepaqp_nn.dir/matrix.cc.o"
  "CMakeFiles/deepaqp_nn.dir/matrix.cc.o.d"
  "CMakeFiles/deepaqp_nn.dir/optimizer.cc.o"
  "CMakeFiles/deepaqp_nn.dir/optimizer.cc.o.d"
  "libdeepaqp_nn.a"
  "libdeepaqp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
