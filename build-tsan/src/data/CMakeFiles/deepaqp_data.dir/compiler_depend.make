# Empty compiler generated dependencies file for deepaqp_data.
# This may be replaced when dependencies are built.
