file(REMOVE_RECURSE
  "libdeepaqp_data.a"
)
