file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_data.dir/generators.cc.o"
  "CMakeFiles/deepaqp_data.dir/generators.cc.o.d"
  "CMakeFiles/deepaqp_data.dir/workload.cc.o"
  "CMakeFiles/deepaqp_data.dir/workload.cc.o.d"
  "libdeepaqp_data.a"
  "libdeepaqp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
