# Empty dependencies file for deepaqp_util.
# This may be replaced when dependencies are built.
