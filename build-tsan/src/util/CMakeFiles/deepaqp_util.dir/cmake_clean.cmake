file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_util.dir/flags.cc.o"
  "CMakeFiles/deepaqp_util.dir/flags.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/logging.cc.o"
  "CMakeFiles/deepaqp_util.dir/logging.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/rng.cc.o"
  "CMakeFiles/deepaqp_util.dir/rng.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/serialize.cc.o"
  "CMakeFiles/deepaqp_util.dir/serialize.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/status.cc.o"
  "CMakeFiles/deepaqp_util.dir/status.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/string_util.cc.o"
  "CMakeFiles/deepaqp_util.dir/string_util.cc.o.d"
  "CMakeFiles/deepaqp_util.dir/thread_pool.cc.o"
  "CMakeFiles/deepaqp_util.dir/thread_pool.cc.o.d"
  "libdeepaqp_util.a"
  "libdeepaqp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
