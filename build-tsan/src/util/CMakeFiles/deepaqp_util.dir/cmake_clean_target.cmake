file(REMOVE_RECURSE
  "libdeepaqp_util.a"
)
