# Empty compiler generated dependencies file for deepaqp_stats.
# This may be replaced when dependencies are built.
