
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cross_match.cc" "src/stats/CMakeFiles/deepaqp_stats.dir/cross_match.cc.o" "gcc" "src/stats/CMakeFiles/deepaqp_stats.dir/cross_match.cc.o.d"
  "/root/repo/src/stats/matching.cc" "src/stats/CMakeFiles/deepaqp_stats.dir/matching.cc.o" "gcc" "src/stats/CMakeFiles/deepaqp_stats.dir/matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
