file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_stats.dir/cross_match.cc.o"
  "CMakeFiles/deepaqp_stats.dir/cross_match.cc.o.d"
  "CMakeFiles/deepaqp_stats.dir/matching.cc.o"
  "CMakeFiles/deepaqp_stats.dir/matching.cc.o.d"
  "libdeepaqp_stats.a"
  "libdeepaqp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
