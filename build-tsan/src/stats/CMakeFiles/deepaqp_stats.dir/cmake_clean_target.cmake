file(REMOVE_RECURSE
  "libdeepaqp_stats.a"
)
