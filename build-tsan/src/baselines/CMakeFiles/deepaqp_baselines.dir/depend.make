# Empty dependencies file for deepaqp_baselines.
# This may be replaced when dependencies are built.
