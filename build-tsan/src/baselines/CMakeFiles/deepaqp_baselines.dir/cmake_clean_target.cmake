file(REMOVE_RECURSE
  "libdeepaqp_baselines.a"
)
