file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_baselines.dir/bayes_net.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/bayes_net.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/dbest.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/dbest.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/discretizer.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/discretizer.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/gan.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/gan.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/histogram.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/histogram.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/mspn.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/mspn.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/neural_cubes.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/neural_cubes.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/stratified.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/stratified.cc.o.d"
  "CMakeFiles/deepaqp_baselines.dir/wavelet.cc.o"
  "CMakeFiles/deepaqp_baselines.dir/wavelet.cc.o.d"
  "libdeepaqp_baselines.a"
  "libdeepaqp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
