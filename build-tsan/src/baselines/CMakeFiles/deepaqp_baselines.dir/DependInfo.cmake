
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bayes_net.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/bayes_net.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/bayes_net.cc.o.d"
  "/root/repo/src/baselines/dbest.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/dbest.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/dbest.cc.o.d"
  "/root/repo/src/baselines/discretizer.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/discretizer.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/discretizer.cc.o.d"
  "/root/repo/src/baselines/gan.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/gan.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/gan.cc.o.d"
  "/root/repo/src/baselines/histogram.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/histogram.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/histogram.cc.o.d"
  "/root/repo/src/baselines/mspn.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/mspn.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/mspn.cc.o.d"
  "/root/repo/src/baselines/neural_cubes.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/neural_cubes.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/neural_cubes.cc.o.d"
  "/root/repo/src/baselines/stratified.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/stratified.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/stratified.cc.o.d"
  "/root/repo/src/baselines/wavelet.cc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/wavelet.cc.o" "gcc" "src/baselines/CMakeFiles/deepaqp_baselines.dir/wavelet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/encoding/CMakeFiles/deepaqp_encoding.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/deepaqp_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/aqp/CMakeFiles/deepaqp_aqp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/relation/CMakeFiles/deepaqp_relation.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
