file(REMOVE_RECURSE
  "libdeepaqp_encoding.a"
)
