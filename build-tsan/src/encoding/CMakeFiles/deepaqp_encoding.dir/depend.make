# Empty dependencies file for deepaqp_encoding.
# This may be replaced when dependencies are built.
