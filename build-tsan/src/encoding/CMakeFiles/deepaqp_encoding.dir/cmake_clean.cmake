file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_encoding.dir/tuple_encoder.cc.o"
  "CMakeFiles/deepaqp_encoding.dir/tuple_encoder.cc.o.d"
  "libdeepaqp_encoding.a"
  "libdeepaqp_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
