
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqp/bootstrap.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/bootstrap.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/bootstrap.cc.o.d"
  "/root/repo/src/aqp/estimator.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/estimator.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/estimator.cc.o.d"
  "/root/repo/src/aqp/evaluation.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/evaluation.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/evaluation.cc.o.d"
  "/root/repo/src/aqp/executor.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/executor.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/executor.cc.o.d"
  "/root/repo/src/aqp/metrics.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/metrics.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/metrics.cc.o.d"
  "/root/repo/src/aqp/online.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/online.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/online.cc.o.d"
  "/root/repo/src/aqp/query.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/query.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/query.cc.o.d"
  "/root/repo/src/aqp/sql_parser.cc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/sql_parser.cc.o" "gcc" "src/aqp/CMakeFiles/deepaqp_aqp.dir/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/relation/CMakeFiles/deepaqp_relation.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/deepaqp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
