file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_aqp.dir/bootstrap.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/bootstrap.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/estimator.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/estimator.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/evaluation.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/evaluation.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/executor.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/executor.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/metrics.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/metrics.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/online.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/online.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/query.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/query.cc.o.d"
  "CMakeFiles/deepaqp_aqp.dir/sql_parser.cc.o"
  "CMakeFiles/deepaqp_aqp.dir/sql_parser.cc.o.d"
  "libdeepaqp_aqp.a"
  "libdeepaqp_aqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_aqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
