file(REMOVE_RECURSE
  "libdeepaqp_aqp.a"
)
