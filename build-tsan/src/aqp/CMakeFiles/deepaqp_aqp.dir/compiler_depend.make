# Empty compiler generated dependencies file for deepaqp_aqp.
# This may be replaced when dependencies are built.
