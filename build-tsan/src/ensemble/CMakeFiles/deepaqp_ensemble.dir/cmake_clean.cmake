file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_ensemble.dir/ensemble_model.cc.o"
  "CMakeFiles/deepaqp_ensemble.dir/ensemble_model.cc.o.d"
  "CMakeFiles/deepaqp_ensemble.dir/partitioning.cc.o"
  "CMakeFiles/deepaqp_ensemble.dir/partitioning.cc.o.d"
  "libdeepaqp_ensemble.a"
  "libdeepaqp_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
