file(REMOVE_RECURSE
  "libdeepaqp_ensemble.a"
)
