# Empty dependencies file for deepaqp_ensemble.
# This may be replaced when dependencies are built.
