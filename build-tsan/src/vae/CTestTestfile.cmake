# CMake generated Testfile for 
# Source directory: /root/repo/src/vae
# Build directory: /root/repo/build-tsan/src/vae
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
