file(REMOVE_RECURSE
  "CMakeFiles/deepaqp_vae.dir/client.cc.o"
  "CMakeFiles/deepaqp_vae.dir/client.cc.o.d"
  "CMakeFiles/deepaqp_vae.dir/vae_model.cc.o"
  "CMakeFiles/deepaqp_vae.dir/vae_model.cc.o.d"
  "CMakeFiles/deepaqp_vae.dir/vae_net.cc.o"
  "CMakeFiles/deepaqp_vae.dir/vae_net.cc.o.d"
  "CMakeFiles/deepaqp_vae.dir/workflow.cc.o"
  "CMakeFiles/deepaqp_vae.dir/workflow.cc.o.d"
  "libdeepaqp_vae.a"
  "libdeepaqp_vae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepaqp_vae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
