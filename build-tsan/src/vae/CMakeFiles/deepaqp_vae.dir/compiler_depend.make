# Empty compiler generated dependencies file for deepaqp_vae.
# This may be replaced when dependencies are built.
