file(REMOVE_RECURSE
  "libdeepaqp_vae.a"
)
