// deepaqp_cli — end-to-end command-line driver for the library.
//
//   deepaqp_cli make-data --dataset taxi|census|flights --rows N --out d.csv
//   deepaqp_cli train     --csv d.csv --types cat,cat,num,... --out m.bin
//                         [--epochs N] [--hidden N] [--depth N]
//                         [--encoding one-hot|binary|integer] [--bins N]
//   deepaqp_cli info      --model m.bin
//   deepaqp_cli generate  --model m.bin --n N --out samples.csv [--t X]
//   deepaqp_cli query     --model m.bin --population N --sql "SELECT ..."
//                         [--samples N] [--t X]
//   deepaqp_cli load-model --model m.bin [--degraded]
//   deepaqp_cli save-model --model m.bin --out m2.bin
//   deepaqp_cli serve      --model m.bin [--name default] [--text]
//                          [--samples N] [--max-samples N] [--population N]
//                          [--listen PORT] [--port-file f] [--heartbeat-ms N]
//                          [--max-sessions N] [--max-queued N] [--drain-ms N]
//   deepaqp_cli client     --port N --sql "SELECT ..." [--host H] [--ci X]
//                          [--name default] [--retries N]
//
// The `query` flow is the paper's client story: everything after `train`
// needs only the model file — never the data. `load-model` verifies a
// snapshot's checksums and prints loader stats; `save-model` re-encodes a
// verified model into a fresh current-format snapshot (atomic write).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "aqp/engine.h"
#include "aqp/estimator.h"
#include "aqp/sql_parser.h"
#include "data/generators.h"
#include "encoding/tuple_encoder.h"
#include "ensemble/ensemble_model.h"
#include "nn/kernels.h"
#include "nn/kernels_quant.h"
#include "relation/csv.h"
#include "server/server.h"
#include "server/socket_client.h"
#include "server/socket_transport.h"
#include "server/transport.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/serialize.h"
#include "util/snapshot.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/topology.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: tool brevity

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fputs(
      "usage: deepaqp_cli "
      "<make-data|train|info|generate|query|load-model|save-model|serve"
      "|client> "
      "[--flags]\n"
      "run with a command and no flags for that command's requirements\n"
      "global flags: --threads N, --pin off|compact|scatter, "
      "--kernel naive|blocked|simd|auto, --quant off|fp16|int8\n",
      stderr);
  return 2;
}

relation::Table MakeDataset(const std::string& name, size_t rows) {
  if (name == "census") return data::GenerateCensus({.rows = rows});
  if (name == "flights") return data::GenerateFlights({.rows = rows});
  return data::GenerateTaxi({.rows = rows});
}

int CmdMakeData(const util::Flags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fputs("make-data needs --out <file.csv>\n", stderr);
    return 2;
  }
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 10000));
  relation::Table table =
      MakeDataset(flags.GetString("dataset", "taxi"), rows);
  auto status = relation::WriteCsv(table, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu rows x %zu attributes to %s\n", table.num_rows(),
              table.num_attributes(), out.c_str());
  return 0;
}

util::Result<relation::Schema> SchemaFromCsvHeader(
    const std::string& path, const std::string& types_csv) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return util::Status::IOError("cannot open " + path);
  char buf[1 << 16];
  if (std::fgets(buf, sizeof(buf), f) == nullptr) {
    std::fclose(f);
    return util::Status::InvalidArgument("empty CSV");
  }
  std::fclose(f);
  const auto names = util::Split(util::Trim(buf), ',');
  const auto types = util::Split(types_csv, ',');
  if (names.size() != types.size()) {
    return util::Status::InvalidArgument(
        "--types must list one of cat|num per CSV column (" +
        std::to_string(names.size()) + " columns found)");
  }
  relation::Schema schema;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string t = util::Trim(types[i]);
    if (t != "cat" && t != "num") {
      return util::Status::InvalidArgument("bad type '" + t +
                                           "' (use cat or num)");
    }
    DEEPAQP_RETURN_IF_ERROR(schema.AddAttribute(
        names[i], t == "cat" ? relation::AttrType::kCategorical
                             : relation::AttrType::kNumeric));
  }
  return schema;
}

int CmdTrain(const util::Flags& flags) {
  const std::string csv = flags.GetString("csv", "");
  const std::string types = flags.GetString("types", "");
  const std::string out = flags.GetString("out", "");
  if (csv.empty() || types.empty() || out.empty()) {
    std::fputs("train needs --csv, --types and --out\n", stderr);
    return 2;
  }
  auto schema = SchemaFromCsvHeader(csv, types);
  if (!schema.ok()) return Fail(schema.status());
  auto table = relation::ReadCsv(csv, *schema);
  if (!table.ok()) return Fail(table.status());

  vae::VaeAqpOptions options;
  options.epochs = static_cast<int>(flags.GetInt("epochs", 20));
  options.hidden_dim = static_cast<size_t>(flags.GetInt("hidden", 64));
  options.depth = static_cast<int>(flags.GetInt("depth", 2));
  options.encoder.numeric_bins = static_cast<int>(flags.GetInt("bins", 32));
  const std::string enc = flags.GetString("encoding", "binary");
  options.encoder.kind = enc == "one-hot"
                             ? encoding::EncodingKind::kOneHot
                             : (enc == "integer"
                                    ? encoding::EncodingKind::kInteger
                                    : encoding::EncodingKind::kBinary);

  std::printf("training on %zu rows (%s encoding, %d epochs)...\n",
              table->num_rows(), enc.c_str(), options.epochs);
  vae::TrainingStats stats;
  auto model = vae::VaeAqpModel::Train(*table, options, &stats);
  if (!model.ok()) return Fail(model.status());
  auto bytes = (*model)->Serialize();
  auto status = util::AtomicWriteFile(out, bytes);
  if (!status.ok()) return Fail(status);
  std::printf("trained in %.1fs; wrote %.1f KB model to %s (T = %.2f)\n",
              stats.total_seconds, bytes.size() / 1024.0, out.c_str(),
              (*model)->default_t());
  return 0;
}

util::Result<std::unique_ptr<vae::VaeAqpModel>> LoadModel(
    const util::Flags& flags) {
  const std::string path = flags.GetString("model", "");
  if (path.empty()) {
    return util::Status::InvalidArgument("missing --model <file>");
  }
  DEEPAQP_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           util::ReadFile(path));
  return vae::VaeAqpModel::Deserialize(bytes);
}

int CmdInfo(const util::Flags& flags) {
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  const auto& enc = (*model)->tuple_encoder();
  std::printf("deepaqp VAE model\n");
  std::printf("  encoded dim:   %zu (%s)\n", enc.encoded_dim(),
              encoding::EncodingKindName(enc.kind()));
  std::printf("  latent dim:    %zu\n", (*model)->net().latent_dim());
  std::printf("  parameters:    %zu\n", (*model)->net().NumParameters());
  std::printf("  size:          %.1f KB\n",
              (*model)->ModelSizeBytes() / 1024.0);
  std::printf("  calibrated T:  %.3f\n", (*model)->default_t());
  std::printf("  schema:\n");
  for (size_t c = 0; c < enc.schema().num_attributes(); ++c) {
    const auto& layout = enc.layout()[c];
    std::printf("    %-20s %-12s |dom|=%d width=%zu\n",
                enc.schema().attribute(c).name.c_str(),
                relation::AttrTypeName(enc.schema().attribute(c).type),
                layout.cardinality, layout.width);
  }
  return 0;
}

int CmdGenerate(const util::Flags& flags) {
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fputs("generate needs --out <file.csv>\n", stderr);
    return 2;
  }
  const auto n = static_cast<size_t>(flags.GetInt("n", 1000));
  const double t = flags.GetDouble("t", (*model)->default_t());
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  relation::Table sample = (*model)->Generate(n, t, rng);
  auto status = relation::WriteCsv(sample, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu synthetic tuples to %s\n", sample.num_rows(),
              out.c_str());
  return 0;
}

int CmdQuery(const util::Flags& flags) {
  auto model = LoadModel(flags);
  if (!model.ok()) return Fail(model.status());
  const std::string sql = flags.GetString("sql", "");
  if (sql.empty()) {
    std::fputs("query needs --sql \"SELECT ...\"\n", stderr);
    return 2;
  }
  const auto population =
      static_cast<size_t>(flags.GetInt("population", 1000000));
  const auto samples = static_cast<size_t>(flags.GetInt("samples", 5000));
  const double t = flags.GetDouble("t", (*model)->default_t());
  util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));

  relation::Table sample = (*model)->Generate(samples, t, rng);
  auto query = aqp::ParseSql(sql, sample);
  if (!query.ok()) return Fail(query.status());
  auto result = aqp::EstimateFromSample(*query, sample, population);
  if (!result.ok()) return Fail(result.status());

  std::printf("%s  (on %zu synthetic tuples, population %zu)\n",
              query->ToString(sample.schema()).c_str(), sample.num_rows(),
              population);
  for (const auto& g : result->groups) {
    std::string label = "*";
    if (g.group >= 0) {
      const auto gattr = static_cast<size_t>(query->group_by_attr);
      label = sample.dict(gattr).size() > g.group
                  ? sample.dict(gattr).LabelOf(g.group)
                  : std::to_string(g.group);
    }
    std::printf("  %-16s %14.4f  +- %.4f\n", label.c_str(), g.value,
                g.ci_half_width);
  }
  return 0;
}

util::Result<std::vector<uint8_t>> ReadModelBytes(const util::Flags& flags) {
  const std::string path = flags.GetString("model", "");
  if (path.empty()) {
    return util::Status::InvalidArgument("missing --model <file>");
  }
  return util::ReadFile(path);
}

void PrintSnapshotStats(const util::SnapshotReader& snap) {
  std::printf("deepaqp snapshot (format v%u)\n", snap.format_version());
  std::printf("  kind:            %s (payload v%u)\n", snap.kind().c_str(),
              snap.payload_version());
  std::printf("  size:            %zu bytes\n", snap.stats().total_bytes);
  std::printf("  sections:        %zu\n", snap.stats().num_sections);
  for (const auto& s : snap.sections()) {
    std::printf("    %-14s %10zu bytes  crc32=%08x%s\n", s.name.c_str(),
                s.size, s.crc32, s.in_bounds ? "" : "  [TRUNCATED]");
  }
  std::printf("  file checksum:   %s\n",
              snap.stats().file_checksum_ok ? "ok" : "FAILED");
  std::printf("  verify time:     %.3f ms\n",
              snap.stats().verify_seconds * 1e3);
}

/// Verifies a model file end to end and prints loader stats. With
/// --degraded, a damaged ensemble is additionally loaded tolerantly so the
/// operator can see what coverage survives.
int CmdLoadModel(const util::Flags& flags) {
  auto bytes = ReadModelBytes(flags);
  if (!bytes.ok()) return Fail(bytes.status());
  auto snap = util::SnapshotReader::Open(*bytes);
  const bool tolerant = flags.GetBool("degraded", false);
  if (!snap.ok() && tolerant) {
    snap = util::SnapshotReader::OpenTolerant(*bytes);
  }
  if (!snap.ok()) return Fail(snap.status());
  PrintSnapshotStats(*snap);

  if (snap->kind() == vae::kVaeModelSnapshotKind) {
    auto model = vae::VaeAqpModel::Deserialize(*bytes);
    if (!model.ok()) return Fail(model.status());
    std::printf("  payload:         VAE model, %zu parameters, T = %.3f\n",
                (*model)->net().NumParameters(), (*model)->default_t());
    return 0;
  }
  if (snap->kind() == ensemble::kEnsembleSnapshotKind) {
    ensemble::EnsembleLoadReport report;
    auto model =
        tolerant
            ? ensemble::EnsembleModel::DeserializeDegraded(*bytes, &report)
            : ensemble::EnsembleModel::Deserialize(*bytes);
    if (!model.ok()) return Fail(model.status());
    std::printf("  payload:         ensemble, %zu member(s)\n",
                (*model)->num_members());
    if (tolerant) {
      std::printf("  coverage:        %.1f%% (%zu/%zu members)\n",
                  report.coverage * 100.0, report.members_loaded,
                  report.members_total);
      for (const std::string& e : report.member_errors) {
        std::printf("  lost:            %s\n", e.c_str());
      }
    }
    return 0;
  }
  std::printf("  payload:         unknown kind (container verified only)\n");
  return 0;
}

/// Loads a model with full verification and re-encodes it into a fresh
/// current-format snapshot at --out (atomic write). This is the format
/// migration path once newer payload versions exist.
int CmdSaveModel(const util::Flags& flags) {
  auto bytes = ReadModelBytes(flags);
  if (!bytes.ok()) return Fail(bytes.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fputs("save-model needs --out <file.bin>\n", stderr);
    return 2;
  }
  auto snap = util::SnapshotReader::Open(*bytes);
  if (!snap.ok()) return Fail(snap.status());

  std::vector<uint8_t> fresh;
  if (snap->kind() == vae::kVaeModelSnapshotKind) {
    auto model = vae::VaeAqpModel::Deserialize(*bytes);
    if (!model.ok()) return Fail(model.status());
    fresh = (*model)->Serialize();
  } else if (snap->kind() == ensemble::kEnsembleSnapshotKind) {
    auto model = ensemble::EnsembleModel::Deserialize(*bytes);
    if (!model.ok()) return Fail(model.status());
    fresh = (*model)->Serialize();
  } else {
    return Fail(util::Status::InvalidArgument(
        "cannot re-save unknown snapshot kind '" + snap->kind() + "'"));
  }
  auto status = util::AtomicWriteFile(out, fresh);
  if (!status.ok()) return Fail(status);
  std::printf("verified %zu bytes, re-encoded %zu bytes -> %s\n",
              bytes->size(), fresh.size(), out.c_str());
  return 0;
}

/// Interactive line protocol for humans and shell scripts: the daemon acks
/// every DATA frame itself and prints decoded estimates as text.
///
///   open
///   query <session> <max_relative_ci> <sql...>
///   close <session>
///   quit
int ServeText(server::AqpServer& srv) {
  auto pipe = std::make_shared<server::PipeTransport>();
  std::printf("deepaqp server ready (text mode); commands: "
              "open | query <sid> <ci> <sql> | close <sid> | quit\n");
  char line[1 << 14];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::string input = util::Trim(line);
    if (input.empty()) continue;
    if (input == "quit") break;

    if (input == "open") {
      server::ClientMessage open;
      open.kind = server::ClientMessageKind::kOpenSession;
      open.model_name = "default";
      srv.Handle(open, pipe);
      server::ServerMessage reply = pipe->Pop();
      if (reply.kind == server::ServerMessageKind::kSessionOpened) {
        std::printf("session %llu\n",
                    static_cast<unsigned long long>(reply.session));
      } else {
        std::printf("error: %s\n", reply.message.c_str());
      }
      continue;
    }

    if (input.rfind("close ", 0) == 0) {
      server::ClientMessage close;
      close.kind = server::ClientMessageKind::kCloseSession;
      close.session = std::strtoull(input.c_str() + 6, nullptr, 10);
      srv.Handle(close, pipe);
      server::ServerMessage reply = pipe->Pop();
      std::printf("%s\n",
                  reply.kind == server::ServerMessageKind::kSessionClosed
                      ? "closed"
                      : ("error: " + reply.message).c_str());
      continue;
    }

    if (input.rfind("query ", 0) == 0) {
      char* cursor = nullptr;
      const uint64_t session =
          std::strtoull(input.c_str() + 6, &cursor, 10);
      const double ci = std::strtod(cursor, &cursor);
      const std::string sql = util::Trim(cursor);
      if (sql.empty()) {
        std::printf("error: query needs <session> <max_relative_ci> <sql>\n");
        continue;
      }
      server::ClientMessage query;
      query.kind = server::ClientMessageKind::kQuery;
      query.session = session;
      query.sql = sql;
      query.max_relative_ci = ci;
      srv.Handle(query, pipe);

      server::ServerMessage first = pipe->Pop();
      if (first.kind != server::ServerMessageKind::kQueryStarted) {
        std::printf("error: %s\n", first.message.c_str());
        continue;
      }
      server::ChannelConsumer consumer(first.channel);
      bool stream_failed = false;
      while (!consumer.finished() && !stream_failed) {
        server::ServerMessage msg = pipe->Pop();
        if (msg.kind == server::ServerMessageKind::kError) {
          std::printf("error: %s\n", msg.message.c_str());
          stream_failed = true;
          break;
        }
        if (msg.kind != server::ServerMessageKind::kData ||
            msg.channel != first.channel) {
          continue;  // stale frame of an earlier stream
        }
        consumer.OnData(msg.data);
        for (const auto& payload : consumer.TakeDelivered()) {
          auto estimate = server::DecodeEstimate(payload);
          if (!estimate.ok()) {
            std::printf("error: %s\n",
                        estimate.status().ToString().c_str());
            stream_failed = true;
            break;
          }
          for (const auto& g : estimate->result.groups) {
            std::printf("estimate pool=%llu group=%d value=%.6f ci=%.6f\n",
                        static_cast<unsigned long long>(estimate->pool_rows),
                        g.group, g.value, g.ci_half_width);
          }
        }
        server::ClientMessage ack;
        ack.kind = server::ClientMessageKind::kAck;
        ack.session = session;
        ack.ack = consumer.MakeAck();
        srv.Handle(ack, pipe);
      }
      if (consumer.finished()) std::printf("final\n");
      std::fflush(stdout);
      continue;
    }
    std::printf("error: unknown command\n");
  }
  srv.WaitIdle();
  return 0;
}

/// SIGTERM/SIGINT latch for graceful drain. Async-signal-safe: the handler
/// only stores a flag the serve loops poll.
std::atomic<bool> g_shutdown_requested{false};

void HandleShutdownSignal(int) { g_shutdown_requested.store(true); }

void InstallServeSignalHandlers() {
  // A client vanishing mid-write must surface as EPIPE on the write call
  // (handled as connection-close), never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a blocking stdio read aborts with EINTR so the serve
  // loop can notice the flag and drain instead of dying mid-frame.
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Serves the daemon over TCP until SIGTERM/SIGINT, then drains gracefully:
/// stop accepting, let in-flight streams finish (bounded), abort stragglers
/// with SHUTTING_DOWN, flush, exit.
int ServeTcp(server::AqpServer& srv, const util::Flags& flags, int port) {
  server::SocketServer::Options sopts;
  sopts.port = static_cast<uint16_t>(port);
  sopts.bind_address = flags.GetString("bind", "127.0.0.1");
  sopts.heartbeat_ms = static_cast<int>(
      flags.GetInt("heartbeat-ms", flags.GetInt("heartbeat_ms", 5000)));
  sopts.heartbeat_misses = static_cast<int>(flags.GetInt("heartbeat-misses", 3));
  sopts.drain_deadline_ms = static_cast<int>(flags.GetInt("drain-ms", 5000));
  server::SocketServer sock(&srv, sopts);
  if (auto st = sock.Listen(); !st.ok()) return Fail(st);
  if (auto st = sock.Start(); !st.ok()) return Fail(st);
  std::fprintf(stderr, "deepaqp server listening on %s:%u\n",
               sopts.bind_address.c_str(), sock.port());
  // Ephemeral-port discovery for scripts/tests: --port-file gets the bound
  // port once the listener is live.
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", sock.port());
      std::fclose(f);
    }
  }
  while (!g_shutdown_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fputs("drain: refusing new work, finishing in-flight streams\n",
             stderr);
  const bool clean = sock.Shutdown();
  std::fprintf(stderr, "drain %s\n",
               clean ? "complete" : "deadline exceeded (streams aborted)");
  return 0;
}

/// Runs the AQP daemon. Default is the binary transport on stdio — u32
/// length-prefixed ClientMessage frames in, ServerMessage frames out —
/// which is what a programmatic client speaks. --listen PORT serves the
/// same protocol over TCP (PORT 0 picks an ephemeral port, written to
/// --port-file) with heartbeats, session resumption and admission control.
/// --text switches to the line protocol above. The model is registered
/// under --name ("default"), and sessions inherit
/// --samples/--max-samples/--population/--seed.
int CmdServe(const util::Flags& flags) {
  InstallServeSignalHandlers();
  auto bytes = ReadModelBytes(flags);
  if (!bytes.ok()) return Fail(bytes.status());

  server::AqpServer::Options opts;
  opts.client.initial_samples =
      static_cast<size_t>(flags.GetInt("samples", 2000));
  opts.client.max_samples =
      static_cast<size_t>(flags.GetInt("max-samples", 200000));
  opts.client.population_rows =
      static_cast<size_t>(flags.GetInt("population", 1000000));
  opts.client.seed = static_cast<uint64_t>(flags.GetInt("seed", 2027));
  opts.max_sessions = static_cast<size_t>(
      flags.GetInt("max-sessions", flags.GetInt("max_sessions", 256)));
  opts.max_queued_per_session =
      static_cast<size_t>(flags.GetInt("max-queued", 256));
  server::AqpServer srv(opts);
  auto version =
      srv.registry().Register(flags.GetString("name", "default"), *bytes);
  if (!version.ok()) return Fail(version.status());

  if (flags.GetBool("text", false)) return ServeText(srv);

  const int listen_port = static_cast<int>(flags.GetInt("listen", -1));
  if (listen_port >= 0) return ServeTcp(srv, flags, listen_port);

  auto sink = std::make_shared<server::StdioTransport>(stdout);
  for (;;) {
    if (g_shutdown_requested.load()) break;
    auto request = server::StdioTransport::ReadRequest(stdin);
    if (!request.ok()) {
      // A signal aborting the read is a drain request, not an error.
      if (g_shutdown_requested.load()) break;
      return Fail(request.status());
    }
    if (!request->has_value()) break;  // client hung up cleanly
    srv.Handle(**request, sink);
  }
  if (g_shutdown_requested.load()) {
    srv.Drain(static_cast<int>(flags.GetInt("drain-ms", 5000)));
  }
  srv.WaitIdle();
  if (!sink->last_error().ok()) {
    // The peer dropping its end mid-stream is a normal client lifecycle
    // event for a daemon, not a failure.
    if (server::IsPeerClosed(sink->last_error())) return 0;
    return Fail(sink->last_error());
  }
  return 0;
}

/// TCP client: opens a session against a running `serve --listen` daemon,
/// streams one query to the requested precision, and prints the estimates.
/// Survives server restarts and connection drops via exponential backoff +
/// session resumption.
int CmdClient(const util::Flags& flags) {
  const std::string sql = flags.GetString("sql", "");
  const int port = static_cast<int>(flags.GetInt("port", -1));
  if (sql.empty() || port < 0) {
    std::fputs(
        "client needs --port N --sql \"SELECT ...\" "
        "[--host 127.0.0.1] [--name default] [--ci 0.05] "
        "[--samples N] [--max-samples N] [--population N] [--seed N]\n",
        stderr);
    return 2;
  }
  server::RetryingConnection::Options copts;
  copts.host = flags.GetString("host", "127.0.0.1");
  copts.port = static_cast<uint16_t>(port);
  copts.max_attempts = static_cast<int>(flags.GetInt("retries", 10));
  server::RetryingConnection client(copts);
  if (auto st = client.Connect(); !st.ok()) return Fail(st);
  if (auto st = client.OpenSession(
          flags.GetString("name", "default"),
          static_cast<uint64_t>(flags.GetInt("samples", 0)),
          static_cast<uint64_t>(flags.GetInt("max-samples", 0)),
          static_cast<uint64_t>(flags.GetInt("population", 0)),
          static_cast<uint64_t>(flags.GetInt("seed", 0)));
      !st.ok()) {
    return Fail(st);
  }
  auto stream = client.RunQuery(sql, flags.GetDouble("ci", 0.05));
  if (!stream.ok()) return Fail(stream.status());
  for (const server::Estimate& est : stream->estimates) {
    for (const auto& g : est.result.groups) {
      std::printf("estimate pool=%llu group=%d value=%.6f ci=%.6f\n",
                  static_cast<unsigned long long>(est.pool_rows), g.group,
                  g.value, g.ci_half_width);
    }
  }
  std::printf("final after %zu estimates (%llu reconnects, %llu resumes)\n",
              stream->estimates.size(),
              static_cast<unsigned long long>(client.reconnects()),
              static_cast<unsigned long long>(stream->resumes));
  client.CloseSession();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  util::Flags flags(argc - 1, argv + 1);
  // --pin off|compact|scatter selects the worker-placement policy; it must
  // precede ApplyThreadsFlag so the rebuilt pool plans placement under it.
  // Like --kernel, the explicit flag is a hard error on unknown values
  // (the DEEPAQP_PIN env var only warns).
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  aqp::ApplyEngineFlag(flags);
  util::ApplyFailpointsFlag(flags);
  // --kernel naive|blocked|simd|auto switches the GEMM backend in-process;
  // unlike the DEEPAQP_KERNEL env (which warns and falls back), an explicit
  // flag naming an unavailable or unknown backend is a hard error.
  if (const util::Status st = nn::ApplyKernelFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  // --quant off|fp16|int8 selects the quantized decoder inference mode,
  // with the same contract as --kernel: the DEEPAQP_QUANT env warns and
  // falls back to fp32, an explicit flag is a hard error (including when
  // the mode's kernel self-check fails on this CPU).
  if (const util::Status st = nn::ApplyQuantFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  int rc;
  if (cmd == "make-data") rc = CmdMakeData(flags);
  else if (cmd == "train") rc = CmdTrain(flags);
  else if (cmd == "info") rc = CmdInfo(flags);
  else if (cmd == "generate") rc = CmdGenerate(flags);
  else if (cmd == "query") rc = CmdQuery(flags);
  else if (cmd == "load-model") rc = CmdLoadModel(flags);
  else if (cmd == "save-model") rc = CmdSaveModel(flags);
  else if (cmd == "serve") rc = CmdServe(flags);
  else if (cmd == "client") rc = CmdClient(flags);
  else return Usage();
  // Chaos observability: with fail points active, persist (or print) the
  // per-site fault counters so a chaos run leaves a structured record.
  if (util::FailpointsEnabled()) {
    const std::string fault_log = flags.GetString("fault-log", "");
    const std::string json = util::FailpointReportJson();
    if (!fault_log.empty()) {
      std::FILE* f = std::fopen(fault_log.c_str(), "w");
      if (f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write --fault-log %s\n",
                     fault_log.c_str());
      }
    } else {
      std::fputs(json.c_str(), stderr);
    }
  }
  return rc;
}
