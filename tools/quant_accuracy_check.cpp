// Quantization accuracy harness: verifies that switching the decoder to
// fp16 or int8 inference adds at most a budgeted amount of relative error
// to the paper's COUNT/SUM/AVG workloads (fig2-style census, fig3-style
// flights), per aggregate function, against the same model running fp32.
// CI runs this as a gate; a breach exits nonzero.
//
//   quant_accuracy_check [--datasets census,flights] [--rows 4000]
//                        [--epochs 3] [--queries 24] [--budget 0.01]
//                        [--modes fp16,int8] [--threads N]
//
// The budget bounds the *added* median relative error per aggregate op
// (default 0.01 = one percentage point). Changing the decoder arithmetic
// re-rolls the rejection-sampling trajectory, so even a perfectly accurate
// quantizer shifts the measured error by the eval's own sampling noise; the
// harness calibrates that floor by re-running the fp32 baseline under a
// second evaluation seed and charges each quantized delta only for the
// excess above the per-op fp32-vs-fp32 spread. A breach therefore means
// "worse than fp32 by more than budget + noise", not "unlucky draw".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "aqp/evaluation.h"
#include "aqp/query.h"
#include "data/generators.h"
#include "data/workload.h"
#include "nn/kernels_quant.h"
#include "relation/table.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/topology.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: tool brevity

namespace {

relation::Table MakeDataset(const std::string& name, size_t rows) {
  if (name == "census") {
    return data::GenerateCensus({.rows = rows, .seed = 1});
  }
  if (name == "flights") {
    data::FlightsConfig config;
    config.rows = rows;
    config.seed = 1;
    config.flight_number_cardinality =
        static_cast<int32_t>(std::min<size_t>(2000, rows / 10 + 64));
    return data::GenerateFlights(config);
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(2);
}

const char* AggName(aqp::AggFunc agg) {
  switch (agg) {
    case aqp::AggFunc::kCount: return "COUNT";
    case aqp::AggFunc::kSum: return "SUM";
    case aqp::AggFunc::kAvg: return "AVG";
    case aqp::AggFunc::kQuantile: return "QUANTILE";
  }
  return "?";
}

/// Median per-aggregate-op relative error of the model sampler on the
/// workload (non-finite per-query entries — skipped queries — are
/// dropped). The median is the paper's own summary statistic and keeps the
/// gate meaningful: a single outlier query with a near-zero exact answer
/// would otherwise dominate a mean and drown the quantization signal in
/// sampling noise.
util::Result<std::map<aqp::AggFunc, double>> PerOpErrors(
    const std::vector<aqp::AggregateQuery>& workload,
    const relation::Table& table, const vae::VaeAqpModel& model,
    const aqp::EvalOptions& options) {
  const aqp::SampleFn sampler = model.MakeSampler(model.default_t());
  DEEPAQP_ASSIGN_OR_RETURN(
      const std::vector<double> errors,
      aqp::WorkloadRelativeErrors(workload, table, sampler, options));
  std::map<aqp::AggFunc, std::vector<double>> per_op;
  for (size_t i = 0; i < workload.size() && i < errors.size(); ++i) {
    if (!std::isfinite(errors[i])) continue;
    per_op[workload[i].agg].push_back(errors[i]);
  }
  std::map<aqp::AggFunc, double> median;
  for (auto& [agg, v] : per_op) {
    std::sort(v.begin(), v.end());
    median[agg] = v.size() % 2 == 1
                      ? v[v.size() / 2]
                      : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  }
  return median;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 4000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 3));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 24));
  const double budget = flags.GetDouble("budget", 0.01);
  const std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "census,flights"), ',');

  std::vector<nn::QuantMode> modes;
  for (const std::string& name :
       util::Split(flags.GetString("modes", "fp16,int8"), ',')) {
    nn::QuantMode mode;
    if (const util::Status st = nn::ParseQuantMode(name, &mode); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    if (mode != nn::QuantMode::kOff) modes.push_back(mode);
  }

  bool breached = false;
  for (const std::string& dataset : datasets) {
    const relation::Table table = MakeDataset(dataset, rows);
    data::WorkloadConfig wconfig;
    wconfig.num_queries = queries;
    wconfig.seed = 7;
    const std::vector<aqp::AggregateQuery> workload =
        data::GenerateWorkload(table, wconfig);

    vae::VaeAqpOptions vopts;
    vopts.epochs = epochs;
    vopts.hidden_dim = 64;
    vopts.encoder.numeric_bins = 24;
    vopts.seed = 97;
    if (const util::Status st = nn::SetQuantMode(nn::QuantMode::kOff);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    auto model = vae::VaeAqpModel::Train(table, vopts);
    if (!model.ok()) {
      std::fprintf(stderr, "train(%s) failed: %s\n", dataset.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }

    aqp::EvalOptions eopts;
    // A larger sample and more trials than the paper default keep the
    // sampling-noise floor well below the 1% budget the gate enforces.
    eopts.sample_fraction = 0.1;
    eopts.num_trials = 6;
    eopts.seed = 42;
    auto baseline = PerOpErrors(workload, table, **model, eopts);
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline eval failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    // Same model, same workload, different eval seed: the per-op spread
    // between the two fp32 runs is the sampling-noise floor that any
    // arithmetic change (including an exact one) would also induce.
    aqp::EvalOptions nopts = eopts;
    nopts.seed = eopts.seed + 1;
    auto reroll = PerOpErrors(workload, table, **model, nopts);
    if (!reroll.ok()) {
      std::fprintf(stderr, "noise-floor eval failed: %s\n",
                   reroll.status().ToString().c_str());
      return 1;
    }
    std::map<aqp::AggFunc, double> noise;
    for (const auto& [agg, err] : *baseline) {
      noise[agg] =
          (*reroll).count(agg) ? std::fabs((*reroll).at(agg) - err) : 0.0;
      std::printf("%-8s %-5s fp32  median_rel_err=%.4f noise=%.4f\n",
                  dataset.c_str(), AggName(agg), err, noise[agg]);
    }

    for (nn::QuantMode mode : modes) {
      if (const util::Status st = nn::SetQuantMode(mode); !st.ok()) {
        std::fprintf(stderr, "cannot engage quant=%s: %s\n",
                     nn::QuantModeName(mode), st.ToString().c_str());
        return 1;
      }
      if (const util::Status st = (*model)->PrepareQuantized(mode);
          !st.ok()) {
        std::fprintf(stderr, "prepare quant=%s failed: %s\n",
                     nn::QuantModeName(mode), st.ToString().c_str());
        return 1;
      }
      auto quant = PerOpErrors(workload, table, **model, eopts);
      if (!quant.ok()) {
        std::fprintf(stderr, "quant eval failed: %s\n",
                     quant.status().ToString().c_str());
        return 1;
      }
      for (const auto& [agg, err] : *quant) {
        const double base = (*baseline).count(agg) ? (*baseline).at(agg)
                                                   : 0.0;
        const double delta = err - base;
        const bool over = delta > budget + noise[agg];
        std::printf(
            "%-8s %-5s %-5s median_rel_err=%.4f delta=%+.4f (allow %.4f) %s\n",
            dataset.c_str(), AggName(agg), nn::QuantModeName(mode), err, delta,
            budget + noise[agg], over ? "BREACH" : "ok");
        if (over) breached = true;
      }
    }
    (void)nn::SetQuantMode(nn::QuantMode::kOff);
  }

  if (breached) {
    std::fprintf(stderr,
                 "FAIL: quantized inference exceeds the accuracy budget "
                 "(%.3f added median relative error)\n",
                 budget);
    return 1;
  }
  std::printf("quant accuracy within budget (%.3f)\n", budget);
  return 0;
}
