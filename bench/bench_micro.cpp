// Microbenchmarks of the hot substrate paths: gemm, RNG, tuple
// encoding/decoding, query execution, VAE sample generation, and the
// matching kernel behind the cross-match test. Emits the uniform bench
// records (name, shape, ns/op, GFLOP/s, threads) of bench_common.h:
//
//   ./bench_micro [--json] [--quick] [--threads N]
//                 [--kernel naive|blocked|simd|auto]
//
// --json writes BENCH_micro.json for the CI perf archive.

#include <cstdio>
#include <vector>

#include "bench_common.h"

#include "aqp/executor.h"
#include "encoding/tuple_encoder.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "stats/matching.h"
#include "util/rng.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  if (const util::Status st = nn::ApplyKernelFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const bool quick = flags.GetBool("quick", false);
  const double budget = quick ? 0.05 : 0.3;
  bench::BenchReporter reporter(flags, "micro");

  // Square GEMM through the active kernel (the --kernel flag selects it).
  for (size_t n : {64u, 128u, 256u}) {
    util::Rng rng(1);
    nn::Matrix a(n, n);
    nn::Matrix b(n, n);
    nn::Matrix c;
    a.RandomizeGaussian(rng, 1.0f);
    b.RandomizeGaussian(rng, 1.0f);
    const double ns = bench::MeasureNsPerOp(
        [&] { nn::Gemm(a, false, b, false, 1.0f, 0.0f, &c); }, budget);
    const double flops = 2.0 * static_cast<double>(n * n * n);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "n=%zu", n);
    std::string name = std::string("gemm_") +
                       nn::GemmKernelKindName(nn::ActiveGemmKernel());
    reporter.Add({name, shape, ns, flops / ns, 0});
  }

  {
    util::Rng rng(2);
    double acc = 0.0;
    const double ns = bench::MeasureNsPerOp(
        [&] {
          for (int i = 0; i < 1024; ++i) acc += rng.NextGaussian();
        },
        budget);
    if (acc == 0.125) std::printf(" ");  // keep the accumulator live
    reporter.Add({"rng_gaussian", "n=1024", ns / 1024.0, 0.0, 1});
  }

  {
    auto table = data::GenerateCensus({.rows = 4096, .seed = 3});
    auto encoder = encoding::TupleEncoder::Fit(table, {});
    const double ns = bench::MeasureNsPerOp(
        [&] {
          auto m = encoder->EncodeAll(table);
          (void)m;
        },
        budget);
    reporter.Add({"encode_rows", "rows=4096",
                  ns / static_cast<double>(table.num_rows()), 0.0, 1});
  }

  {
    auto table = data::GenerateCensus({.rows = 512, .seed = 4});
    auto encoder = encoding::TupleEncoder::Fit(table, {});
    nn::Matrix logits(512, encoder->encoded_dim());
    util::Rng rng(5);
    logits.RandomizeGaussian(rng, 2.0f);
    const encoding::DecodeOptions decode{
        encoding::DecodeStrategy::kWeightedRandom, 8};
    const double ns = bench::MeasureNsPerOp(
        [&] {
          auto t = encoder->DecodeLogits(logits, decode, rng);
          (void)t;
        },
        budget);
    reporter.Add({"decode_logits", "rows=512", ns / 512.0, 0.0, 1});
  }

  for (size_t rows : {10000u, 100000u}) {
    if (quick && rows > 10000) continue;
    auto table = data::GenerateCensus({.rows = rows, .seed = 6});
    data::WorkloadConfig cfg;
    cfg.num_queries = 1;
    cfg.seed = 11;
    auto workload = data::GenerateWorkload(table, cfg);
    const double ns = bench::MeasureNsPerOp(
        [&] {
          auto r = aqp::ExecuteExact(workload[0], table);
          (void)r;
        },
        budget);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "rows=%zu", rows);
    reporter.Add({"exact_query", shape,
                  ns / static_cast<double>(rows), 0.0, 1});
  }

  {
    auto table = data::GenerateTaxi({.rows = 4000, .seed = 7});
    vae::VaeAqpOptions options;
    options.epochs = quick ? 2 : 4;
    auto model = vae::VaeAqpModel::Train(table, options);
    if (!model.ok()) return 1;
    util::Rng rng(8);
    const double ns = bench::MeasureNsPerOp(
        [&] {
          auto sample = (*model)->Generate(1000, vae::kTPlusInf, rng);
          (void)sample;
        },
        budget);
    reporter.Add({"vae_generate", "n=1000", ns / 1000.0, 0.0, 0});
  }

  for (size_t n : {64u, 128u, 256u}) {
    if (quick && n > 64) continue;
    util::Rng rng(9);
    std::vector<std::vector<double>> points(n, std::vector<double>(4));
    for (auto& p : points) {
      for (double& v : p) v = rng.Gaussian(0, 1);
    }
    auto dist = stats::EuclideanDistances(points);
    const double ns = bench::MeasureNsPerOp(
        [&] {
          auto mate = stats::MinWeightPerfectMatching(dist);
          (void)mate;
        },
        budget);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "n=%zu", n);
    reporter.Add({"min_weight_matching", shape, ns, 0.0, 1});
  }

  reporter.Finish();
  return 0;
}
