// Google-benchmark microbenchmarks of the hot substrate paths: gemm,
// RNG, tuple encoding/decoding, query execution, VAE sample generation,
// and the matching kernel behind the cross-match test.

#include <benchmark/benchmark.h>

#include "aqp/executor.h"
#include "data/generators.h"
#include "data/workload.h"
#include "encoding/tuple_encoder.h"
#include "nn/matrix.h"
#include "stats/matching.h"
#include "util/rng.h"
#include "vae/vae_model.h"

namespace deepaqp {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  nn::Matrix a(n, n), b(n, n), c;
  a.RandomizeGaussian(rng, 1.0f);
  b.RandomizeGaussian(rng, 1.0f);
  for (auto _ : state) {
    nn::Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_RngGaussian(benchmark::State& state) {
  util::Rng rng(2);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.NextGaussian();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngGaussian);

void BM_EncodeRows(benchmark::State& state) {
  auto table = data::GenerateCensus({.rows = 4096, .seed = 3});
  encoding::EncoderOptions options;
  auto encoder = encoding::TupleEncoder::Fit(table, options);
  for (auto _ : state) {
    auto m = encoder->EncodeAll(table);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_EncodeRows);

void BM_DecodeLogits(benchmark::State& state) {
  auto table = data::GenerateCensus({.rows = 512, .seed = 4});
  auto encoder = encoding::TupleEncoder::Fit(table, {});
  nn::Matrix logits(512, encoder->encoded_dim());
  util::Rng rng(5);
  logits.RandomizeGaussian(rng, 2.0f);
  const encoding::DecodeOptions decode{
      encoding::DecodeStrategy::kWeightedRandom, 8};
  for (auto _ : state) {
    auto t = encoder->DecodeLogits(logits, decode, rng);
    benchmark::DoNotOptimize(t.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DecodeLogits);

void BM_ExactQuery(benchmark::State& state) {
  auto table = data::GenerateCensus(
      {.rows = static_cast<size_t>(state.range(0)), .seed = 6});
  data::WorkloadConfig cfg;
  cfg.num_queries = 1;
  cfg.seed = 11;
  auto workload = data::GenerateWorkload(table, cfg);
  for (auto _ : state) {
    auto r = aqp::ExecuteExact(workload[0], table);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_ExactQuery)->Arg(10000)->Arg(100000);

void BM_VaeGenerate(benchmark::State& state) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 7});
  vae::VaeAqpOptions options;
  options.epochs = 4;
  auto model = vae::VaeAqpModel::Train(table, options);
  util::Rng rng(8);
  for (auto _ : state) {
    auto sample = (*model)->Generate(1000, vae::kTPlusInf, rng);
    benchmark::DoNotOptimize(sample.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VaeGenerate);

void BM_MinWeightMatching(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  util::Rng rng(9);
  std::vector<std::vector<double>> points(n, std::vector<double>(4));
  for (auto& p : points) {
    for (double& v : p) v = rng.Gaussian(0, 1);
  }
  auto dist = stats::EuclideanDistances(points);
  for (auto _ : state) {
    auto mate = stats::MinWeightPerfectMatching(dist);
    benchmark::DoNotOptimize(mate.ok());
  }
}
BENCHMARK(BM_MinWeightMatching)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
}  // namespace deepaqp

BENCHMARK_MAIN();
