// Fig. 4: relative error difference vs latent dimension (25%, 50%, 100% of
// the encoded input dimension). Expectation (paper): accuracy improves up
// to ~50% and then flattens; 50% is the recommended operating point.
//
//   ./bench_fig4_latent_dim [--rows 15000] [--epochs 12] [--queries 60]

#include "bench_common.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    for (double fraction : {0.25, 0.5, 1.0}) {
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      options.latent_fraction = fraction;
      auto model = vae::VaeAqpModel::Train(table, options);
      if (!model.ok()) return 1;
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler((*model)->default_t()),
          opts);
      if (!red.ok()) return 1;
      char series[48];
      std::snprintf(series, sizeof(series), "latent=%.0f%% (d'=%zu)",
                    100.0 * fraction, (*model)->net().latent_dim());
      bench::PrintRedRow("Fig4", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
