// Ablation: numeric discretization budget. Fewer equi-depth bins shrink the
// encoded dimensionality (faster training, smaller model) but add in-bin
// uniform noise to every numeric measure; more bins do the opposite.
//
//   ./bench_ablation_numeric_bins [--rows 15000] [--epochs 12]

#include "bench_common.h"

#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    for (int bins : {8, 16, 32, 64}) {
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      options.encoder.numeric_bins = bins;
      util::Stopwatch watch;
      auto model = vae::VaeAqpModel::Train(table, options);
      if (!model.ok()) return 1;
      const double train_seconds = watch.ElapsedSeconds();
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler((*model)->default_t()),
          opts);
      if (!red.ok()) return 1;
      char series[48];
      std::snprintf(series, sizeof(series), "bins=%d d=%zu (%.0fs)", bins,
                    (*model)->tuple_encoder().encoded_dim(), train_seconds);
      bench::PrintRedRow("AblBins", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
