// Fig. 13: sample-generation time vs sample count, per rejection threshold.
// Expectation (paper): stricter T costs more per sample (rejections);
// generation time is nearly flat in the sample count per batch (vectorized
// decoding), so time grows ~linearly with only a small slope until large
// counts.
//
//   ./bench_fig13_sampling_time [--rows 15000] [--epochs 10]
//                               [--max_samples 100000] [--json]
//                               [--kernel naive|blocked|simd|auto]
//                               [--quant off|fp16|int8|all]
//
// --json additionally writes BENCH_fig13.json with one uniform record per
// (kernel backend, quant mode, n, T) point: ns_per_op is sampling
// nanoseconds per generated tuple and samples_per_sec the corresponding
// throughput. Without --kernel the sweep runs once per fast GEMM backend
// available on this machine (blocked, plus simd when the CPU has the ISA),
// so the JSON records the per-backend sampling-throughput trajectory;
// --kernel pins a single backend. --quant likewise pins (or, with "all",
// sweeps) the decoder quantization mode; the default is whatever
// DEEPAQP_QUANT selected, so a plain run keeps its historical single-mode
// shape.

#include <cmath>

#include "bench_common.h"

#include "nn/kernels.h"
#include "nn/kernels_quant.h"
#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  std::vector<nn::GemmKernelKind> backends;
  if (flags.Has("kernel")) {
    if (const util::Status st = nn::ApplyKernelFlag(flags); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    backends = {nn::ActiveGemmKernel()};
  } else {
    backends = {nn::GemmKernelKind::kBlocked};
    if (nn::SimdKernelAvailable()) {
      backends.push_back(nn::GemmKernelKind::kSimd);
    }
  }
  std::vector<nn::QuantMode> quant_modes;
  const std::string quant_flag = flags.GetString("quant", "");
  if (quant_flag == "all") {
    quant_modes = {nn::QuantMode::kOff, nn::QuantMode::kFp16,
                   nn::QuantMode::kInt8};
  } else if (!quant_flag.empty()) {
    nn::QuantMode mode;
    if (const util::Status st = nn::ParseQuantMode(quant_flag, &mode);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    quant_modes = {mode};
  } else {
    quant_modes = {nn::ActiveQuantMode()};
  }
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 10));
  const auto max_samples =
      static_cast<size_t>(flags.GetInt("max_samples", 100000));

  bench::BenchReporter reporter(flags, "fig13", /*print_rows=*/false);
  const std::string dataset = "census";
  relation::Table table = bench::MakeDataset(dataset, rows);
  auto model =
      vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
  if (!model.ok()) return 1;
  const double t0 = (*model)->default_t();

  const std::pair<const char*, double> sweeps[] = {
      {"T=-inf", vae::kTMinusInf},
      {"T=t0-10", t0 - 10.0},
      {"T=t0", t0},
      {"T=t0+10", t0 + 10.0},
      {"T=+inf", vae::kTPlusInf},
  };
  for (nn::GemmKernelKind kind : backends) {
    nn::SetGemmKernel(kind);
    const char* backend = nn::GemmKernelKindName(kind);
    for (nn::QuantMode quant : quant_modes) {
      // A machine where the mode's kernel self-check fails just skips the
      // mode (the sweep must degrade gracefully off-AVX2); preparation
      // failure would mean a silent fp32 measurement, so it also skips.
      if (const util::Status st = nn::SetQuantMode(quant); !st.ok()) {
        std::fprintf(stderr, "skipping quant=%s: %s\n",
                     nn::QuantModeName(quant), st.ToString().c_str());
        continue;
      }
      if (const util::Status st = (*model)->PrepareQuantized(quant);
          !st.ok()) {
        std::fprintf(stderr, "skipping quant=%s: %s\n",
                     nn::QuantModeName(quant), st.ToString().c_str());
        continue;
      }
      for (size_t samples = 1000; samples <= max_samples; samples *= 10) {
        for (const auto& [name, t] : sweeps) {
          // T=-inf yields one accepted tuple per candidate window; cap the
          // count so the bench finishes (paper makes the same cost point).
          const size_t n = t == vae::kTMinusInf
                               ? std::min<size_t>(samples, 2000)
                               : samples;
          util::Rng rng(71);
          util::Stopwatch watch;
          relation::Table sample = (*model)->Generate(n, t, rng);
          const double seconds = watch.ElapsedSeconds();
          char series[96];
          if (quant == nn::QuantMode::kOff) {
            std::snprintf(series, sizeof(series), "n=%zu %s %s", n, name,
                          backend);
          } else {
            std::snprintf(series, sizeof(series), "n=%zu %s %s quant=%s", n,
                          name, backend, nn::QuantModeName(quant));
          }
          bench::PrintValueRow("Fig13", dataset, series, "sampling_seconds",
                               seconds);
          bench::BenchRecord record;
          record.name = "sampling_time";
          record.shape = series;
          record.ns_per_op = seconds * 1e9 / static_cast<double>(n);
          record.threads = 0;  // let the reporter stamp the pool size
          record.samples_per_sec =
              seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
          reporter.Add(std::move(record));
        }
      }
    }
  }
  (void)nn::SetQuantMode(nn::QuantMode::kOff);
  reporter.Finish();
  return 0;
}
