// Ablation: number of decoder output draws aggregated per tuple
// (Sec. IV-E). One draw is the naive decode; more draws smooth per-bit
// noise at linearly growing decode cost. Reports RED and per-1k-sample
// generation time.
//
//   ./bench_ablation_decoder_draws [--rows 15000] [--epochs 12]

#include "bench_common.h"

#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  const std::string dataset = "census";
  relation::Table table = bench::MakeDataset(dataset, rows);
  auto workload = bench::MakeWorkload(table, queries);
  auto model =
      vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
  if (!model.ok()) return 1;

  for (int draws : {1, 2, 4, 8, 16, 32}) {
    (*model)->set_decode_options(
        {encoding::DecodeStrategy::kWeightedRandom, draws});
    util::Rng rng(3);
    util::Stopwatch watch;
    (*model)->Generate(1000, vae::kTPlusInf, rng);
    const double gen_ms = watch.ElapsedMillis();
    aqp::EvalOptions opts;
    opts.num_trials = trials;
    opts.sample_fraction = sample_frac;
    auto red = aqp::RelativeErrorDifferences(
        workload, table, (*model)->MakeSampler((*model)->default_t()),
        opts);
    if (!red.ok()) return 1;
    char series[48];
    std::snprintf(series, sizeof(series), "draws=%d (%.0fms/1k)", draws,
                  gen_ms);
    bench::PrintRedRow("AblDraw", dataset, series,
                       aqp::DistributionSummary::FromValues(*red));
  }
  return 0;
}
