// Fig. 6: relative error difference vs input encoding (one-hot, binary,
// integer). Expectation (paper): on Census (small domains) all encodings
// are comparable; on Flights (an attribute with thousands of values)
// one-hot degrades badly — too many parameters for the data — while binary
// stays accurate.
//
//   ./bench_fig6_input_encoding [--rows 15000] [--epochs 12] [--queries 60]

#include "bench_common.h"

#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    for (encoding::EncodingKind kind :
         {encoding::EncodingKind::kOneHot, encoding::EncodingKind::kBinary,
          encoding::EncodingKind::kInteger}) {
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      options.encoder.kind = kind;
      util::Stopwatch watch;
      auto model = vae::VaeAqpModel::Train(table, options);
      if (!model.ok()) return 1;
      const double train_seconds = watch.ElapsedSeconds();
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler((*model)->default_t()),
          opts);
      if (!red.ok()) return 1;
      char series[64];
      std::snprintf(series, sizeof(series), "%s d=%zu %.0fs %zuKB",
                    encoding::EncodingKindName(kind),
                    (*model)->tuple_encoder().encoded_dim(), train_seconds,
                    (*model)->ModelSizeBytes() / 1024);
      bench::PrintRedRow("Fig6", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
