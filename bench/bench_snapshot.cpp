// Snapshot persistence bench: serialize / deserialize / checksum-verify
// throughput for a trained VAE at a few model sizes. Persistence is on the
// serving path (a cold server loads its model before answering the first
// query), so load cost — dominated by the CRC sweep plus weight copies —
// matters alongside model quality.
//
//   ./bench_snapshot [--rows 20000] [--epochs 3] [--reps 20]

#include "bench_common.h"

#include <vector>

#include "util/snapshot.h"
#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

namespace {

void PrintThroughputRow(const std::string& series, const char* op,
                        size_t bytes, double seconds) {
  bench::PrintValueRow("Snapshot", "census", series + " " + op, "ms",
                       seconds * 1e3);
  bench::PrintValueRow("Snapshot", "census", series + " " + op, "mb_per_sec",
                       static_cast<double>(bytes) / 1e6 / seconds);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 3));
  const int reps = static_cast<int>(flags.GetInt("reps", 20));

  const relation::Table table = bench::MakeDataset("census", rows);

  for (int hidden : {32, 64, 128}) {
    vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
    options.hidden_dim = hidden;
    auto model = vae::VaeAqpModel::Train(table, options);
    if (!model.ok()) return 1;

    char series[32];
    std::snprintf(series, sizeof(series), "hidden=%d", hidden);

    // Serialize: encode + section table + CRC sweep.
    std::vector<uint8_t> bytes;
    util::Stopwatch save_watch;
    for (int r = 0; r < reps; ++r) bytes = (*model)->Serialize();
    PrintThroughputRow(series, "serialize", bytes.size(),
                       save_watch.ElapsedSeconds() / reps);
    bench::PrintValueRow("Snapshot", "census", series, "snapshot_bytes",
                         static_cast<double>(bytes.size()));

    // Deserialize: full strict open + section decode into a live model.
    util::Stopwatch load_watch;
    for (int r = 0; r < reps; ++r) {
      auto back = vae::VaeAqpModel::Deserialize(bytes);
      if (!back.ok()) return 1;
    }
    PrintThroughputRow(series, "deserialize", bytes.size(),
                       load_watch.ElapsedSeconds() / reps);

    // Verify-only: container open + per-section CRC check, no decode. This
    // is the integrity floor a loader pays before trusting any byte.
    util::Stopwatch verify_watch;
    for (int r = 0; r < reps; ++r) {
      auto snap = util::SnapshotReader::Open(bytes);
      if (!snap.ok()) return 1;
      for (const auto& s : snap->sections()) {
        if (!snap->Section(s.name).ok()) return 1;
      }
    }
    PrintThroughputRow(series, "verify", bytes.size(),
                       verify_watch.ElapsedSeconds() / reps);
  }
  return 0;
}
