#ifndef DEEPAQP_BENCH_BENCH_COMMON_H_
#define DEEPAQP_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the per-figure experiment binaries. Every bench
// prints self-describing aligned text tables ("figure, dataset, series, x,
// value") so EXPERIMENTS.md can record paper-vs-measured shapes. All sizes
// are flag-overridable; defaults are scaled to a single CPU core.

#include <cstdio>
#include <string>
#include <vector>

#include "aqp/evaluation.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "relation/table.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

namespace deepaqp::bench {

/// The two evaluation datasets of Sec. VI-A, synthesized at `rows`.
inline relation::Table MakeDataset(const std::string& name, size_t rows,
                                   uint64_t seed = 1) {
  if (name == "census") {
    return data::GenerateCensus({.rows = rows, .seed = seed});
  }
  if (name == "flights") {
    data::FlightsConfig config;
    config.rows = rows;
    config.seed = seed;
    // Large-cardinality attribute scaled with the dataset so one-hot
    // encoding stays pathological but trainable.
    config.flight_number_cardinality =
        static_cast<int32_t>(std::min<size_t>(2000, rows / 10 + 64));
    return data::GenerateFlights(config);
  }
  if (name == "taxi") {
    return data::GenerateTaxi({.rows = rows, .seed = seed});
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(1);
}

inline std::vector<aqp::AggregateQuery> MakeWorkload(
    const relation::Table& table, size_t queries, uint64_t seed = 7) {
  data::WorkloadConfig config;
  config.num_queries = queries;
  config.seed = seed;
  return data::GenerateWorkload(table, config);
}

/// Default model options used across figures unless the figure sweeps the
/// knob itself.
inline vae::VaeAqpOptions DefaultVaeOptions(int epochs) {
  vae::VaeAqpOptions options;
  options.epochs = epochs;
  options.hidden_dim = 64;
  options.depth = 2;
  options.encoder.numeric_bins = 24;
  options.seed = 97;
  return options;
}

/// Prints one result row of a figure's series.
inline void PrintRedRow(const char* figure, const std::string& dataset,
                        const std::string& series,
                        const aqp::DistributionSummary& summary) {
  std::printf("%-8s %-8s %-22s median=%7.4f p25=%7.4f p75=%7.4f p95=%8.4f mean=%7.4f\n",
              figure, dataset.c_str(), series.c_str(), summary.median,
              summary.p25, summary.p75, summary.p95, summary.mean);
  std::fflush(stdout);
}

inline void PrintValueRow(const char* figure, const std::string& dataset,
                          const std::string& series, const char* metric,
                          double value) {
  std::printf("%-8s %-8s %-22s %s=%.4f\n", figure, dataset.c_str(),
              series.c_str(), metric, value);
  std::fflush(stdout);
}

}  // namespace deepaqp::bench

#endif  // DEEPAQP_BENCH_BENCH_COMMON_H_
