#ifndef DEEPAQP_BENCH_BENCH_COMMON_H_
#define DEEPAQP_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the per-figure experiment binaries. Every bench
// prints self-describing aligned text tables ("figure, dataset, series, x,
// value") so EXPERIMENTS.md can record paper-vs-measured shapes. All sizes
// are flag-overridable; defaults are scaled to a single CPU core.
//
// Benches that track performance additionally emit uniform machine-readable
// records (name, shape, ns/op, GFLOP/s, threads) through BenchReporter:
// pass --json and the reporter writes BENCH_<bench>.json next to the
// binary's working directory, one JSON object per run. CI archives these
// so the perf trajectory of the kernel layer is tracked per commit.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "aqp/evaluation.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "relation/table.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/topology.h"
#include "vae/vae_model.h"

namespace deepaqp::bench {

/// The two evaluation datasets of Sec. VI-A, synthesized at `rows`.
inline relation::Table MakeDataset(const std::string& name, size_t rows,
                                   uint64_t seed = 1) {
  if (name == "census") {
    return data::GenerateCensus({.rows = rows, .seed = seed});
  }
  if (name == "flights") {
    data::FlightsConfig config;
    config.rows = rows;
    config.seed = seed;
    // Large-cardinality attribute scaled with the dataset so one-hot
    // encoding stays pathological but trainable.
    config.flight_number_cardinality =
        static_cast<int32_t>(std::min<size_t>(2000, rows / 10 + 64));
    return data::GenerateFlights(config);
  }
  if (name == "taxi") {
    return data::GenerateTaxi({.rows = rows, .seed = seed});
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(1);
}

inline std::vector<aqp::AggregateQuery> MakeWorkload(
    const relation::Table& table, size_t queries, uint64_t seed = 7) {
  data::WorkloadConfig config;
  config.num_queries = queries;
  config.seed = seed;
  return data::GenerateWorkload(table, config);
}

/// Default model options used across figures unless the figure sweeps the
/// knob itself.
inline vae::VaeAqpOptions DefaultVaeOptions(int epochs) {
  vae::VaeAqpOptions options;
  options.epochs = epochs;
  options.hidden_dim = 64;
  options.depth = 2;
  options.encoder.numeric_bins = 24;
  options.seed = 97;
  return options;
}

/// Prints one result row of a figure's series.
inline void PrintRedRow(const char* figure, const std::string& dataset,
                        const std::string& series,
                        const aqp::DistributionSummary& summary) {
  std::printf("%-8s %-8s %-22s median=%7.4f p25=%7.4f p75=%7.4f p95=%8.4f mean=%7.4f\n",
              figure, dataset.c_str(), series.c_str(), summary.median,
              summary.p25, summary.p75, summary.p95, summary.mean);
  std::fflush(stdout);
}

inline void PrintValueRow(const char* figure, const std::string& dataset,
                          const std::string& series, const char* metric,
                          double value) {
  std::printf("%-8s %-8s %-22s %s=%.4f\n", figure, dataset.c_str(),
              series.c_str(), metric, value);
  std::fflush(stdout);
}

/// One uniform perf record. `gflops` is 0 when a flop count is not
/// meaningful for the operation (e.g. end-to-end seconds).
/// `samples_per_sec` is the throughput counterpart for generation benches
/// (tuples produced per second); it stays 0 for kernel-level records and is
/// only then emitted into the JSON row, so existing record schemas are
/// unchanged.
struct BenchRecord {
  std::string name;
  std::string shape;
  double ns_per_op = 0.0;
  double gflops = 0.0;
  int threads = 1;
  double samples_per_sec = 0.0;
};

/// Collects BenchRecords and, when the binary was invoked with --json,
/// writes them to BENCH_<bench>.json on Finish(). Text output per record is
/// optional so figure benches can keep their own table format.
///
/// --json_name NAME redirects the output to BENCH_NAME.json, and
/// --json_merge appends this run's records to an existing reporter file
/// instead of overwriting it — together they let several bench binaries
/// pool their rows into one artifact (CI's BENCH_quant.json combines
/// bench_kernels and bench_fig13 rows this way).
class BenchReporter {
 public:
  BenchReporter(const util::Flags& flags, std::string bench_name,
                bool print_rows = true)
      : bench_name_(flags.GetString("json_name", bench_name)),
        json_(flags.GetBool("json", false)),
        merge_(flags.GetBool("json_merge", false)),
        print_rows_(print_rows) {}

  void Add(BenchRecord record) {
    record.threads = record.threads > 0 ? record.threads
                                        : util::GlobalThreads();
    if (print_rows_) {
      std::printf("%-32s %-26s ns/op=%14.1f gflops=%8.3f threads=%d\n",
                  record.name.c_str(), record.shape.c_str(),
                  record.ns_per_op, record.gflops, record.threads);
      std::fflush(stdout);
    }
    records_.push_back(std::move(record));
  }

  /// Writes BENCH_<bench>.json if --json was given; returns the path ("" if
  /// JSON output is disabled or the file could not be written). With
  /// --json_merge, an existing reporter-written file at the same path keeps
  /// its records and this run's rows are appended to the array (a missing
  /// or foreign-format file degrades to a plain overwrite).
  std::string Finish() const {
    if (!json_) return "";
    const std::string path = "BENCH_" + bench_name_ + ".json";
    // The reporter's own output always ends with "\n  ]\n}\n"; merge by
    // re-opening the array at that marker rather than parsing JSON.
    std::string prefix;
    if (merge_) {
      if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
        std::string existing;
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
          existing.append(buf, got);
        }
        std::fclose(in);
        const std::string tail = "\n  ]\n}\n";
        const size_t pos = existing.rfind(tail);
        if (pos != std::string::npos) prefix = existing.substr(0, pos);
      }
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return "";
    }
    if (prefix.empty()) {
      std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                   bench_name_.c_str());
    } else {
      std::fwrite(prefix.data(), 1, prefix.size(), f);
      // No comma after an empty existing array (prefix ends with '[').
      const bool had_rows = prefix.back() != '[';
      std::fprintf(f, "%s\n", had_rows && !records_.empty() ? "," : "");
    }
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"shape\": \"%s\", "
                   "\"ns_per_op\": %.3f, \"gflops\": %.4f, \"threads\": %d",
                   r.name.c_str(), r.shape.c_str(), r.ns_per_op, r.gflops,
                   r.threads);
      if (r.samples_per_sec > 0.0) {
        std::fprintf(f, ", \"samples_per_sec\": %.1f", r.samples_per_sec);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records%s)\n", path.c_str(), records_.size(),
                prefix.empty() ? "" : ", merged");
    return path;
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::string bench_name_;
  bool json_;
  bool merge_;
  bool print_rows_;
  std::vector<BenchRecord> records_;
};

/// Times `fn` and returns ns per invocation: one untimed warmup call, then
/// batches of timed iterations until `min_seconds` of measured work (at
/// least `min_iters` calls).
template <typename Fn>
double MeasureNsPerOp(Fn&& fn, double min_seconds = 0.2,
                      size_t min_iters = 3) {
  fn();  // warmup (first-touch, pool spin-up, scratch growth)
  size_t iters = 0;
  util::Stopwatch watch;
  do {
    fn();
    ++iters;
  } while (iters < min_iters || watch.ElapsedSeconds() < min_seconds);
  return watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace deepaqp::bench

#endif  // DEEPAQP_BENCH_BENCH_COMMON_H_
