// Fig. 12: model-building time vs dataset size, per rejection regime. The
// paper sweeps 100K-1B rows on a K80 GPU; this single-core reproduction
// sweeps three decades (default 2K-200K) and checks the same two claims:
// (a) training time grows sublinearly in rows thanks to batching, and
// (b) stricter VRS thresholds (more resampling rounds / lower acceptance)
// cost more training time than plain ELBO training.
//
//   ./bench_fig12_training_time [--epochs 6] [--max_rows 200000] [--json]
//
// --json additionally writes BENCH_fig12.json with one uniform record per
// (rows, regime) point: ns_per_op is total training nanoseconds.

#include "bench_common.h"

#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  const auto max_rows = static_cast<size_t>(
      flags.GetInt("max_rows", 200000));

  struct Regime {
    const char* name;
    bool vrs;
    double accept_target;  // lower target => stricter per-tuple T(x)
    int rounds;
  };
  const Regime regimes[] = {
      {"no-VRS (T=+inf)", false, 0.9, 0},
      {"VRS accept=0.9 (T=t0)", true, 0.9, 3},
      {"VRS accept=0.5 (T<t0)", true, 0.5, 5},
  };

  bench::BenchReporter reporter(flags, "fig12", /*print_rows=*/false);
  const std::string dataset = "census";
  for (size_t rows = 2000; rows <= max_rows; rows *= 10) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    for (const Regime& regime : regimes) {
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      options.vrs_training = regime.vrs;
      options.train_accept_target = regime.accept_target;
      options.vrs_rounds = regime.rounds;
      vae::TrainingStats stats;
      util::Stopwatch watch;
      auto model = vae::VaeAqpModel::Train(table, options, &stats);
      if (!model.ok()) return 1;
      char series[64];
      std::snprintf(series, sizeof(series), "rows=%zu %s", rows,
                    regime.name);
      const double seconds = watch.ElapsedSeconds();
      bench::PrintValueRow("Fig12", dataset, series, "train_seconds",
                           seconds);
      reporter.Add({"training_time", series, seconds * 1e9, 0.0, 0});
    }
  }
  reporter.Finish();
  return 0;
}
