// Fig. 2: relative error difference vs sample size (0.5%, 1%, 5%).
// Expectation (paper): RED is small at every size — Census under ~1%,
// Flights a few % — and shrinks as the sample grows.
//
//   ./bench_fig2_sample_size [--rows 15000] [--epochs 12] [--queries 60]
//                            [--trials 5]

#include "bench_common.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    auto model =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!model.ok()) {
      std::fprintf(stderr, "train failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    auto sampler = (*model)->MakeSampler((*model)->default_t());
    for (double fraction : {0.005, 0.01, 0.05}) {
      aqp::EvalOptions opts;
      opts.sample_fraction = fraction;
      opts.num_trials = trials;
      auto red =
          aqp::RelativeErrorDifferences(workload, table, sampler, opts);
      if (!red.ok()) return 1;
      char series[32];
      std::snprintf(series, sizeof(series), "sample=%.1f%%",
                    100.0 * fraction);
      bench::PrintRedRow("Fig2", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
