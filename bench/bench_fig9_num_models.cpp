// Fig. 9: one vs multiple VAEs at equal cumulative capacity (K = 1, 5,
// All). Expectation (paper): more, finer-grained models lower RED; the
// single model at K-times capacity shows diminishing returns.
//
//   ./bench_fig9_num_models [--rows 15000] [--epochs 10] [--queries 50]

#include <algorithm>

#include "bench_common.h"

#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 10));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 50));
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);
  const size_t member_hidden = 24;

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    const auto attr = static_cast<size_t>(
        dataset == "census" ? table.schema().IndexOf("marital_status")
                            : table.schema().IndexOf("origin_state"));
    auto groups = ensemble::GroupByAttribute(table, attr, 0.04);
    const int all_k = static_cast<int>(groups.size());

    for (int k : {1, std::min(5, all_k), all_k}) {
      // Contiguous split of the group list into k parts (groups are code-
      // ordered; this matches the paper's semantic groupings).
      ensemble::Partition partition;
      partition.parts.resize(k);
      for (int g = 0; g < all_k; ++g) {
        partition.parts[g * k / all_k].push_back(g);
      }
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      // Equal cumulative capacity: hidden units scale inversely with K.
      options.hidden_dim =
          member_hidden * static_cast<size_t>(all_k) /
          std::max<size_t>(1, static_cast<size_t>(k));
      auto model =
          ensemble::EnsembleModel::Train(table, groups, partition, options);
      if (!model.ok()) {
        std::fprintf(stderr, "ensemble train failed: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler(vae::kTPlusInf), opts);
      if (!red.ok()) return 1;
      char series[48];
      std::snprintf(series, sizeof(series), "K=%d (hidden=%zu)", k,
                    options.hidden_dim);
      bench::PrintRedRow("Fig9", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
