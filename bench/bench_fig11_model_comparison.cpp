// Fig. 11: relative error difference across model families at comparable
// model-size budgets: VAE, MSPN (with the paper's per-query-template
// advantage), GAN (WGAN), BN (Chow-Liu), DBEst, NeuralCubes, Histograms,
// Wavelets. Expectation (paper): VAE best; MSPN competitive only with its
// per-template advantage (and an order of magnitude slower to train); GAN
// mid-pack; BN worst of the generative trio under a size budget; DBEst/NC
// fine on templated queries but unable to serve ad-hoc ones;
// histogram/wavelet synopses suffer on correlated predicates.
//
//   ./bench_fig11_model_comparison [--rows 12000] [--epochs 12]
//                                  [--queries 50]

#include <map>
#include <memory>
#include <set>

#include "bench_common.h"

#include "baselines/bayes_net.h"
#include "baselines/dbest.h"
#include "baselines/gan.h"
#include "baselines/histogram.h"
#include "baselines/mspn.h"
#include "baselines/neural_cubes.h"
#include "baselines/wavelet.h"
#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 12000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 20));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 50));
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    aqp::EvalOptions opts;
    opts.num_trials = trials;
    opts.sample_fraction = sample_frac;

    auto report_sampler = [&](const char* name, aqp::SampleFn sampler,
                              double train_seconds, size_t size_bytes) {
      auto red =
          aqp::RelativeErrorDifferences(workload, table, sampler, opts);
      if (!red.ok()) return;
      char series[64];
      std::snprintf(series, sizeof(series), "%s (%.0fs, %zuKB)", name,
                    train_seconds, size_bytes / 1024);
      bench::PrintRedRow("Fig11", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    };
    auto report_direct = [&](const char* name, aqp::AnswerFn answer,
                             double train_seconds) {
      auto red = aqp::RelativeErrorDifferencesDirect(workload, table,
                                                     answer, opts);
      if (!red.ok()) return;
      char series[64];
      std::snprintf(series, sizeof(series), "%s (%.0fs)", name,
                    train_seconds);
      bench::PrintRedRow("Fig11", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    };

    // VAE — trained on the full relation, answers arbitrary queries.
    {
      util::Stopwatch watch;
      auto model =
          vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
      if (model.ok()) {
        report_sampler("VAE",
                       (*model)->MakeSampler((*model)->default_t()),
                       watch.ElapsedSeconds(), (*model)->ModelSizeBytes());
      }
    }
    // MSPN — given the paper's per-template advantage: one SPN per distinct
    // attribute template, trained on the projected relation.
    {
      util::Stopwatch watch;
      // Group queries by their attribute template.
      std::map<std::vector<size_t>, std::vector<size_t>> by_template;
      for (size_t qi = 0; qi < workload.size(); ++qi) {
        std::set<size_t> attrs;
        for (const auto& c : workload[qi].filter.conditions) {
          attrs.insert(c.attr);
        }
        if (workload[qi].IsGroupBy()) {
          attrs.insert(static_cast<size_t>(workload[qi].group_by_attr));
        }
        if (workload[qi].measure_attr >= 0) {
          attrs.insert(static_cast<size_t>(workload[qi].measure_attr));
        }
        if (attrs.empty()) attrs.insert(0);
        by_template[{attrs.begin(), attrs.end()}].push_back(qi);
      }
      // Train one MSPN per template on the projected table; evaluate each
      // query against its own model, then merge the per-query REDs.
      std::vector<double> red_all(workload.size(), 1.0);
      size_t size_bytes = 0;
      for (const auto& [attrs, query_ids] : by_template) {
        relation::Table projected = table.Project(attrs);
        auto mspn = baselines::MspnModel::Train(projected, {});
        if (!mspn.ok()) continue;
        size_bytes += (*mspn)->SizeBytes();
        // Remap query attribute indices into the projection.
        std::vector<aqp::AggregateQuery> remapped;
        for (size_t qi : query_ids) {
          aqp::AggregateQuery q = workload[qi];
          auto remap = [&attrs](int attr) {
            for (size_t i = 0; i < attrs.size(); ++i) {
              if (attrs[i] == static_cast<size_t>(attr)) {
                return static_cast<int>(i);
              }
            }
            return -1;
          };
          for (auto& c : q.filter.conditions) {
            c.attr = static_cast<size_t>(remap(static_cast<int>(c.attr)));
          }
          if (q.IsGroupBy()) q.group_by_attr = remap(q.group_by_attr);
          if (q.measure_attr >= 0) q.measure_attr = remap(q.measure_attr);
          remapped.push_back(std::move(q));
        }
        auto red = aqp::RelativeErrorDifferences(
            remapped, projected, (*mspn)->MakeSampler(), opts);
        if (!red.ok()) continue;
        for (size_t i = 0; i < query_ids.size(); ++i) {
          red_all[query_ids[i]] = (*red)[i];
        }
      }
      char series[64];
      std::snprintf(series, sizeof(series),
                    "MSPN/template (%.0fs, %zuKB)", watch.ElapsedSeconds(),
                    size_bytes / 1024);
      bench::PrintRedRow("Fig11", dataset, series,
                         aqp::DistributionSummary::FromValues(red_all));
    }
    // WGAN.
    {
      util::Stopwatch watch;
      baselines::WganModel::Options gan_options;
      gan_options.epochs = std::min(epochs, 12);
      auto model = baselines::WganModel::Train(table, gan_options);
      if (model.ok()) {
        report_sampler("GAN", (*model)->MakeSampler(),
                       watch.ElapsedSeconds(),
                       (*model)->GeneratorParameters() * sizeof(float));
      }
    }
    // Bayesian network.
    {
      util::Stopwatch watch;
      auto model = baselines::BayesNetModel::Train(table, {});
      if (model.ok()) {
        report_sampler("BN", (*model)->MakeSampler(),
                       watch.ElapsedSeconds(), (*model)->SizeBytes());
      }
    }
    // DBEst (per-template direct answering; trained on the workload's own
    // templates, the system's intended deployment).
    {
      util::Stopwatch watch;
      auto model = baselines::DbestModel::Build(table, workload, {});
      if (model.ok()) {
        report_direct("DBEst", (*model)->MakeAnswerer(),
                      watch.ElapsedSeconds());
      }
    }
    // NeuralCubes (trained on an in-distribution workload, evaluated on
    // the benchmark workload).
    {
      util::Stopwatch watch;
      auto train_workload = bench::MakeWorkload(table, 150, 991);
      baselines::NeuralCubesModel::Options nc_options;
      nc_options.epochs = 60;
      auto model = baselines::NeuralCubesModel::Train(
          table, train_workload, nc_options);
      if (model.ok()) {
        report_direct("NeuralCubes", (*model)->MakeAnswerer(),
                      watch.ElapsedSeconds());
      }
    }
    // Histogram synopsis.
    {
      util::Stopwatch watch;
      auto model = baselines::HistogramModel::Build(table, {});
      if (model.ok()) {
        report_sampler("Hist", model->MakeSampler(),
                       watch.ElapsedSeconds(), model->SizeBytes());
      }
    }
    // Wavelet synopsis.
    {
      util::Stopwatch watch;
      auto model = baselines::WaveletModel::Build(table, {});
      if (model.ok()) {
        report_sampler("Wavelets", model->MakeSampler(),
                       watch.ElapsedSeconds(), model->SizeBytes());
      }
    }
  }
  return 0;
}
