// Fig. 3: relative error difference vs query selectivity. Expectation
// (paper): RED vanishes for high-selectivity queries (0.1-1.0) and grows as
// selectivity drops below 0.01 — low-selectivity queries are hard for any
// sampling-based AQP.
//
//   ./bench_fig3_selectivity [--rows 15000] [--epochs 12] [--queries 150]
//                            [--trials 5]

#include "bench_common.h"

#include "aqp/executor.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 200));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    data::WorkloadConfig wcfg;
    wcfg.num_queries = queries;
    wcfg.seed = 7;
    // Allow rarer predicates so the <0.01 bucket is populated.
    wcfg.min_selectivity = 0.0008;
    auto workload = data::GenerateWorkload(table, wcfg);

    auto model =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!model.ok()) return 1;
    aqp::EvalOptions opts;
    opts.num_trials = trials;
    opts.sample_fraction = sample_frac;
    auto red = aqp::RelativeErrorDifferences(
        workload, table, (*model)->MakeSampler((*model)->default_t()),
        opts);
    if (!red.ok()) return 1;

    auto buckets = data::BucketBySelectivity(workload, table);
    auto summarize = [&](const std::vector<size_t>& idx) {
      std::vector<double> values;
      for (size_t i : idx) values.push_back((*red)[i]);
      return aqp::DistributionSummary::FromValues(values);
    };
    bench::PrintRedRow("Fig3", dataset, "sel=0.1-1.0",
                       summarize(buckets.high));
    bench::PrintRedRow("Fig3", dataset, "sel=0.01-0.1",
                       summarize(buckets.mid));
    bench::PrintRedRow("Fig3", dataset, "sel=<0.01",
                       summarize(buckets.low));
    std::printf("         (bucket sizes: %zu / %zu / %zu)\n",
                buckets.high.size(), buckets.mid.size(),
                buckets.low.size());
  }
  return 0;
}
