// Kernel-layer throughput tracking: the simd (AVX2/FMA or NEON), blocked,
// and reference GEMM backends on the VAE's real shapes (batch 256 x hidden
// 64-512), the fused bias+activation forward vs the unfused pipeline, and
// the vectorized sigmoid. Emits one row per backend per shape so
// BENCH_kernels.json records the per-backend perf trajectory. Doubles as
// the CI correctness gate: every measured GEMM shape is first checked —
// for every non-naive backend available on this machine — against
// nn::ReferenceGemm and the binary exits nonzero if the relative error
// (normalized by the accumulation magnitude |A| @ |B|) exceeds 1e-5.
//
//   ./bench_kernels [--json] [--quick] [--threads N]
//
// --json writes BENCH_kernels.json (see bench_common.h); --quick shrinks
// the shape sweep and the per-measurement time budget for CI. On hardware
// without the simd ISA the simd rows are skipped (with a note) and the
// remaining gates still run.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"

#include "nn/arena.h"
#include "nn/kernels.h"
#include "nn/kernels_quant.h"
#include "nn/kernels_quant_internal.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/cpu_features.h"
#include "util/rng.h"

using namespace deepaqp;  // NOLINT: bench brevity

namespace {

nn::Matrix RandomMatrix(size_t rows, size_t cols, util::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

nn::Matrix Abs(const nn::Matrix& m) {
  nn::Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = std::abs(m.data()[i]);
  }
  return out;
}

/// Max elementwise |want - got| normalized by 1 + (|A| @ |B|)_ij — the
/// forward-error scale a k-sum reordering (or FMA contraction) perturbs
/// (same metric as tests/nn_gemm_kernel_test.cc).
double GemmRelError(const nn::Matrix& a, bool ta, const nn::Matrix& b,
                    bool tb, const nn::Matrix& want, const nn::Matrix& got) {
  nn::Matrix mag;
  nn::ReferenceGemm(Abs(a), ta, Abs(b), tb, 1.0f, 0.0f, &mag);
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(want.data()[i]) -
                              static_cast<double>(got.data()[i])) /
                         (1.0 + mag.data()[i]));
  }
  return worst;
}

constexpr double kTolerance = 1e-5;

/// Backends to measure and gate on this machine, naive first (it is the
/// baseline every speedup is stated against).
std::vector<nn::GemmKernelKind> MeasuredBackends() {
  std::vector<nn::GemmKernelKind> kinds = {nn::GemmKernelKind::kNaive,
                                           nn::GemmKernelKind::kBlocked};
  if (nn::SimdKernelAvailable()) {
    kinds.push_back(nn::GemmKernelKind::kSimd);
  } else {
    std::printf("simd backend unavailable (cpu: %s) — skipping simd rows\n",
                util::CpuFeaturesToString(util::CpuInfo()).c_str());
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  if (const util::Status st = nn::ApplyKernelFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const bool quick = flags.GetBool("quick", false);
  const double budget = quick ? 0.05 : 0.3;
  bench::BenchReporter reporter(flags, "kernels");
  util::Rng rng(424242);

  const std::vector<nn::GemmKernelKind> backends = MeasuredBackends();
  double worst_err = 0.0;

  // --- GEMM: every backend vs reference on batch 256 x hidden shapes, plus
  // the four transpose combos on one odd shape for the correctness gate.
  const std::vector<size_t> hiddens =
      quick ? std::vector<size_t>{64, 256}
            : std::vector<size_t>{64, 128, 256, 512};
  // The throughput target is single-thread; pin the pool so the record is
  // comparable across machines, then restore.
  const int prev_threads = util::GlobalThreads();
  util::SetGlobalThreads(1);
  for (size_t hidden : hiddens) {
    const size_t m = 256;
    const size_t k = hidden;
    const size_t n = hidden;
    const nn::Matrix a = RandomMatrix(m, k, rng);
    const nn::Matrix b = RandomMatrix(k, n, rng);
    nn::Matrix ref;
    nn::ReferenceGemm(a, false, b, false, 1.0f, 0.0f, &ref);

    const double flops = 2.0 * static_cast<double>(m * k * n);
    char shape[64];
    std::snprintf(shape, sizeof(shape), "m=%zu k=%zu n=%zu", m, k, n);

    double ns_naive = 0.0;
    for (nn::GemmKernelKind kind : backends) {
      nn::SetGemmKernel(kind);
      nn::Matrix c;
      if (kind != nn::GemmKernelKind::kNaive) {
        nn::Gemm(a, false, b, false, 1.0f, 0.0f, &c);
        worst_err =
            std::max(worst_err, GemmRelError(a, false, b, false, ref, c));
      }
      const double ns = bench::MeasureNsPerOp(
          [&] { nn::Gemm(a, false, b, false, 1.0f, 0.0f, &c); }, budget);
      if (kind == nn::GemmKernelKind::kNaive) ns_naive = ns;
      const std::string name =
          std::string("gemm_") + nn::GemmKernelKindName(kind);
      reporter.Add({name, shape, ns, flops / ns, 1});
      if (kind != nn::GemmKernelKind::kNaive) {
        std::printf("  -> %s speedup %.2fx at hidden=%zu (%.2f GFLOP/s)\n",
                    nn::GemmKernelKindName(kind), ns_naive / ns, hidden,
                    flops / ns);
      }
    }
  }

  // Correctness gate over all four transpose combinations (odd shape that
  // straddles every panel boundary), for every non-naive backend.
  {
    const size_t m = 129, k = 67, n = 33;
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        const nn::Matrix a =
            ta ? RandomMatrix(k, m, rng) : RandomMatrix(m, k, rng);
        const nn::Matrix b =
            tb ? RandomMatrix(n, k, rng) : RandomMatrix(k, n, rng);
        nn::Matrix ref;
        nn::ReferenceGemm(a, ta, b, tb, 1.0f, 0.0f, &ref);
        for (nn::GemmKernelKind kind : backends) {
          if (kind == nn::GemmKernelKind::kNaive) continue;
          nn::SetGemmKernel(kind);
          nn::Matrix got;
          nn::Gemm(a, ta, b, tb, 1.0f, 0.0f, &got);
          worst_err =
              std::max(worst_err, GemmRelError(a, ta, b, tb, ref, got));
        }
      }
    }
  }

  // --- Fused bias+activation forward vs the unfused pipeline, per backend.
  for (nn::GemmKernelKind kind : backends) {
    if (kind == nn::GemmKernelKind::kNaive) continue;
    const size_t batch = 256;
    const size_t hidden = quick ? 64 : 256;
    const nn::Matrix x = RandomMatrix(batch, hidden, rng);
    const nn::Matrix w = RandomMatrix(hidden, hidden, rng);
    const nn::Matrix bias = RandomMatrix(1, hidden, rng);
    char shape[80];
    std::snprintf(shape, sizeof(shape), "m=%zu k=%zu n=%zu relu %s", batch,
                  hidden, hidden, nn::GemmKernelKindName(kind));
    nn::SetGemmKernel(kind);
    const double flops = 2.0 * static_cast<double>(batch * hidden * hidden);
    nn::Matrix out;
    const double ns_unfused = bench::MeasureNsPerOp(
        [&] {
          nn::Gemm(x, false, w, false, 1.0f, 0.0f, &out);
          nn::AddRowBroadcast(bias, &out);
          nn::ApplyActivation(nn::Activation::kRelu, 0.0f, out.data(),
                              out.size());
        },
        budget);
    reporter.Add(
        {"linear_relu_unfused", shape, ns_unfused, flops / ns_unfused, 1});
    const double ns_fused = bench::MeasureNsPerOp(
        [&] {
          nn::FusedLinearForward(x, w, bias, nn::Activation::kRelu, 0.0f,
                                 &out);
        },
        budget);
    reporter.Add({"linear_relu_fused", shape, ns_fused, flops / ns_fused,
                  1});
  }

  // --- Quantized decoder forward (int8 / fp16) vs the fp32 fused path on
  // the same shape. Doubles as a correctness gate: int8 must be
  // bit-identical between its scalar oracle and the SIMD kernel, and both
  // quantized modes must stay within their documented error envelope of the
  // fp32 output. The speedup line against fp32 on the best fp32 backend is
  // the acceptance evidence for the quantized path.
  bool quant_gate_failed = false;
  {
    const size_t batch = 256;
    const size_t hidden = quick ? 64 : 256;
    const nn::Matrix x = RandomMatrix(batch, hidden, rng);
    const nn::Matrix w = RandomMatrix(hidden, hidden, rng);
    const nn::Matrix bias = RandomMatrix(1, hidden, rng);
    const double flops = 2.0 * static_cast<double>(batch * hidden * hidden);
    nn::SetGemmKernel(backends.back());  // best fp32 backend on this machine
    nn::Matrix ref;
    nn::FusedLinearForward(x, w, bias, nn::Activation::kRelu, 0.0f, &ref);
    nn::Matrix out;
    const double ns_fp32 = bench::MeasureNsPerOp(
        [&] {
          nn::FusedLinearForward(x, w, bias, nn::Activation::kRelu, 0.0f,
                                 &out);
        },
        budget);
    for (nn::QuantMode mode : {nn::QuantMode::kFp16, nn::QuantMode::kInt8}) {
      nn::QuantizedLinear q;
      if (const util::Status st = nn::QuantizeLinear(w, bias, mode, &q);
          !st.ok()) {
        std::fprintf(stderr, "FAIL: QuantizeLinear(%s): %s\n",
                     nn::QuantModeName(mode), st.ToString().c_str());
        quant_gate_failed = true;
        continue;
      }
      nn::Matrix got;
      nn::QuantizedLinearForward(x, q, nn::Activation::kRelu, 0.0f, &got);
      // Error vs fp32, normalized like the GEMM gate. int8 carries the
      // 8-bit weight+activation rounding; fp16 only the weight rounding.
      const double err = GemmRelError(x, false, w, false, ref, got);
      const double tol = mode == nn::QuantMode::kInt8 ? 0.03 : 2e-3;
      if (err > tol) {
        std::fprintf(stderr, "FAIL: quant %s deviates from fp32: %.3g > %g\n",
                     nn::QuantModeName(mode), err, tol);
        quant_gate_failed = true;
      }
      if (mode == nn::QuantMode::kInt8 &&
          nn::QuantSimdAvailable(nn::QuantMode::kInt8)) {
        nn::Matrix scalar_out;
        nn::internal::QuantizedLinearForwardImpl(
            x, q, nn::Activation::kRelu, 0.0f, &scalar_out,
            /*use_simd=*/false);
        if (scalar_out.rows() != got.rows() ||
            scalar_out.cols() != got.cols() ||
            std::memcmp(scalar_out.data(), got.data(),
                        got.size() * sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "FAIL: int8 scalar oracle and SIMD kernel disagree\n");
          quant_gate_failed = true;
        }
      }
      const double ns = bench::MeasureNsPerOp(
          [&] {
            nn::QuantizedLinearForward(x, q, nn::Activation::kRelu, 0.0f,
                                       &got);
          },
          budget);
      char shape[80];
      std::snprintf(shape, sizeof(shape), "m=%zu k=%zu n=%zu relu %s", batch,
                    hidden, hidden,
                    nn::QuantSimdAvailable(mode) ? "simd" : "scalar");
      const std::string name =
          std::string("quant_linear_") + nn::QuantModeName(mode);
      reporter.Add({name, shape, ns, flops / ns, 1});
      std::printf("  -> quant %s speedup over fp32 %s: %.2fx (err %.3g)\n",
                  nn::QuantModeName(mode),
                  nn::GemmKernelKindName(backends.back()), ns_fp32 / ns, err);
    }
  }

  // --- Vectorized sigmoid: scalar std::exp loop vs each fast backend.
  {
    const size_t count = 1 << 16;
    std::vector<float> in(count);
    std::vector<float> outv(count);
    for (size_t i = 0; i < count; ++i) {
      in[i] = static_cast<float>(rng.NextGaussian() * 4.0);
    }
    char shape[32];
    std::snprintf(shape, sizeof(shape), "n=%zu", count);
    for (nn::GemmKernelKind kind : backends) {
      nn::SetGemmKernel(kind);
      const double ns = bench::MeasureNsPerOp(
          [&] { nn::SigmoidVec(in.data(), outv.data(), count); }, budget);
      const std::string name =
          kind == nn::GemmKernelKind::kNaive
              ? std::string("sigmoid_scalar")
              : std::string("sigmoid_") + nn::GemmKernelKindName(kind);
      reporter.Add({name, shape, ns / static_cast<double>(count), 0.0, 1});
    }
  }

  // --- ShardedGemmTN (the weight-gradient product) per backend.
  {
    const size_t batch = quick ? 1024 : 4096;
    const size_t in_dim = 128;
    const size_t out_dim = 128;
    const nn::Matrix a = RandomMatrix(batch, in_dim, rng);
    const nn::Matrix b = RandomMatrix(batch, out_dim, rng);
    const double flops = 2.0 * static_cast<double>(batch * in_dim * out_dim);
    char shape[64];
    std::snprintf(shape, sizeof(shape), "batch=%zu in=%zu out=%zu", batch,
                  in_dim, out_dim);
    nn::Matrix c(in_dim, out_dim);
    for (nn::GemmKernelKind kind : backends) {
      nn::SetGemmKernel(kind);
      const double ns = bench::MeasureNsPerOp(
          [&] {
            c.Zero();
            nn::ShardedGemmTN(a, b, &c);
          },
          budget);
      const std::string name =
          std::string("sharded_tn_") + nn::GemmKernelKindName(kind);
      reporter.Add({name, shape, ns, flops / ns, 1});
    }
  }
  util::SetGlobalThreads(prev_threads);

  reporter.Finish();

  std::printf("fast-kernel-vs-reference worst relative error: %.3g (tol %g)\n",
              worst_err, kTolerance);
  if (worst_err > kTolerance) {
    std::fprintf(stderr,
                 "FAIL: a fast kernel deviates from the reference beyond "
                 "tolerance\n");
    return 1;
  }
  if (quant_gate_failed) return 1;
  return 0;
}
