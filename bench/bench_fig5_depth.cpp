// Fig. 5: relative error difference vs encoder/decoder depth (1, 2, 3).
// Expectation (paper): depth 2 is the sweet spot; 1 underfits slightly,
// 3 adds cost without consistent accuracy gains.
//
//   ./bench_fig5_depth [--rows 15000] [--epochs 12] [--queries 60]

#include "bench_common.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    for (int depth : {1, 2, 3}) {
      vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
      options.depth = depth;
      auto model = vae::VaeAqpModel::Train(table, options);
      if (!model.ok()) return 1;
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler((*model)->default_t()),
          opts);
      if (!red.ok()) return 1;
      char series[32];
      std::snprintf(series, sizeof(series), "depth=%d", depth);
      bench::PrintRedRow("Fig5", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
