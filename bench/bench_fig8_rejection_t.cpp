// Fig. 8: relative error difference vs rejection threshold T. The sweep is
// centered on the model's calibrated threshold t0 (the log-ratio scale is
// dataset-specific; the paper's "T = 0" corresponds to the calibrated
// operating point). Expectation (paper): RED decreases monotonically as T
// tightens from +inf toward -inf, at increasing sampling cost.
//
//   ./bench_fig8_rejection_t [--rows 15000] [--epochs 12] [--queries 60]

#include <cmath>

#include "bench_common.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    auto model =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!model.ok()) return 1;
    const double t0 = (*model)->default_t();
    std::printf("Fig8     %-8s calibrated t0 = %.2f\n", dataset.c_str(),
                t0);

    const std::pair<const char*, double> sweeps[] = {
        {"T=-inf", vae::kTMinusInf},
        {"T=t0-10", t0 - 10.0},
        {"T=t0", t0},
        {"T=t0+10", t0 + 10.0},
        {"T=+inf", vae::kTPlusInf},
    };
    for (const auto& [name, t] : sweeps) {
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler(t), opts);
      if (!red.ok()) return 1;
      bench::PrintRedRow("Fig8", dataset, name,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
