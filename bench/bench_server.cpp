// Server daemon throughput/latency: N concurrent sessions, each streaming
// precision-on-demand queries to completion (every DATA frame acked by the
// client thread). Reports queries/sec and tail latency per session count,
// for the in-process pipe transport and for real loopback TCP (full wire
// encode/decode + socket supervision), so the transport overhead is a
// measured number rather than folklore.
//
//   bench_server [--sessions 8] [--queries 16] [--rows N] [--epochs N]
//                [--quick] [--json] [--quant off|fp16|int8|all]
//                [--transport pipe|tcp|all]
//
// --json writes BENCH_server.json with one record per (quant mode,
// transport, session count), carrying queries_per_sec and p50/p99 latency
// in milliseconds.
// --quant selects the decoder quantization the server generates under;
// "all" sweeps off/fp16/int8 in one run for a direct fp32-vs-quantized
// serving comparison (modes whose kernel self-check fails on this CPU are
// skipped with a note).

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

#include "nn/kernels_quant.h"
#include "server/server.h"
#include "server/socket_client.h"
#include "server/socket_transport.h"
#include "server/transport.h"
#include "util/flags.h"
#include "util/timer.h"
#include "vae/vae_model.h"

namespace deepaqp {
namespace {

struct QuerySpec {
  std::string sql;
  double max_relative_ci;
};

std::vector<QuerySpec> Workload() {
  return {
      {"SELECT AVG(fare) FROM R WHERE trip_distance > 1", 0.05},
      {"SELECT COUNT(*) FROM R WHERE passengers >= 2", 0.08},
      {"SELECT SUM(fare) FROM R WHERE duration_min > 10", 0.08},
      {"SELECT AVG(duration_min) FROM R WHERE trip_distance > 2", 0.05},
  };
}

/// Opens a session and runs `queries` to completion, acking every frame;
/// appends one wall-clock latency (seconds) per query.
void DriveSession(server::AqpServer& srv, const std::vector<QuerySpec>& queries,
                  std::vector<double>* latencies) {
  auto pipe = std::make_shared<server::PipeTransport>();
  server::ClientMessage open;
  open.kind = server::ClientMessageKind::kOpenSession;
  open.model_name = "bench";
  srv.Handle(open, pipe);
  server::ServerMessage opened = pipe->Pop();
  if (opened.kind != server::ServerMessageKind::kSessionOpened) {
    std::fprintf(stderr, "open failed: %s\n", opened.message.c_str());
    return;
  }
  const uint64_t session = opened.session;

  for (const QuerySpec& spec : queries) {
    util::Stopwatch watch;
    server::ClientMessage query;
    query.kind = server::ClientMessageKind::kQuery;
    query.session = session;
    query.sql = spec.sql;
    query.max_relative_ci = spec.max_relative_ci;
    srv.Handle(query, pipe);

    server::ServerMessage first;
    do {
      first = pipe->Pop();
    } while (first.kind == server::ServerMessageKind::kData);
    if (first.kind != server::ServerMessageKind::kQueryStarted) {
      std::fprintf(stderr, "query failed: %s\n", first.message.c_str());
      return;
    }
    server::ChannelConsumer consumer(first.channel);
    while (!consumer.finished()) {
      server::ServerMessage msg = pipe->Pop();
      if (msg.kind != server::ServerMessageKind::kData ||
          msg.channel != first.channel) {
        if (msg.kind == server::ServerMessageKind::kError) {
          std::fprintf(stderr, "stream failed: %s\n", msg.message.c_str());
          return;
        }
        continue;
      }
      consumer.OnData(msg.data);
      consumer.TakeDelivered();
      server::ClientMessage ack;
      ack.kind = server::ClientMessageKind::kAck;
      ack.session = session;
      ack.ack = consumer.MakeAck();
      srv.Handle(ack, pipe);
    }
    latencies->push_back(watch.ElapsedSeconds());
  }
}

/// TCP counterpart of DriveSession: the same workload through a
/// RetryingConnection against the loopback SocketServer — real framing,
/// real acks, real sockets.
void DriveSessionTcp(uint16_t port, const std::vector<QuerySpec>& queries,
                     std::vector<double>* latencies) {
  server::RetryingConnection::Options copts;
  copts.port = port;
  server::RetryingConnection client(copts);
  if (const util::Status st = client.Connect(); !st.ok()) {
    std::fprintf(stderr, "tcp connect failed: %s\n", st.ToString().c_str());
    return;
  }
  if (const util::Status st = client.OpenSession("bench"); !st.ok()) {
    std::fprintf(stderr, "tcp open failed: %s\n", st.ToString().c_str());
    return;
  }
  for (const QuerySpec& spec : queries) {
    util::Stopwatch watch;
    auto stream = client.RunQuery(spec.sql, spec.max_relative_ci);
    if (!stream.ok()) {
      std::fprintf(stderr, "tcp stream failed: %s\n",
                   stream.status().ToString().c_str());
      return;
    }
    latencies->push_back(watch.ElapsedSeconds());
  }
  client.CloseSession();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

struct ServerRecord {
  int sessions = 0;
  int threads = 0;
  size_t queries = 0;
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string quant;      ///< decoder quantization mode of this pass
  std::string transport;  ///< "pipe" (in-process) or "tcp" (loopback)
};

}  // namespace
}  // namespace deepaqp

int main(int argc, char** argv) {
  using namespace deepaqp;
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const bool quick = flags.GetBool("quick", false);
  const bool json = flags.GetBool("json", false);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 4000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", quick ? 5 : 8));
  const auto queries_per_session =
      static_cast<size_t>(flags.GetInt("queries", quick ? 8 : 16));
  const int max_sessions = static_cast<int>(flags.GetInt("sessions", 8));

  relation::Table table = bench::MakeDataset("taxi", rows, /*seed=*/21);
  vae::VaeAqpOptions vopts;
  vopts.epochs = epochs;
  vopts.hidden_dim = 48;
  vopts.seed = 77;
  vopts.encoder.numeric_bins = 16;
  auto model = vae::VaeAqpModel::Train(table, vopts);
  if (!model.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  // Non-const handle: the quant sweep re-prepares the decoder plan between
  // passes; sessions still see it through a const shared_ptr.
  std::shared_ptr<vae::VaeAqpModel> owned = std::move(*model);
  std::shared_ptr<const vae::VaeAqpModel> shared = owned;

  std::vector<nn::QuantMode> quant_modes;
  const std::string quant_flag = flags.GetString("quant", "");
  if (quant_flag == "all") {
    quant_modes = {nn::QuantMode::kOff, nn::QuantMode::kFp16,
                   nn::QuantMode::kInt8};
  } else if (!quant_flag.empty()) {
    nn::QuantMode mode;
    if (const util::Status st = nn::ParseQuantMode(quant_flag, &mode);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    quant_modes = {mode};
  } else {
    quant_modes = {nn::ActiveQuantMode()};
  }

  // Cycle the workload out to the requested per-session query count.
  std::vector<QuerySpec> base = Workload();
  std::vector<QuerySpec> queries;
  for (size_t i = 0; i < queries_per_session; ++i) {
    queries.push_back(base[i % base.size()]);
  }

  std::vector<int> sweep;
  if (quick) {
    sweep = {4};
  } else {
    for (int s = 1; s <= max_sessions; s *= 2) sweep.push_back(s);
  }

  std::vector<std::string> transports;
  const std::string transport_flag = flags.GetString("transport", "all");
  if (transport_flag == "all") {
    transports = {"pipe", "tcp"};
  } else if (transport_flag == "pipe" || transport_flag == "tcp") {
    transports = {transport_flag};
  } else {
    std::fprintf(stderr, "bad --transport '%s' (pipe|tcp|all)\n",
                 transport_flag.c_str());
    return 2;
  }

  std::vector<ServerRecord> records;
  for (nn::QuantMode quant : quant_modes) {
    if (const util::Status st = nn::SetQuantMode(quant); !st.ok()) {
      std::fprintf(stderr, "skipping quant=%s: %s\n",
                   nn::QuantModeName(quant), st.ToString().c_str());
      continue;
    }
    if (const util::Status st = owned->PrepareQuantized(quant); !st.ok()) {
      std::fprintf(stderr, "skipping quant=%s: %s\n",
                   nn::QuantModeName(quant), st.ToString().c_str());
      continue;
    }
    for (const std::string& transport : transports) {
      for (int sessions : sweep) {
        server::AqpServer::Options sopts;
        sopts.client.initial_samples = 400;
        sopts.client.max_samples = 6400;
        sopts.client.population_rows = rows;
        sopts.client.seed = 2027;
        server::AqpServer srv(sopts);
        srv.registry().Install("bench", shared);

        std::unique_ptr<server::SocketServer> sock;
        if (transport == "tcp") {
          server::SocketServer::Options tcp_opts;
          tcp_opts.port = 0;  // ephemeral
          sock = std::make_unique<server::SocketServer>(&srv, tcp_opts);
          if (const util::Status st = sock->Listen(); !st.ok()) {
            std::fprintf(stderr, "tcp listen failed: %s\n",
                         st.ToString().c_str());
            continue;
          }
          if (const util::Status st = sock->Start(); !st.ok()) {
            std::fprintf(stderr, "tcp start failed: %s\n",
                         st.ToString().c_str());
            continue;
          }
        }

        std::vector<std::vector<double>> latencies(sessions);
        util::Stopwatch wall;
        {
          std::vector<std::thread> clients;
          clients.reserve(sessions);
          for (int s = 0; s < sessions; ++s) {
            if (transport == "tcp") {
              const uint16_t port = sock->port();
              clients.emplace_back([port, &queries, &latencies, s] {
                DriveSessionTcp(port, queries, &latencies[s]);
              });
            } else {
              clients.emplace_back([&srv, &queries, &latencies, s] {
                DriveSession(srv, queries, &latencies[s]);
              });
            }
          }
          for (std::thread& t : clients) t.join();
        }
        const double elapsed = wall.ElapsedSeconds();
        if (sock != nullptr) sock->Shutdown();

        std::vector<double> all;
        for (const auto& per : latencies) {
          all.insert(all.end(), per.begin(), per.end());
        }
        ServerRecord r;
        r.sessions = sessions;
        r.threads = util::GlobalThreads();
        r.queries = all.size();
        r.queries_per_sec = elapsed > 0 ? all.size() / elapsed : 0.0;
        r.p50_ms = Percentile(all, 0.50) * 1e3;
        r.p99_ms = Percentile(all, 0.99) * 1e3;
        r.quant = nn::QuantModeName(quant);
        r.transport = transport;
        records.push_back(r);
        std::printf(
            "sessions=%-2d threads=%-2d quant=%-4s transport=%-4s "
            "queries=%-3zu qps=%8.2f p50=%7.2f ms p99=%7.2f ms\n",
            r.sessions, r.threads, r.quant.c_str(), r.transport.c_str(),
            r.queries, r.queries_per_sec, r.p50_ms, r.p99_ms);
        std::fflush(stdout);
      }
    }
  }
  (void)nn::SetQuantMode(nn::QuantMode::kOff);

  if (json) {
    const char* path = "BENCH_server.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"server\",\n  \"records\": [\n");
    for (size_t i = 0; i < records.size(); ++i) {
      const ServerRecord& r = records[i];
      std::fprintf(f,
                   "    {\"name\": \"serve_stream\", \"sessions\": %d, "
                   "\"threads\": %d, \"quant\": \"%s\", "
                   "\"transport\": \"%s\", "
                   "\"queries\": %zu, "
                   "\"queries_per_sec\": %.3f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f}%s\n",
                   r.sessions, r.threads, r.quant.c_str(),
                   r.transport.c_str(), r.queries,
                   r.queries_per_sec, r.p50_ms, r.p99_ms,
                   i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path, records.size());
  }
  return 0;
}
