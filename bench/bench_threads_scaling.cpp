// Thread-scaling bench for the shared thread pool: reruns the three hot
// parallel paths (VAE training, synthetic-sample generation, cross-match
// distance construction) at 1/2/4/8 threads and reports wall time plus
// speedup over the single-thread baseline. Because every parallel region is
// deterministic by construction, the work done is identical at every thread
// count — the speedup column isolates pure scheduling/scaling behavior.
// Target (multi-core hardware): >= 2.5x sampling throughput at 4 threads.
//
//   ./bench_threads_scaling [--rows 20000] [--epochs 4] [--samples 60000]
//                           [--points 600] [--max_threads 8]

#include "bench_common.h"

#include <vector>

#include "stats/cross_match.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

namespace {

std::vector<int> ThreadCounts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  return counts;
}

void PrintScalingRow(const char* phase, int threads, double seconds,
                     double baseline_seconds) {
  char series[64];
  std::snprintf(series, sizeof(series), "%s threads=%d", phase, threads);
  bench::PrintValueRow("Threads", "census", series, "seconds", seconds);
  bench::PrintValueRow("Threads", "census", series, "speedup",
                       baseline_seconds / seconds);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 4));
  const auto samples = static_cast<size_t>(flags.GetInt("samples", 60000));
  const auto points = static_cast<size_t>(flags.GetInt("points", 600));
  const int max_threads = static_cast<int>(flags.GetInt("max_threads", 8));

  const relation::Table table = bench::MakeDataset("census", rows);
  const std::vector<int> thread_counts = ThreadCounts(max_threads);

  // Phase 1: training (row-parallel GEMMs + sharded gradient reduction).
  double train_base = 0.0;
  std::unique_ptr<vae::VaeAqpModel> model;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Stopwatch watch;
    auto trained =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!trained.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) {
      train_base = seconds;
      model = std::move(*trained);  // reuse the 1-thread model below
    }
    PrintScalingRow("train", t, seconds, train_base);
  }

  // Phase 2: sampling (chunked generation with child RNG streams). This is
  // the path the paper cares most about — client-side sample production.
  double sample_base = 0.0;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Rng rng(4242);
    util::Stopwatch watch;
    relation::Table pool = model->Generate(samples, model->default_t(), rng);
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) sample_base = seconds;
    PrintScalingRow("sample", t, seconds, sample_base);
    bench::PrintValueRow("Threads", "census", "sample rate", "tuples_per_sec",
                         static_cast<double>(pool.num_rows()) / seconds);
  }

  // Phase 3: cross-match distance construction (O(n^2) pairwise build).
  double cross_base = 0.0;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Rng data_rng(1);
    std::vector<std::vector<double>> d, m;
    for (size_t i = 0; i < points; ++i) {
      d.push_back({data_rng.NextGaussian(), data_rng.NextGaussian()});
      m.push_back({data_rng.NextGaussian() + 0.1, data_rng.NextGaussian()});
    }
    util::Rng test_rng(2);
    util::Stopwatch watch;
    auto result = stats::CrossMatchTest(d, m, test_rng);
    if (!result.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) cross_base = seconds;
    PrintScalingRow("crossmatch", t, seconds, cross_base);
  }

  util::SetGlobalThreads(0);
  return 0;
}
