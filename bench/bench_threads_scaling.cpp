// Thread-scaling bench for the shared thread pool: reruns the three hot
// parallel paths (VAE training, synthetic-sample generation, cross-match
// distance construction) across thread counts and reports wall time plus
// speedup over the single-thread baseline. Because every parallel region is
// deterministic by construction, the work done is identical at every thread
// count — the speedup column isolates pure scheduling/scaling behavior.
// Target (multi-core hardware): >= 2.5x sampling throughput at 4 threads.
//
// Two placement sections ride on top of the classic sweep:
//  * pinned-vs-unpinned: the sampling phase re-runs at --max_threads under
//    each pin policy (off/compact/scatter) and cross-checks that the
//    generated tables are bit-identical — placement may only move work,
//    never change it. On a single-node machine the pinned rows should land
//    within noise of the unpinned row.
//  * local-vs-remote: on multi-node machines, a buffer is first-touched
//    from a node-0 CPU and then summed from node 0 (local) and node 1
//    (remote), isolating the NUMA penalty the sharded paths avoid. Skipped
//    with a note when the topology has one node.
//
// With --json the rows are also written to BENCH_threads.json (name =
// train/sample/crossmatch/placement, shape = "threads=N pin=P", sampling
// rows carry samples_per_sec) so CI can pool them with the other perf
// artifacts.
//
//   ./bench_threads_scaling [--rows 20000] [--epochs 4] [--samples 60000]
//                           [--points 600] [--max_threads 8]
//                           [--pin off|compact|scatter] [--json]

#include "bench_common.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "stats/cross_match.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace deepaqp;  // NOLINT: bench brevity

namespace {

// Powers of two up to --max_threads, plus max_threads itself when it is not
// a power of two (so --max_threads 6 measures 1/2/4/6, not just 1/2/4).
std::vector<int> ThreadCounts(int max_threads) {
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.empty() || counts.back() != max_threads) {
    counts.push_back(max_threads);
  }
  return counts;
}

void PrintScalingRow(const char* phase, int threads, double seconds,
                     double baseline_seconds) {
  char series[64];
  std::snprintf(series, sizeof(series), "%s threads=%d", phase, threads);
  bench::PrintValueRow("Threads", "census", series, "seconds", seconds);
  bench::PrintValueRow("Threads", "census", series, "speedup",
                       baseline_seconds / seconds);
}

std::string ShapeOf(int threads, util::PinPolicy policy) {
  char shape[64];
  std::snprintf(shape, sizeof(shape), "threads=%d pin=%s", threads,
                util::PinPolicyName(policy));
  return shape;
}

// FNV-1a over every cell of `table`, column-major. Placement policies must
// not change a single bit of the generated output, so every policy must
// hash identically.
uint64_t TableChecksum(const relation::Table& table) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (size_t c = 0; c < table.num_attributes(); ++c) {
    if (table.schema().IsCategorical(c)) {
      for (int32_t code : table.CatColumn(c)) {
        mix(static_cast<uint64_t>(static_cast<uint32_t>(code)));
      }
    } else {
      for (double v : table.NumColumn(c)) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
      }
    }
  }
  return h;
}

// Local-vs-remote memory placement: first-touch a buffer from a node-0 CPU,
// then time sequential sum sweeps from node 0 (local) and node 1 (remote).
// The ratio is the raw NUMA penalty that node-sharded execution avoids.
void MeasurePlacement(bench::BenchReporter& reporter) {
  const util::CpuTopology& topo = util::Topology();
  if (!topo.multi_node()) {
    std::printf(
        "placement: single NUMA node — skipping local-vs-remote rows\n");
    return;
  }
  const std::vector<int> saved_cpus = util::AllowedCpus();
  const int local_cpu = topo.nodes[0].cpus.front();
  const int remote_cpu = topo.nodes[1].cpus.front();
  if (!util::PinCurrentThread(local_cpu)) {
    std::printf("placement: pinning unavailable — skipping rows\n");
    return;
  }

  constexpr size_t kDoubles = size_t{8} << 20;  // 64 MiB, beyond any LLC
  std::vector<double> buffer(kDoubles, 1.0);    // first touch on node 0

  double sink = 0.0;
  auto sweep_seconds = [&buffer, &sink]() {
    constexpr int kPasses = 8;
    util::Stopwatch watch;
    for (int p = 0; p < kPasses; ++p) {
      sink += std::accumulate(buffer.begin(), buffer.end(), 0.0);
    }
    return watch.ElapsedSeconds() / kPasses;
  };

  sweep_seconds();  // warm up TLBs/prefetchers before measuring local
  const double local_s = sweep_seconds();
  double remote_s = 0.0;
  if (util::PinCurrentThread(remote_cpu)) {
    sweep_seconds();
    remote_s = sweep_seconds();
  }
  if (!saved_cpus.empty()) util::PinCurrentThreadToCpus(saved_cpus);
  if (sink == 12345.0) std::printf("?");  // defeat dead-code elimination

  const double bytes = static_cast<double>(kDoubles) * sizeof(double);
  bench::PrintValueRow("Threads", "census", "placement local", "gib_per_sec",
                       bytes / local_s / (1 << 30));
  reporter.Add({.name = "placement",
                .shape = "node=local",
                .ns_per_op = local_s * 1e9,
                .threads = 1});
  if (remote_s > 0.0) {
    bench::PrintValueRow("Threads", "census", "placement remote",
                         "gib_per_sec", bytes / remote_s / (1 << 30));
    bench::PrintValueRow("Threads", "census", "placement remote/local",
                         "ratio", remote_s / local_s);
    reporter.Add({.name = "placement",
                  .shape = "node=remote",
                  .ns_per_op = remote_s * 1e9,
                  .threads = 1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 4));
  const auto samples = static_cast<size_t>(flags.GetInt("samples", 60000));
  const auto points = static_cast<size_t>(flags.GetInt("points", 600));
  const int max_threads = static_cast<int>(flags.GetInt("max_threads", 8));

  // The classic sweep runs under whatever --pin / DEEPAQP_PIN selected
  // (off unless asked); the pinned sweep below covers all three policies.
  const util::PinPolicy base_policy = util::ActivePinPolicy();
  bench::BenchReporter reporter(flags, "threads", /*print_rows=*/false);
  std::printf("topology: %s\n", util::Topology().ToString().c_str());

  const relation::Table table = bench::MakeDataset("census", rows);
  const std::vector<int> thread_counts = ThreadCounts(max_threads);

  // Phase 1: training (row-parallel GEMMs + sharded gradient reduction).
  double train_base = 0.0;
  std::unique_ptr<vae::VaeAqpModel> model;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Stopwatch watch;
    auto trained =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!trained.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) {
      train_base = seconds;
      model = std::move(*trained);  // reuse the 1-thread model below
    }
    PrintScalingRow("train", t, seconds, train_base);
    reporter.Add({.name = "train",
                  .shape = ShapeOf(t, base_policy),
                  .ns_per_op = seconds * 1e9,
                  .threads = t});
  }

  // Phase 2: sampling (chunked generation with child RNG streams). This is
  // the path the paper cares most about — client-side sample production.
  double sample_base = 0.0;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Rng rng(4242);
    util::Stopwatch watch;
    relation::Table pool = model->Generate(samples, model->default_t(), rng);
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) sample_base = seconds;
    PrintScalingRow("sample", t, seconds, sample_base);
    const double rate = static_cast<double>(pool.num_rows()) / seconds;
    bench::PrintValueRow("Threads", "census", "sample rate", "tuples_per_sec",
                         rate);
    reporter.Add({.name = "sample",
                  .shape = ShapeOf(t, base_policy),
                  .ns_per_op = seconds * 1e9,
                  .threads = t,
                  .samples_per_sec = rate});
  }

  // Phase 2b: pinned vs unpinned at max_threads. Placement must be
  // invisible in the output (checksums identical) and, on one node, in the
  // timing too.
  uint64_t off_checksum = 0;
  bool checksums_match = true;
  for (util::PinPolicy policy :
       {util::PinPolicy::kOff, util::PinPolicy::kCompact,
        util::PinPolicy::kScatter}) {
    util::SetPinPolicy(policy);
    util::SetGlobalThreads(max_threads);  // rebuild pool under the policy
    util::Rng rng(4242);
    util::Stopwatch watch;
    relation::Table pool = model->Generate(samples, model->default_t(), rng);
    const double seconds = watch.ElapsedSeconds();
    const uint64_t checksum = TableChecksum(pool);
    if (policy == util::PinPolicy::kOff) {
      off_checksum = checksum;
    } else if (checksum != off_checksum) {
      checksums_match = false;
      std::printf("ERROR: pin=%s output differs from pin=off\n",
                  util::PinPolicyName(policy));
    }
    char series[64];
    std::snprintf(series, sizeof(series), "sample pin=%s",
                  util::PinPolicyName(policy));
    bench::PrintValueRow("Threads", "census", series, "seconds", seconds);
    const double rate = static_cast<double>(pool.num_rows()) / seconds;
    reporter.Add({.name = "sample",
                  .shape = ShapeOf(max_threads, policy),
                  .ns_per_op = seconds * 1e9,
                  .threads = max_threads,
                  .samples_per_sec = rate});
  }
  std::printf("pinned-vs-unpinned checksums: %s\n",
              checksums_match ? "identical" : "MISMATCH");
  util::SetPinPolicy(base_policy);
  util::SetGlobalThreads(max_threads);

  // Phase 3: cross-match distance construction (O(n^2) pairwise build).
  double cross_base = 0.0;
  for (int t : thread_counts) {
    util::SetGlobalThreads(t);
    util::Rng data_rng(1);
    std::vector<std::vector<double>> d, m;
    for (size_t i = 0; i < points; ++i) {
      d.push_back({data_rng.NextGaussian(), data_rng.NextGaussian()});
      m.push_back({data_rng.NextGaussian() + 0.1, data_rng.NextGaussian()});
    }
    util::Rng test_rng(2);
    util::Stopwatch watch;
    auto result = stats::CrossMatchTest(d, m, test_rng);
    if (!result.ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) cross_base = seconds;
    PrintScalingRow("crossmatch", t, seconds, cross_base);
    reporter.Add({.name = "crossmatch",
                  .shape = ShapeOf(t, base_policy),
                  .ns_per_op = seconds * 1e9,
                  .threads = t});
  }

  // Phase 4: raw local-vs-remote memory placement (multi-node only).
  MeasurePlacement(reporter);

  util::SetGlobalThreads(0);
  reporter.Finish();
  return checksums_match ? 0 : 1;
}
