// Fig. 7: relative error difference vs output decoding strategy. The
// "naive" strategy draws one stochastic tuple per latent sample (invalid
// codes clamped); the aggregated strategies draw several and combine
// per-attribute (max vote / weighted random). Expectation (paper):
// aggregated decoding clearly lowers RED versus naive decoding.
//
//   ./bench_fig7_output_decoding [--rows 15000] [--epochs 12]
//                                [--queries 60]

#include "bench_common.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 12));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const int trials = static_cast<int>(flags.GetInt("trials", 8));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);

  struct Entry {
    const char* name;
    encoding::DecodeOptions decode;
  };
  const Entry entries[] = {
      {"naive", {encoding::DecodeStrategy::kNaive, 1}},
      {"max-vote x8", {encoding::DecodeStrategy::kMaxVote, 8}},
      {"weighted x8", {encoding::DecodeStrategy::kWeightedRandom, 8}},
  };

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    // Decoding is a generation-time knob: train once, sweep decoders.
    auto model =
        vae::VaeAqpModel::Train(table, bench::DefaultVaeOptions(epochs));
    if (!model.ok()) return 1;
    for (const Entry& entry : entries) {
      (*model)->set_decode_options(entry.decode);
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler((*model)->default_t()),
          opts);
      if (!red.ok()) return 1;
      bench::PrintRedRow("Fig7", dataset, entry.name,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
