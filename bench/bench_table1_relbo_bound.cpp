// Table I: empirical validation of the R-ELBO bound. For random subsets of
// atomic groups, check that the R-ELBO loss of a VAE trained on the UNION is
// bounded by the SUM of the member groups' R-ELBO losses, for T in
// {t0-10, t0, t0+10} around the calibrated scale. The paper reports the
// fraction of subsets where the bound holds (0.96-1.0) over 1000 subsets;
// defaults here use fewer subsets to fit one core — raise --subsets to match.
//
//   ./bench_table1_relbo_bound [--rows 8000] [--epochs 6] [--subsets 20]

#include "bench_common.h"

#include "ensemble/partitioning.h"
#include "util/rng.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 8000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  const int subsets = static_cast<int>(flags.GetInt("subsets", 20));
  const std::vector<double> deltas = {-10.0, 0.0, 10.0};

  std::printf("Table I: fraction of random group-subsets where "
              "R-ELBO(union) <= sum of member R-ELBOs\n");

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    const auto attr = static_cast<size_t>(
        dataset == "census" ? table.schema().IndexOf("marital_status")
                            : table.schema().IndexOf("carrier"));
    auto groups = ensemble::GroupByAttribute(table, attr, 0.05);
    if (groups.size() < 3) {
      std::printf("%s: fewer than 3 atomic groups, skipping\n",
                  dataset.c_str());
      continue;
    }

    // Train one VAE per atomic group once; score it at every T.
    vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
    std::vector<relation::Table> member_tables;
    std::vector<std::vector<double>> member_score;  // [group][delta]
    double t0 = 0.0;
    {
      std::vector<std::unique_ptr<vae::VaeAqpModel>> member_models;
      for (size_t g = 0; g < groups.size(); ++g) {
        vae::VaeAqpOptions opt = options;
        opt.seed = options.seed + g;
        relation::Table part = table.Gather(groups[g].rows);
        auto m = vae::VaeAqpModel::Train(part, opt);
        if (!m.ok()) continue;
        t0 += (*m)->default_t();
        member_tables.push_back(std::move(part));
        member_models.push_back(std::move(m).value());
      }
      t0 /= static_cast<double>(member_models.size());
      member_score.resize(member_models.size());
      for (size_t g = 0; g < member_models.size(); ++g) {
        for (double delta : deltas) {
          util::Rng r(101 + g);
          member_score[g].push_back(member_models[g]->RElboLoss(
              member_tables[g], t0 + delta, r, 1024));
        }
      }
    }

    util::Rng rng(13);
    std::vector<int> holds(deltas.size(), 0);
    int total = 0;
    for (int s = 0; s < subsets; ++s) {
      const size_t size =
          2 + rng.NextIndex(std::min<size_t>(3, member_tables.size() - 1));
      auto pick = rng.SampleWithoutReplacement(member_tables.size(), size);
      relation::Table union_table = member_tables[pick[0]];
      std::vector<double> bound = member_score[pick[0]];
      for (size_t i = 1; i < pick.size(); ++i) {
        (void)union_table.Append(member_tables[pick[i]]);
        for (size_t d = 0; d < deltas.size(); ++d) {
          bound[d] += member_score[pick[i]][d];
        }
      }
      vae::VaeAqpOptions opt = options;
      opt.seed = options.seed + 7777 + s;
      auto union_model = vae::VaeAqpModel::Train(union_table, opt);
      if (!union_model.ok()) continue;
      for (size_t d = 0; d < deltas.size(); ++d) {
        util::Rng r(300 + s);
        const double union_score =
            (*union_model)->RElboLoss(union_table, t0 + deltas[d], r, 1024);
        holds[d] += union_score <= bound[d];
      }
      ++total;
    }
    for (size_t d = 0; d < deltas.size(); ++d) {
      char series[64];
      std::snprintf(series, sizeof(series), "T=t0%+.0f", deltas[d]);
      bench::PrintValueRow(
          "Table1", dataset, series, "bound_holds",
          total == 0 ? 0.0 : static_cast<double>(holds[d]) / total);
    }
  }
  return 0;
}
