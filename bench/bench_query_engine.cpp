// Query-engine throughput tracking: the vectorized selection/aggregation
// engine vs the scalar row-at-a-time path, on the exact operations the AQP
// layer runs per query — selectivity scans, exact filtered aggregates,
// GROUP BY estimates with CLT intervals, and bootstrap CIs over a 200k-row
// sample pool. Doubles as the CI correctness gate: every timed case plus a
// generated verification workload is executed under both engines and the
// binary exits nonzero unless results are bit-identical.
//
//   ./bench_query_engine [--json] [--quick] [--rows N] [--resamples N]
//                        [--queries N] [--threads N]
//
// --json writes BENCH_query_engine.json (see bench_common.h); --quick
// shrinks rows/resamples and the per-measurement time budget for CI.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"

#include "aqp/bootstrap.h"
#include "aqp/engine.h"
#include "aqp/estimator.h"
#include "aqp/executor.h"

using namespace deepaqp;  // NOLINT: bench brevity

namespace {

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// Bit-level comparison of two results; prints the first divergence.
bool BitIdentical(const aqp::QueryResult& scalar,
                  const aqp::QueryResult& vector, const std::string& what) {
  if (scalar.groups.size() != vector.groups.size()) {
    std::fprintf(stderr, "DIVERGED %s: %zu vs %zu groups\n", what.c_str(),
                 scalar.groups.size(), vector.groups.size());
    return false;
  }
  for (size_t i = 0; i < scalar.groups.size(); ++i) {
    const aqp::GroupValue& s = scalar.groups[i];
    const aqp::GroupValue& v = vector.groups[i];
    if (s.group != v.group || s.support != v.support ||
        Bits(s.value) != Bits(v.value) ||
        Bits(s.ci_half_width) != Bits(v.ci_half_width)) {
      std::fprintf(stderr,
                   "DIVERGED %s group %d: value %.17g/%.17g ci %.17g/%.17g\n",
                   what.c_str(), s.group, s.value, v.value, s.ci_half_width,
                   v.ci_half_width);
      return false;
    }
  }
  return true;
}

template <typename Fn>
auto WithEngine(aqp::EngineKind kind, Fn&& fn) {
  aqp::SetEngine(kind);
  auto result = fn();
  aqp::SetEngine(aqp::EngineKind::kVector);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const bool quick = flags.GetBool("quick", false);
  const size_t rows = static_cast<size_t>(
      flags.GetInt("rows", quick ? 60000 : 200000));
  const size_t resamples = static_cast<size_t>(
      flags.GetInt("resamples", quick ? 60 : 200));
  const size_t verify_queries =
      static_cast<size_t>(flags.GetInt("queries", 20));
  const double budget = quick ? 0.05 : 0.3;
  bench::BenchReporter reporter(flags, "query_engine");

  std::printf("query engine bench: census rows=%zu resamples=%zu\n", rows,
              resamples);
  const relation::Table table = bench::MakeDataset("census", rows, 5);
  const size_t population = rows * 10;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "rows=%zu", rows);

  // The paper's exploration staple: a filtered GROUP BY AVG.
  aqp::AggregateQuery avg_query;
  avg_query.agg = aqp::AggFunc::kAvg;
  avg_query.measure_attr = table.schema().IndexOf("hours_per_week");
  avg_query.group_by_attr = table.schema().IndexOf("education");
  avg_query.filter.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("age")), aqp::CmpOp::kGt,
       30.0});

  aqp::AggregateQuery sum_query = avg_query;
  sum_query.agg = aqp::AggFunc::kSum;
  sum_query.measure_attr = table.schema().IndexOf("capital_gain");

  aqp::AggregateQuery count_query;
  count_query.agg = aqp::AggFunc::kCount;
  count_query.filter = avg_query.filter;
  count_query.filter.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("sex")), aqp::CmpOp::kEq,
       0.0});

  bool ok = true;
  struct Case {
    const char* name;
    std::function<aqp::QueryResult()> run;
  };
  aqp::BootstrapOptions bopts;
  bopts.resamples = resamples;
  bopts.seed = 99;
  const std::vector<Case> cases = {
      {"exact_count_filtered",
       [&] { return *aqp::ExecuteExact(count_query, table); }},
      {"exact_groupby_sum",
       [&] { return *aqp::ExecuteExact(sum_query, table); }},
      {"estimate_groupby_avg",
       [&] {
         return *aqp::EstimateFromSample(avg_query, table, population);
       }},
      {"bootstrap_groupby_avg",
       [&] {
         return *aqp::BootstrapEstimate(avg_query, table, population, bopts);
       }},
  };

  for (const Case& c : cases) {
    const aqp::QueryResult scalar =
        WithEngine(aqp::EngineKind::kScalar, c.run);
    const aqp::QueryResult vector =
        WithEngine(aqp::EngineKind::kVector, c.run);
    ok = BitIdentical(scalar, vector, c.name) && ok;

    const double ns_scalar = bench::MeasureNsPerOp(
        [&] { WithEngine(aqp::EngineKind::kScalar, c.run); }, budget);
    reporter.Add({std::string(c.name) + "_scalar", shape, ns_scalar, 0.0, 1});
    const double ns_vector = bench::MeasureNsPerOp(
        [&] { WithEngine(aqp::EngineKind::kVector, c.run); }, budget);
    reporter.Add({std::string(c.name) + "_vector", shape, ns_vector, 0.0, 1});
    std::printf("  -> %s speedup %.2fx\n", c.name, ns_scalar / ns_vector);
  }

  // Selectivity (the executor's shared selection kernel).
  {
    const double sel_scalar = WithEngine(aqp::EngineKind::kScalar, [&] {
      return aqp::Selectivity(count_query, table);
    });
    const double sel_vector = WithEngine(aqp::EngineKind::kVector, [&] {
      return aqp::Selectivity(count_query, table);
    });
    if (Bits(sel_scalar) != Bits(sel_vector)) {
      std::fprintf(stderr, "DIVERGED selectivity: %.17g vs %.17g\n",
                   sel_scalar, sel_vector);
      ok = false;
    }
    const double ns_scalar = bench::MeasureNsPerOp(
        [&] {
          WithEngine(aqp::EngineKind::kScalar,
                     [&] { return aqp::Selectivity(count_query, table); });
        },
        budget);
    reporter.Add({"selectivity_scalar", shape, ns_scalar, 0.0, 1});
    const double ns_vector = bench::MeasureNsPerOp(
        [&] {
          WithEngine(aqp::EngineKind::kVector,
                     [&] { return aqp::Selectivity(count_query, table); });
        },
        budget);
    reporter.Add({"selectivity_vector", shape, ns_vector, 0.0, 1});
    std::printf("  -> selectivity speedup %.2fx\n", ns_scalar / ns_vector);
  }

  // Built-in verification sweep: a generated workload (grouped, quantile,
  // multi-condition shapes) through exact, estimate, and bootstrap under
  // both engines, compared bit-for-bit.
  {
    const relation::Table small =
        bench::MakeDataset("census", quick ? 3000 : 10000, 6);
    data::WorkloadConfig wc;
    wc.num_queries = verify_queries;
    wc.seed = 17;
    wc.group_by_prob = 0.5;
    wc.quantile_prob = 0.25;
    const auto workload = data::GenerateWorkload(small, wc);
    aqp::BootstrapOptions vb;
    vb.resamples = 25;
    vb.seed = 271;
    size_t verified = 0;
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      const aqp::AggregateQuery& q = workload[qi];
      const std::string tag = "verify q" + std::to_string(qi);
      auto exact_s = WithEngine(aqp::EngineKind::kScalar,
                                [&] { return *aqp::ExecuteExact(q, small); });
      auto exact_v = WithEngine(aqp::EngineKind::kVector,
                                [&] { return *aqp::ExecuteExact(q, small); });
      ok = BitIdentical(exact_s, exact_v, tag + " exact") && ok;
      auto est_s = WithEngine(aqp::EngineKind::kScalar, [&] {
        return *aqp::EstimateFromSample(q, small, small.num_rows() * 10);
      });
      auto est_v = WithEngine(aqp::EngineKind::kVector, [&] {
        return *aqp::EstimateFromSample(q, small, small.num_rows() * 10);
      });
      ok = BitIdentical(est_s, est_v, tag + " estimate") && ok;
      auto boot_s = WithEngine(aqp::EngineKind::kScalar, [&] {
        return *aqp::BootstrapEstimate(q, small, small.num_rows() * 10, vb);
      });
      auto boot_v = WithEngine(aqp::EngineKind::kVector, [&] {
        return *aqp::BootstrapEstimate(q, small, small.num_rows() * 10, vb);
      });
      ok = BitIdentical(boot_s, boot_v, tag + " bootstrap") && ok;
      ++verified;
    }
    std::printf("verification sweep: %zu queries x 3 paths %s\n", verified,
                ok ? "bit-identical" : "DIVERGED");
  }

  reporter.Finish();
  if (!ok) {
    std::fprintf(stderr, "engine verification FAILED\n");
    return 1;
  }
  return 0;
}
