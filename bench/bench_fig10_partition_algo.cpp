// Fig. 10: greedy vs dynamic-programming partition selection over an OLAP
// hierarchy. Each candidate part is scored by the R-ELBO loss of a probe
// VAE trained on it; the K-part cut chosen by each algorithm then trains a
// full ensemble whose RED is reported. Expectation (paper): the DP's
// R-ELBO-cognizant cut gives equal or better partitions than greedy,
// especially on Flights' more complex R-ELBO landscape.
//
//   ./bench_fig10_partition_algo [--rows 15000] [--epochs 10] [--k 3]

#include <map>

#include "bench_common.h"

#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"

using namespace deepaqp;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (const util::Status st = util::ApplyPinFlag(flags); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 10));
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 50));
  const int trials = static_cast<int>(flags.GetInt("trials", 5));
  const double sample_frac = flags.GetDouble("sample_frac", 0.05);
  const int k = static_cast<int>(flags.GetInt("k", 3));

  for (const std::string dataset : {"census", "flights"}) {
    relation::Table table = bench::MakeDataset(dataset, rows);
    auto workload = bench::MakeWorkload(table, queries);
    const auto attr = static_cast<size_t>(
        dataset == "census" ? table.schema().IndexOf("education")
                            : table.schema().IndexOf("origin_state"));
    auto groups = ensemble::GroupByAttribute(table, attr, 0.04);
    auto hierarchy =
        ensemble::MakeBalancedHierarchy(static_cast<int>(groups.size()));

    vae::VaeAqpOptions probe = bench::DefaultVaeOptions(
        std::max(3, epochs / 2));
    probe.hidden_dim = 32;
    // Memoize probe trainings across the DP and greedy runs.
    std::map<std::vector<int>, double> score_cache;
    auto score = [&](const std::vector<int>& part) {
      auto it = score_cache.find(part);
      if (it != score_cache.end()) return it->second;
      const double value = [&] {
      std::vector<size_t> part_rows;
      for (int g : part) {
        part_rows.insert(part_rows.end(), groups[g].rows.begin(),
                         groups[g].rows.end());
      }
      relation::Table part_table = table.Gather(part_rows);
      auto model = vae::VaeAqpModel::Train(part_table, probe);
      if (!model.ok()) return 1e9;
      util::Rng rng(511);
      return (*model)->RElboLoss(part_table, (*model)->default_t(), rng,
                                 768);
      }();
      score_cache[part] = value;
      return value;
    };

    auto dp = ensemble::PartitionHierarchyDp(hierarchy, score, k);
    auto greedy = ensemble::PartitionHierarchyGreedy(hierarchy, score, k);
    if (!dp.ok() || !greedy.ok()) return 1;

    vae::VaeAqpOptions options = bench::DefaultVaeOptions(epochs);
    options.hidden_dim = 48;
    const std::pair<const char*, const ensemble::Partition*> algos[] = {
        {"greedy", &*greedy}, {"dynamic-programming", &*dp}};
    for (const auto& [name, partition] : algos) {
      auto model = ensemble::EnsembleModel::Train(table, groups, *partition,
                                                  options);
      if (!model.ok()) return 1;
      aqp::EvalOptions opts;
      opts.num_trials = trials;
      opts.sample_fraction = sample_frac;
      auto red = aqp::RelativeErrorDifferences(
          workload, table, (*model)->MakeSampler(vae::kTPlusInf), opts);
      if (!red.ok()) return 1;
      char series[64];
      std::snprintf(series, sizeof(series), "%s (score=%.2f,parts=%zu)",
                    name, partition->total_score, partition->parts.size());
      bench::PrintRedRow("Fig10", dataset, series,
                         aqp::DistributionSummary::FromValues(*red));
    }
  }
  return 0;
}
